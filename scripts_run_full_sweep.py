"""Run the paper-scale figure sweeps and save each table to results/."""
import time

from repro.experiments import FULL, fig3a, fig3b, fig4a, fig4b, fig5a, fig6a, fig6b

PANELS = [
    ("fig3a", fig3a), ("fig3b", fig3b), ("fig4a", fig4a), ("fig4b", fig4b),
    ("fig5a", fig5a), ("fig6a", fig6a), ("fig6b", fig6b),
]

for name, fn in PANELS:
    start = time.time()
    table = fn(FULL)
    text = table.render()
    with open(f"results/{name}.txt", "w") as fh:
        fh.write(text + "\n")
    print(f"{name} done in {time.time()-start:.1f}s")
    print(text)
    print()
print("ALL DONE")
