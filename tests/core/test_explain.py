"""Unit tests for the auction explainer."""

import pytest

from repro.core.bids import Bid
from repro.core.explain import explain_outcome, render_explanation
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import MechanismError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestExplainOutcome:
    def test_one_explanation_per_winner(self, market):
        outcome = run_ssam(market)
        explanations = explain_outcome(outcome)
        assert len(explanations) == len(outcome.winners)
        assert [e.winner_key for e in explanations] == [
            w.bid.key for w in sorted(outcome.winners, key=lambda w: w.iteration)
        ]

    def test_coverage_accumulates(self, market):
        outcome = run_ssam(market)
        explanations = explain_outcome(outcome)
        final = explanations[-1].coverage_after
        for buyer, units in market.demand.items():
            assert final[buyer] >= units

    def test_payments_match_outcome(self, market):
        outcome = run_ssam(market)
        by_key = {w.bid.key: w.payment for w in outcome.winners}
        for item in explain_outcome(outcome):
            assert item.payment == pytest.approx(by_key[item.winner_key])

    def test_mutated_instance_detected(self, market):
        outcome = run_ssam(market)
        # Fabricate an outcome pointing at a *different* market: making
        # the losing full-coverage bid nearly free changes the winner set.
        other = market.replace_bid(bid(13, {1, 2, 3}, 0.01))
        import dataclasses

        fake = dataclasses.replace(outcome, instance=other)
        with pytest.raises(MechanismError):
            explain_outcome(fake)

    def test_empty_demand_explained(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        outcome = run_ssam(instance)
        assert explain_outcome(outcome) == []
        assert "without winners" in render_explanation(outcome)


class TestRendering:
    def test_narrative_contains_key_facts(self, market):
        outcome = run_ssam(market)
        text = render_explanation(outcome)
        assert f"{len(outcome.winners)} winners" in text
        assert "truthfulness premium" in text
        for winner in outcome.winners:
            assert f"seller {winner.bid.seller}" in text

    def test_monopolist_annotated(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 2.0)], {1: 1}, price_ceiling=50.0
        )
        outcome = run_ssam(instance)
        assert "ceiling-capped" in render_explanation(outcome)
