"""Unit tests for the fast-path engine and its incremental index.

The property suite (``tests/properties/test_engine_equivalence.py``)
pins engine↔oracle equivalence statistically; these tests pin the
individual moving parts on hand-built instances — the incremental
bookkeeping, the guard escalation, the payment replay, the process-pool
fan-out, and the ``run_ssam`` option surface (validation + deprecation
shim).
"""

import pytest

from repro.core.bids import Bid
from repro.core.engine import (
    compute_critical_payments,
    fast_critical_payment,
    fast_greedy_selection,
)
from repro.core.ssam import (
    PaymentRule,
    _critical_payment,
    greedy_selection,
    run_ssam,
)
from repro.core.wsp import ActiveBidIndex, CoverageState, WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market(make_instance):
    return make_instance(42, n_sellers=20, n_buyers=5)


class TestActiveBidIndex:
    BIDS = [
        bid(10, {1, 2}, 12.0),
        bid(11, {1}, 5.0),
        bid(12, {2, 3}, 9.0),
        bid(13, {3}, 4.0),
    ]
    DEMAND = {1: 1, 2: 1, 3: 2}

    def make(self):
        coverage = CoverageState(demand=dict(self.DEMAND))
        return ActiveBidIndex(self.BIDS, coverage), coverage

    def test_initial_utilities_match_rescan(self):
        index, coverage = self.make()
        for bid_id, b in enumerate(self.BIDS):
            assert index.utility(bid_id) == coverage.utility_of(b)

    def test_apply_win_propagates_saturation(self):
        index, coverage = self.make()
        # Winning bid 0 saturates buyers 1 and 2; bid 1 (covers only
        # buyer 1) drops to zero, bid 2 keeps buyer 3's unit.
        gained = index.apply_win(0)
        assert gained == 2
        assert index.utility(1) == 0
        assert index.utility(2) == 1
        for bid_id, b in enumerate(self.BIDS):
            assert index.utility(bid_id) == coverage.utility_of(b)

    def test_remove_seller_deactivates_and_reports(self):
        index, _ = self.make()
        retired = index.remove_seller(12)
        assert retired == [2]
        assert index.active_bid_ids() == [0, 1, 3]
        assert index.remove_seller(12) == []  # idempotent

    def test_would_strand_matches_reference_guard(self):
        from repro.core.ssam import _selection_strands

        index, coverage = self.make()
        active = list(self.BIDS)
        for bid_id, b in enumerate(self.BIDS):
            assert index.would_strand(bid_id) == _selection_strands(
                b, active, coverage
            )

    def test_would_strand_detects_sole_supplier(self):
        # Buyer 1 needs 2 units from distinct sellers, and only sellers
        # 10 and 11 cover it: consuming seller 10 via its buyer-2 bid
        # leaves buyer 1 with a single admissible supplier.
        bids = [
            bid(10, {1}, 6.0, index=0),
            bid(10, {2}, 0.5, index=1),
            bid(11, {1}, 6.0),
            bid(12, {2}, 8.0),
        ]
        coverage = CoverageState(demand={1: 2, 2: 1})
        index = ActiveBidIndex(bids, coverage)
        assert index.would_strand(1)  # seller 10's cheap alternative
        assert not index.would_strand(0)
        assert not index.would_strand(3)


class TestFastGreedySelection:
    def test_matches_reference_on_market(self, market):
        reference = greedy_selection(market.bids, dict(market.demand))
        fast = fast_greedy_selection(market.bids, dict(market.demand))
        assert [s.bid.key for s in fast] == [s.bid.key for s in reference]
        assert [s.ratio for s in fast] == [s.ratio for s in reference]

    def test_infeasible_raises_like_reference(self):
        bids = (bid(10, {1}, 1.0),)
        with pytest.raises(InfeasibleInstanceError):
            fast_greedy_selection(bids, {1: 2})
        assert fast_greedy_selection(bids, {1: 2}, require_feasible=False) != []

    def test_exact_guard_regression_instance(self):
        # The hypothesis-found instance from tests/core/test_guard.py:
        # the cheap guard strands, the exact guard completes.
        bids = (
            bid(100, {2}, 2.0),
            bid(101, {0, 1}, 2.0, index=0),
            bid(101, {2}, 1.0, index=1),
            bid(102, {0}, 1.0, index=0),
            bid(102, {1}, 1.0, index=1),
        )
        demand = {0: 1, 1: 1, 2: 1}
        with pytest.raises(InfeasibleInstanceError):
            fast_greedy_selection(bids, dict(demand))
        fast = fast_greedy_selection(bids, dict(demand), exact_guard=True)
        reference = greedy_selection(bids, dict(demand), exact_guard=True)
        assert [s.bid.key for s in fast] == [s.bid.key for s in reference]


class TestFastCriticalPayment:
    @pytest.mark.parametrize("guard", [True, False])
    def test_matches_reference_per_winner(self, market, guard):
        steps = greedy_selection(
            market.bids, dict(market.demand), guard_feasibility=guard
        )
        for step in steps:
            assert fast_critical_payment(
                market, step.bid, guard_feasibility=guard
            ) == pytest.approx(
                _critical_payment(market, step.bid, guard_feasibility=guard),
                abs=1e-12,
            )

    def test_batch_matches_serial_reference(self, market):
        winners = [s.bid for s in greedy_selection(market.bids, dict(market.demand))]
        fast = compute_critical_payments(market, winners)
        slow = compute_critical_payments(market, winners, use_fast=False)
        assert fast == pytest.approx(slow, abs=1e-12)

    def test_parallel_pool_preserves_order_and_values(self, market):
        winners = [s.bid for s in greedy_selection(market.bids, dict(market.demand))]
        serial = compute_critical_payments(market, winners, parallelism=1)
        parallel = compute_critical_payments(market, winners, parallelism=2)
        assert parallel == pytest.approx(serial, abs=1e-12)


class TestRunSsamOptions:
    def test_parallel_run_identical_to_serial(self, market):
        serial = run_ssam(market, payment_rule=PaymentRule.CRITICAL_RERUN)
        parallel = run_ssam(
            market, payment_rule=PaymentRule.CRITICAL_RERUN, parallelism=2
        )
        assert parallel.to_dict() == serial.to_dict()

    def test_engine_name_validated(self, market):
        with pytest.raises(ConfigurationError):
            run_ssam(market, engine="turbo")

    def test_parallelism_validated(self, market):
        with pytest.raises(ConfigurationError):
            run_ssam(market, parallelism=0)

    def test_positional_payment_rule_deprecated(self, market):
        with pytest.warns(DeprecationWarning):
            legacy = run_ssam(market, PaymentRule.ITERATION_RUNNER_UP)
        modern = run_ssam(market, payment_rule=PaymentRule.ITERATION_RUNNER_UP)
        assert legacy.to_dict() == modern.to_dict()

    def test_extra_positionals_rejected(self, market):
        with pytest.raises(TypeError):
            run_ssam(market, PaymentRule.CRITICAL_RERUN, 4)

    def test_guard_off_raises_on_guard_needing_instance(self):
        # Without the guard (and without escalation) the greedy strands
        # buyer 1's second unit; run_ssam must surface that, not retry.
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 6.0, index=0),
                bid(10, {2}, 0.5, index=1),
                bid(11, {1}, 6.0),
                bid(12, {2}, 8.0),
            ],
            {1: 2, 2: 1},
        )
        assert run_ssam(instance).to_dict() == run_ssam(
            instance, engine="reference"
        ).to_dict()
        with pytest.raises(InfeasibleInstanceError):
            run_ssam(instance, guard=False)
