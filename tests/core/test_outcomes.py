"""Unit tests for the outcome containers."""

import json

import pytest

from repro.core.bids import Bid
from repro.core.msoa import run_msoa
from repro.core.outcomes import AuctionOutcome, OnlineOutcome, WinningBid
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import MechanismError


def bid(seller, covered, price, index=0, true_cost=None):
    return Bid(
        seller=seller,
        index=index,
        covered=frozenset(covered),
        price=price,
        true_cost=true_cost,
    )


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestWinningBid:
    def test_utility_is_payment_minus_cost(self):
        winner = WinningBid(
            bid=bid(10, {1}, 5.0, true_cost=3.0),
            payment=8.0,
            iteration=0,
            marginal_utility=1,
            average_price=5.0,
            original_price=5.0,
        )
        assert winner.utility == pytest.approx(5.0)

    def test_negative_payment_rejected(self):
        with pytest.raises(MechanismError):
            WinningBid(
                bid=bid(10, {1}, 5.0),
                payment=-1.0,
                iteration=0,
                marginal_utility=1,
                average_price=5.0,
                original_price=5.0,
            )

    def test_zero_utility_winner_rejected(self):
        with pytest.raises(MechanismError):
            WinningBid(
                bid=bid(10, {1}, 5.0),
                payment=5.0,
                iteration=0,
                marginal_utility=0,
                average_price=5.0,
                original_price=5.0,
            )


class TestAuctionOutcome:
    def test_winner_views(self, market):
        outcome = run_ssam(market)
        assert outcome.winner_keys == {
            w.bid.key for w in outcome.winners
        }
        assert outcome.winning_sellers == {
            w.bid.seller for w in outcome.winners
        }

    def test_coverage_meets_demand(self, market):
        outcome = run_ssam(market)
        coverage = outcome.coverage
        for buyer, units in market.demand.items():
            assert coverage[buyer] >= units

    def test_payment_and_utility_lookup(self, market):
        outcome = run_ssam(market)
        some_winner = outcome.winners[0]
        assert outcome.payment_of(some_winner.bid.seller) == pytest.approx(
            some_winner.payment
        )
        losers = set(market.sellers) - outcome.winning_sellers
        for seller in losers:
            assert outcome.payment_of(seller) == 0.0
            assert outcome.utility_of(seller) == 0.0


class TestOnlineOutcome:
    CAPACITIES = {10: 6, 11: 4, 12: 6, 14: 4}

    def test_aggregates(self, market):
        outcome = run_msoa([market, market], self.CAPACITIES)
        assert outcome.social_cost > 0
        assert outcome.total_payment >= outcome.social_cost - 1e-9
        assert len(outcome.winners_per_round) == 2

    def test_capacity_verification_catches_overflow(self, market):
        good = run_msoa([market], self.CAPACITIES)
        bad = OnlineOutcome(
            rounds=good.rounds,
            capacities={seller: 1 for seller in self.CAPACITIES},
            alpha=good.alpha,
            beta=good.beta,
            competitive_bound=good.competitive_bound,
        )
        with pytest.raises(MechanismError):
            bad.verify_capacities()

    def test_empty_outcome(self):
        outcome = OnlineOutcome(
            rounds=(),
            capacities={},
            alpha=1.0,
            beta=float("inf"),
            competitive_bound=1.0,
        )
        assert outcome.social_cost == 0.0
        assert outcome.capacity_used == {}


class TestSerde:
    """to_dict()/from_dict() round-trips survive a JSON encode cycle."""

    @pytest.mark.parametrize("rule", list(PaymentRule))
    def test_auction_outcome_round_trip(self, market, rule):
        outcome = run_ssam(market, payment_rule=rule)
        payload = json.loads(json.dumps(outcome.to_dict()))
        again = AuctionOutcome.from_dict(payload)
        assert again.to_dict() == outcome.to_dict()
        assert again.winner_keys == outcome.winner_keys
        assert again.total_payment == pytest.approx(outcome.total_payment)
        assert again.duals.certified_lower_bound() == pytest.approx(
            outcome.duals.certified_lower_bound()
        )
        again.verify()

    def test_online_outcome_round_trip(self, market):
        capacities = {10: 6, 11: 4, 12: 6, 14: 4}
        outcome = run_msoa([market, market], capacities)
        payload = json.loads(json.dumps(outcome.to_dict()))
        again = OnlineOutcome.from_dict(payload)
        assert again.to_dict() == outcome.to_dict()
        assert again.social_cost == pytest.approx(outcome.social_cost)
        assert len(again.rounds) == len(outcome.rounds)
        again.verify_capacities()

    def test_infinite_beta_survives(self, market):
        outcome = run_msoa([market], {10: 6, 11: 4, 12: 6, 14: 4})
        data = outcome.to_dict()
        data["beta"] = float("inf")
        again = OnlineOutcome.from_dict(json.loads(json.dumps(data)))
        assert again.beta == float("inf")

    def test_wrong_kind_rejected(self, market):
        data = run_ssam(market).to_dict()
        data["kind"] = "online"
        with pytest.raises(MechanismError):
            AuctionOutcome.from_dict(data)

    def test_future_schema_rejected(self, market):
        data = run_ssam(market).to_dict()
        data["schema_version"] = 999
        with pytest.raises(MechanismError):
            AuctionOutcome.from_dict(data)
