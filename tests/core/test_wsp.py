"""Unit tests for the winner-selection problem model."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def simple_instance():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestConstruction:
    def test_buyers_sorted_and_positive_demand_only(self):
        instance = WSPInstance.from_bids(
            [bid(10, {2, 5}, 1.0)], {5: 1, 2: 2, 7: 0}
        )
        assert instance.buyers == (2, 5)

    def test_total_demand_sums_units(self, simple_instance):
        assert simple_instance.total_demand == 4

    def test_sellers_sorted(self, simple_instance):
        assert simple_instance.sellers == (10, 11, 12, 13, 14)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: -1})

    def test_fractional_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 1.5})

    def test_non_positive_ceiling_rejected(self):
        with pytest.raises(ConfigurationError):
            WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 1}, price_ceiling=0.0)

    def test_effective_ceiling_defaults_to_max_price(self, simple_instance):
        assert simple_instance.effective_ceiling == 30.0

    def test_effective_ceiling_uses_explicit_value(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 1.0)], {1: 1}, price_ceiling=99.0
        )
        assert instance.effective_ceiling == 99.0


class TestViews:
    def test_bids_of_filters_by_seller(self, simple_instance):
        assert [b.key for b in simple_instance.bids_of(10)] == [(10, 0)]

    def test_without_seller_removes_all_its_bids(self, simple_instance):
        reduced = simple_instance.without_seller(10)
        assert 10 not in reduced.sellers
        assert reduced.demand == simple_instance.demand

    def test_replace_bid_swaps_matching_key(self, simple_instance):
        new = bid(11, {1}, 2.5)
        replaced = simple_instance.replace_bid(new)
        assert replaced.bids_of(11)[0].price == 2.5

    def test_replace_bid_unknown_key_rejected(self, simple_instance):
        with pytest.raises(ConfigurationError):
            simple_instance.replace_bid(bid(99, {1}, 2.5))


class TestFeasibility:
    def test_simple_instance_feasible(self, simple_instance):
        simple_instance.check_feasible()

    def test_undersupplied_buyer_infeasible(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 1.0)], {1: 2}
        )
        with pytest.raises(InfeasibleInstanceError, match="distinct sellers"):
            instance.check_feasible()

    def test_alternative_bids_do_not_double_count(self):
        # Seller 10's two alternatives cover buyers 1 and 2, but only one
        # can win; buyer demand of one unit each from two buyers needs a
        # second seller.
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
            ],
            {1: 1, 2: 1},
        )
        assert not instance.is_feasible()

    def test_is_feasible_boolean_wrapper(self, simple_instance):
        assert simple_instance.is_feasible()

    def test_zero_demand_always_feasible(self):
        instance = WSPInstance.from_bids([], {})
        instance.check_feasible()


class TestMatrices:
    def test_shapes_and_contents(self, simple_instance):
        c, a_cover, b_cover, a_seller, b_seller = (
            simple_instance.constraint_matrices()
        )
        assert c.shape == (5,)
        assert a_cover.shape == (3, 5)
        assert a_seller.shape == (5, 5)
        assert np.all(b_seller == 1)
        # Buyer 3 (row 2) is covered by bids of sellers 12, 13, 14.
        assert list(np.nonzero(a_cover[2])[0]) == [2, 3, 4]
        assert b_cover[2] == 2


class TestSolutionVerification:
    def test_valid_solution_accepted(self, simple_instance):
        chosen = [
            simple_instance.bids[1],  # (11, {1})
            simple_instance.bids[2],  # (12, {2,3})
            simple_instance.bids[4],  # (14, {3})
        ]
        simple_instance.verify_solution(chosen)
        assert simple_instance.solution_cost(chosen) == pytest.approx(18.0)

    def test_double_selection_rejected(self, simple_instance):
        first = simple_instance.bids[0]
        with pytest.raises(InfeasibleInstanceError):
            simple_instance.verify_solution([first, first])

    def test_under_coverage_rejected(self, simple_instance):
        with pytest.raises(InfeasibleInstanceError):
            simple_instance.verify_solution([simple_instance.bids[1]])

    def test_two_bids_same_seller_rejected(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 1.0, index=0), bid(10, {1}, 2.0, index=1), bid(11, {1}, 3.0)],
            {1: 1},
        )
        with pytest.raises(InfeasibleInstanceError):
            instance.verify_solution([instance.bids[0], instance.bids[1]])


class TestCoverageState:
    def test_utility_counts_unmet_covered_buyers(self):
        state = CoverageState(demand={1: 2, 2: 1})
        offer = bid(10, {1, 2}, 1.0)
        assert state.utility_of(offer) == 2
        state.apply(offer)
        assert state.utility_of(bid(11, {1, 2}, 1.0)) == 1  # buyer 2 done

    def test_apply_returns_marginal_units(self):
        state = CoverageState(demand={1: 1})
        assert state.apply(bid(10, {1}, 1.0)) == 1
        assert state.apply(bid(11, {1}, 1.0)) == 0

    def test_unmet_and_satisfied(self):
        state = CoverageState(demand={1: 2})
        assert state.unmet == 2 and not state.satisfied
        state.apply(bid(10, {1}, 1.0))
        state.apply(bid(11, {1}, 1.0))
        assert state.unmet == 0 and state.satisfied

    def test_copy_is_independent(self):
        state = CoverageState(demand={1: 1})
        clone = state.copy()
        state.apply(bid(10, {1}, 1.0))
        assert clone.unmet == 1 and state.unmet == 0
