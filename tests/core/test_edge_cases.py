"""Edge-case tests across core paths not covered by the main suites."""

import pytest

from repro.core.bids import Bid
from repro.core.msoa import MultiStageOnlineAuction
from repro.core.outcomes import RoundResult
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    InfeasibleInstanceError,
    MechanismError,
    ReproError,
    SimulationError,
    SolverError,
)


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            InfeasibleInstanceError,
            SolverError,
            MechanismError,
            CapacityExceededError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        # Callers used to ValueError semantics can catch it as one.
        assert issubclass(ConfigurationError, ValueError)

    def test_solver_and_mechanism_errors_are_runtime_errors(self):
        assert issubclass(SolverError, RuntimeError)
        assert issubclass(MechanismError, RuntimeError)


class TestBestEffortDoubleFailure:
    def test_returns_empty_round_when_clamp_cannot_help(self):
        # Round demands a buyer no admissible bid covers at all; the
        # clamp zeroes it and the round completes with what remains.
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 5.0)], {1: 1, 2: 3}
        )
        auction = MultiStageOnlineAuction({10: 5}, on_infeasible="best_effort")
        result = auction.process_round(instance)
        winners = {w.bid.seller for w in result.outcome.winners}
        assert winners == {10}  # buyer 1 served, buyer 2 dropped

    def test_totally_dry_market_yields_empty_round(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 5.0)], {1: 1}
        )
        auction = MultiStageOnlineAuction({10: 1}, on_infeasible="best_effort")
        auction.process_round(instance)  # consumes the only capacity
        second = auction.process_round(instance)
        assert second.outcome.winners == ()
        assert second.social_cost == 0.0


class TestRoundResultViews:
    def test_social_cost_uses_original_prices(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 5.0), bid(11, {1}, 7.0)], {1: 1}
        )
        auction = MultiStageOnlineAuction({10: 5, 11: 5})
        first = auction.process_round(instance)
        # After a win, the scaled price exceeds the original; the round's
        # social cost must still be booked at the announced price.
        second = auction.process_round(instance)
        for result in (first, second):
            for winner in result.outcome.winners:
                original = result.original_bids[winner.bid.key]
                assert result.social_cost <= sum(
                    b.price for b in result.original_bids.values()
                )
                assert winner.original_price == pytest.approx(original.price)

    def test_round_result_is_frozen(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 5.0)], {1: 1})
        auction = MultiStageOnlineAuction({10: 5})
        result = auction.process_round(instance)
        assert isinstance(result, RoundResult)
        with pytest.raises(AttributeError):
            result.round_index = 99  # type: ignore[misc]


class TestExhaustiveFeasibility:
    def test_small_instance_exact_check_catches_joint_conflict(self):
        # Both buyers' only supply is seller 10's two mutually exclusive
        # alternatives: per-buyer counts pass, joint selection cannot.
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
            ],
            {1: 1, 2: 1},
        )
        assert not instance.is_feasible()

    def test_exhaustive_check_finds_interleaved_solution(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
                bid(11, {1}, 1.0, index=0),
                bid(11, {2}, 1.0, index=1),
            ],
            {1: 1, 2: 1},
        )
        assert instance.is_feasible()
        outcome = run_ssam(instance)
        outcome.verify()


class TestZeroPriceBids:
    def test_free_offers_are_legal_and_win(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 0.0), bid(11, {1}, 9.0)], {1: 1}
        )
        outcome = run_ssam(instance)
        assert outcome.winner_keys == {(10, 0)}
        assert outcome.social_cost == 0.0
        # Payment still covers the (zero) price; the runner-up sets it.
        assert outcome.winners[0].payment >= 0.0
