"""Unit tests for SSAM (Algorithm 1)."""

import pytest

from repro.core.bids import Bid
from repro.core.ssam import PaymentRule, greedy_selection, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestGreedySelection:
    def test_picks_cheapest_average_price_first(self, market):
        steps = greedy_selection(market.bids, dict(market.demand))
        # (14,{3}) at 4/1 = 4.0 vs (12,{2,3}) at 9/2 = 4.5: seller 14 first.
        assert steps[0].bid.key == (14, 0)
        assert steps[0].ratio == pytest.approx(4.0)

    def test_each_seller_wins_at_most_once(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
                bid(11, {1, 2}, 10.0),
                bid(12, {1, 2}, 11.0),
            ],
            {1: 1, 2: 1},
        )
        steps = greedy_selection(instance.bids, dict(instance.demand))
        sellers = [s.bid.seller for s in steps]
        assert len(sellers) == len(set(sellers))

    def test_raises_on_infeasible_demand(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 3})
        with pytest.raises(InfeasibleInstanceError):
            greedy_selection(instance.bids, dict(instance.demand))

    def test_require_feasible_false_truncates(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 3})
        steps = greedy_selection(
            instance.bids, dict(instance.demand), require_feasible=False
        )
        assert len(steps) == 1

    def test_coverage_before_reflects_history(self, market):
        steps = greedy_selection(market.bids, dict(market.demand))
        assert steps[0].coverage_before == {1: 0, 2: 0, 3: 0}
        later = steps[1].coverage_before
        assert sum(later.values()) > 0

    def test_guard_avoids_stranding(self):
        # Buyer 1 needs 2 units and is covered only by sellers 10 and 11.
        # Seller 10 also has a dirt-cheap alternative covering buyer 2;
        # the unguarded greedy would take it and strand buyer 1.
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 6.0, index=0),
                bid(10, {2}, 0.5, index=1),
                bid(11, {1}, 6.0),
                bid(12, {2}, 8.0),
            ],
            {1: 2, 2: 1},
        )
        steps = greedy_selection(instance.bids, dict(instance.demand))
        chosen = {s.bid.key for s in steps}
        assert (10, 0) in chosen and (11, 0) in chosen
        instance.verify_solution([s.bid for s in steps])

    def test_unguarded_greedy_strands_on_same_instance(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 6.0, index=0),
                bid(10, {2}, 0.5, index=1),
                bid(11, {1}, 6.0),
                bid(12, {2}, 8.0),
            ],
            {1: 2, 2: 1},
        )
        with pytest.raises(InfeasibleInstanceError):
            greedy_selection(
                instance.bids, dict(instance.demand), guard_feasibility=False
            )


class TestRunSSAM:
    def test_outcome_is_primal_feasible(self, market):
        outcome = run_ssam(market)
        outcome.verify()

    def test_social_cost_matches_winner_prices(self, market):
        outcome = run_ssam(market)
        assert outcome.social_cost == pytest.approx(
            sum(w.bid.price for w in outcome.winners)
        )

    def test_empty_demand_returns_empty_outcome(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        outcome = run_ssam(instance)
        assert outcome.winners == ()
        assert outcome.social_cost == 0.0

    def test_infeasible_instance_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            run_ssam(instance)

    @pytest.mark.parametrize("rule", list(PaymentRule))
    def test_individual_rationality(self, market, rule):
        outcome = run_ssam(market, payment_rule=rule)
        for winner in outcome.winners:
            assert winner.payment >= winner.bid.price - 1e-9

    def test_payment_rules_share_allocation(self, market):
        critical = run_ssam(market, payment_rule=PaymentRule.CRITICAL_RERUN)
        runner_up = run_ssam(market, payment_rule=PaymentRule.ITERATION_RUNNER_UP)
        assert critical.winner_keys == runner_up.winner_keys

    def test_runner_up_payment_never_exceeds_critical(self, market):
        # The runner-up rule is the first-iteration threshold; the true
        # critical value maximizes thresholds over all iterations of the
        # reduced run, so it can only be larger.
        critical = run_ssam(market, payment_rule=PaymentRule.CRITICAL_RERUN)
        runner_up = run_ssam(market, payment_rule=PaymentRule.ITERATION_RUNNER_UP)
        crit = {w.bid.key: w.payment for w in critical.winners}
        for winner in runner_up.winners:
            assert winner.payment <= crit[winner.bid.key] + 1e-9

    def test_duals_certify_lower_bound(self, market):
        outcome = run_ssam(market)
        duals, objective = outcome.duals.fitted()
        assert objective <= outcome.social_cost + 1e-9
        assert all(v >= 0 for v in duals.values())

    def test_original_prices_override_reporting(self, market):
        overrides = {b.key: 1.0 for b in market.bids}
        outcome = run_ssam(market, original_prices=overrides)
        assert outcome.social_cost == pytest.approx(len(outcome.winners))

    def test_monopolist_payment_capped_by_ceiling(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 2.0)], {1: 1}, price_ceiling=50.0
        )
        outcome = run_ssam(instance)
        assert outcome.winners[0].payment == pytest.approx(50.0)

    def test_ratio_bound_at_least_one(self, market):
        assert run_ssam(market).ratio_bound >= 1.0


class TestMonotonicity:
    """Lemma 2: a lower price can only help a bid win."""

    def test_lowering_winner_price_keeps_it_winning(self, market):
        baseline = run_ssam(market)
        for winner in baseline.winners:
            cheaper = winner.bid.with_price(winner.bid.price * 0.5)
            outcome = run_ssam(market.replace_bid(cheaper))
            assert cheaper.key in outcome.winner_keys

    def test_raising_loser_price_keeps_it_losing(self, market):
        baseline = run_ssam(market)
        losers = [
            b for b in market.bids if b.key not in baseline.winner_keys
        ]
        for loser in losers:
            pricier = loser.with_price(loser.price * 2.0)
            outcome = run_ssam(market.replace_bid(pricier))
            assert pricier.key not in outcome.winner_keys
