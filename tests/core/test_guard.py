"""Focused tests for the greedy's feasibility-guard tiers.

The cheap guard (per-buyer distinct-supplier counts) handles almost every
instance; the exact residual-feasibility guard is the escalation used
when alternative-bid conflicts defeat the cheap lookahead.  These tests
pin both tiers on hand-built instances, including the regression cases
discovered by hypothesis during development.
"""

import pytest

from repro.core.bids import Bid
from repro.core.ssam import PaymentRule, greedy_selection, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


class TestCheapGuard:
    def test_protects_sole_supplier(self):
        # Seller 10's cheap alternative would consume the only supplier of
        # buyer 1's second unit.
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 6.0, index=0),
                bid(10, {2}, 0.5, index=1),
                bid(11, {1}, 6.0),
                bid(12, {2}, 8.0),
            ],
            {1: 2, 2: 1},
        )
        outcome = run_ssam(instance)
        outcome.verify()

    def test_waived_when_no_candidate_is_safe(self):
        # Single seller covering a single buyer: the guard cannot improve
        # anything; selection must still happen.
        instance = WSPInstance.from_bids([bid(10, {1}, 3.0)], {1: 1})
        steps = greedy_selection(instance.bids, {1: 1})
        assert len(steps) == 1


class TestExactGuardEscalation:
    # Hypothesis-discovered regression: cheap guard passes per-buyer
    # counts, but seller 102's one-win budget cannot serve buyers 0 and 1
    # simultaneously through different alternative bids.
    REGRESSION = [
        bid(100, {2}, 2.0),
        bid(101, {0, 1}, 2.0, index=0),
        bid(101, {2}, 1.0, index=1),
        bid(102, {0}, 1.0, index=0),
        bid(102, {1}, 1.0, index=1),
    ]

    def test_cheap_guard_alone_strands(self):
        demand = {0: 1, 1: 1, 2: 1}
        with pytest.raises(InfeasibleInstanceError):
            greedy_selection(tuple(self.REGRESSION), dict(demand))

    def test_exact_guard_completes(self):
        demand = {0: 1, 1: 1, 2: 1}
        steps = greedy_selection(
            tuple(self.REGRESSION), dict(demand), exact_guard=True
        )
        instance = WSPInstance.from_bids(self.REGRESSION, demand)
        instance.verify_solution([s.bid for s in steps])

    def test_run_ssam_escalates_transparently(self):
        instance = WSPInstance.from_bids(
            self.REGRESSION, {0: 1, 1: 1, 2: 1}
        )
        outcome = run_ssam(instance)
        outcome.verify()

    @pytest.mark.parametrize("rule", list(PaymentRule))
    def test_escalated_run_keeps_ir(self, rule):
        instance = WSPInstance.from_bids(
            self.REGRESSION, {0: 1, 1: 1, 2: 1}
        )
        outcome = run_ssam(instance, payment_rule=rule)
        for winner in outcome.winners:
            assert winner.payment >= winner.bid.price - 1e-9

    def test_truly_infeasible_still_raises_under_exact_guard(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            greedy_selection(
                instance.bids, dict(instance.demand), exact_guard=True
            )


class TestGuardNeutrality:
    def test_guard_does_not_change_easy_instances(self):
        # On an instance with abundant supply, guarded and unguarded
        # selections coincide (the guard never fires).
        bids = [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ]
        demand = {1: 1, 2: 1, 3: 2}
        guarded = greedy_selection(tuple(bids), dict(demand))
        unguarded = greedy_selection(
            tuple(bids), dict(demand), guard_feasibility=False
        )
        assert [s.bid.key for s in guarded] == [s.bid.key for s in unguarded]
