"""Unit tests for the dual-fitting bookkeeping (Lemma 1 / Theorem 3)."""

import pytest

from repro.core.bids import Bid
from repro.core.duals import DualSolution
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import MechanismError
from repro.solvers.milp import solve_wsp_optimal


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestRecording:
    def test_record_and_total(self, market):
        duals = DualSolution(instance=market)
        duals.record_unit(1, 4.0)
        duals.record_unit(3, 2.0)
        duals.record_unit(3, 6.0)
        assert duals.total_tagged_price == pytest.approx(12.0)
        assert duals.unit_prices[3] == [2.0, 6.0]

    def test_negative_price_rejected(self, market):
        duals = DualSolution(instance=market)
        with pytest.raises(MechanismError):
            duals.record_unit(1, -1.0)

    def test_bad_scale_rejected(self, market):
        duals = DualSolution(instance=market)
        duals.record_unit(1, 4.0)
        with pytest.raises(MechanismError):
            duals.buyer_duals(scale=0.0)


class TestCertificates:
    def test_tagged_total_equals_primal_objective(self, market):
        outcome = run_ssam(market)
        assert outcome.duals.total_tagged_price == pytest.approx(
            outcome.social_cost
        )

    def test_fitted_duals_feasible(self, market):
        outcome = run_ssam(market)
        duals, _ = outcome.duals.fitted()
        for offer in market.bids:
            load = sum(duals.get(b, 0.0) for b in offer.covered)
            assert load <= offer.price + 1e-9

    def test_certified_bound_below_optimum(self, market):
        outcome = run_ssam(market)
        optimum = solve_wsp_optimal(market).objective
        assert outcome.duals.certified_lower_bound() <= optimum + 1e-9

    def test_theoretical_scale_matches_ratio_bound(self, market):
        outcome = run_ssam(market)
        assert outcome.duals.theoretical_scale == pytest.approx(
            outcome.ratio_bound
        )

    def test_objective_scales_inversely(self, market):
        outcome = run_ssam(market)
        assert outcome.duals.objective(scale=2.0) == pytest.approx(
            2.0 * outcome.duals.objective(scale=4.0)
        )

    def test_max_violation_zero_price_bid(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 0.0), bid(11, {1}, 2.0)], {1: 1}
        )
        duals = DualSolution(instance=instance)
        duals.record_unit(1, 2.0)
        assert duals.max_violation(scale=1.0) == float("inf")
