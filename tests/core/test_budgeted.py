"""Unit tests for the budget-constrained auction (Section IV's 𝒲)."""

import pytest

from repro.core.bids import Bid
from repro.core.budgeted import run_budgeted_ssam
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestBudgetedSSAM:
    def test_generous_budget_matches_plain_ssam(self, market):
        plain = run_ssam(market)
        budgeted = run_budgeted_ssam(market, budget=plain.total_payment + 1.0)
        assert budgeted.outcome.winner_keys == plain.winner_keys
        assert not budgeted.truncated
        assert budgeted.unserved_units == 0
        assert budgeted.coverage_fraction == 1.0

    def test_tight_budget_truncates_in_greedy_order(self, market):
        plain = run_ssam(market)
        first_payment = min(
            plain.winners, key=lambda w: w.iteration
        ).payment
        budgeted = run_budgeted_ssam(market, budget=first_payment + 0.01)
        assert budgeted.truncated
        assert len(budgeted.outcome.winners) >= 1
        assert budgeted.budget_spent <= budgeted.budget + 1e-9
        assert budgeted.unserved_units > 0
        assert budgeted.coverage_fraction < 1.0

    def test_zero_budget_admits_nobody(self, market):
        budgeted = run_budgeted_ssam(market, budget=0.0)
        assert budgeted.outcome.winners == ()
        assert budgeted.unserved_units == market.total_demand
        assert budgeted.coverage_fraction == 0.0

    def test_spend_never_exceeds_budget(self, market):
        plain = run_ssam(market)
        for fraction in (0.2, 0.5, 0.8):
            cap = plain.total_payment * fraction
            budgeted = run_budgeted_ssam(market, budget=cap)
            assert budgeted.budget_spent <= cap + 1e-9

    def test_admitted_winners_keep_critical_payments(self, market):
        plain = run_ssam(market)
        payments = {w.bid.key: w.payment for w in plain.winners}
        budgeted = run_budgeted_ssam(market, budget=plain.total_payment / 2)
        for winner in budgeted.outcome.winners:
            assert winner.payment == pytest.approx(payments[winner.bid.key])
            assert winner.payment >= winner.bid.price - 1e-9  # IR preserved

    def test_negative_budget_rejected(self, market):
        with pytest.raises(ConfigurationError):
            run_budgeted_ssam(market, budget=-1.0)

    def test_empty_demand_costs_nothing(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        budgeted = run_budgeted_ssam(instance, budget=100.0)
        assert budgeted.social_cost == 0.0
        assert budgeted.coverage_fraction == 1.0
