"""The ``parallelism="auto"`` policy: sizing heuristic and validation.

Process pools only pay off on large instances (the engine bench shows
small cases running slower under forced parallelism than serially), so
``"auto"`` — the new default on :func:`repro.core.ssam.run_ssam` and
:func:`repro.core.msoa.run_msoa` — resolves to serial below the
work threshold and to a bounded worker count above it.  Explicit integer
values keep their exact historical meaning.
"""

import pytest

from repro.core.engine import (
    AUTO_PARALLELISM_THRESHOLD,
    MAX_AUTO_WORKERS,
    resolve_parallelism,
    validate_parallelism,
)
from repro.core.msoa import MultiStageOnlineAuction
from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig


@pytest.fixture
def market(make_instance):
    return make_instance(42, n_sellers=20, n_buyers=5)


class TestResolve:
    def test_explicit_values_are_honoured_verbatim(self):
        for explicit in (1, 2, 7):
            assert (
                resolve_parallelism(explicit, n_bids=10**6, n_winners=10**3)
                == explicit
            )

    def test_auto_stays_serial_below_the_work_threshold(self):
        assert resolve_parallelism("auto", n_bids=150, n_winners=40) == 1
        assert (
            AUTO_PARALLELISM_THRESHOLD > 150 * 40
        ), "fig4b-sized cases must stay serial"

    def test_auto_stays_serial_with_fewer_than_two_winners(self):
        assert resolve_parallelism("auto", n_bids=10**6, n_winners=1) == 1
        assert resolve_parallelism("auto", n_bids=10**6, n_winners=0) == 1

    def test_auto_engages_workers_on_large_instances(self):
        workers = resolve_parallelism("auto", n_bids=1600, n_winners=400)
        assert 2 <= workers <= MAX_AUTO_WORKERS

    def test_auto_never_outnumbers_the_winners(self):
        assert resolve_parallelism("auto", n_bids=10**6, n_winners=3) <= 3


class TestValidate:
    @pytest.mark.parametrize("good", ["auto", 1, 2, 16])
    def test_accepts_auto_and_positive_ints(self, good):
        validate_parallelism(good)  # must not raise

    @pytest.mark.parametrize("bad", [0, -3, "fast", 2.5, True, None])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ConfigurationError):
            validate_parallelism(bad)


class TestEntryPoints:
    def test_auto_default_matches_forced_serial(self, market):
        auto = run_ssam(market, payment_rule=PaymentRule.CRITICAL_RERUN)
        serial = run_ssam(
            market, payment_rule=PaymentRule.CRITICAL_RERUN, parallelism=1
        )
        assert auto.to_dict() == serial.to_dict()

    def test_run_ssam_validates_auto_spelling(self, market):
        with pytest.raises(ConfigurationError):
            run_ssam(market, parallelism="turbo")

    def test_msoa_accepts_auto(self):
        auction = MultiStageOnlineAuction({1: 4.0}, parallelism="auto")
        assert auction._ssam_options["parallelism"] == "auto"
        with pytest.raises(ConfigurationError):
            MultiStageOnlineAuction({1: 4.0}, parallelism=0)

    def test_experiment_config_accepts_auto(self):
        assert ExperimentConfig(parallelism="auto").parallelism == "auto"
        assert ExperimentConfig().parallelism == 1  # sweep default unchanged
        with pytest.raises(ConfigurationError):
            ExperimentConfig(parallelism=0)
