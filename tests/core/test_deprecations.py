"""Tests for the deprecation shims kept through the mechanism refactor.

Two families: positional ``payment_rule`` on :func:`run_ssam` /
:func:`run_msoa` (now keyword-only, with a warning-and-forward shim), and
the old per-baseline result dataclasses (now aliases of the uniform
outcome types, warning at attribute access).  Both must keep old call
sites working bit-for-bit while announcing the new spelling.
"""

import warnings

import pytest

from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule, run_ssam

class TestPositionalPaymentRuleShim:
    def test_run_ssam_warns_and_forwards(self, make_instance):
        instance = make_instance()
        with pytest.warns(DeprecationWarning, match="positionally"):
            old_style = run_ssam(instance, PaymentRule.ITERATION_RUNNER_UP)
        new_style = run_ssam(
            instance, payment_rule=PaymentRule.ITERATION_RUNNER_UP
        )
        assert old_style.payment_rule == new_style.payment_rule
        assert old_style.total_payment == pytest.approx(
            new_style.total_payment
        )

    def test_run_ssam_rejects_extra_positionals(self, make_instance):
        with pytest.raises(TypeError, match="positional"):
            run_ssam(
                make_instance(),
                PaymentRule.ITERATION_RUNNER_UP,
                PaymentRule.CRITICAL_RERUN,
            )

    def test_run_msoa_warns_and_forwards(self, make_horizon):
        rounds, capacities = make_horizon(rounds=2)
        with pytest.warns(DeprecationWarning, match="run_msoa"):
            old_style = run_msoa(
                rounds, capacities, PaymentRule.ITERATION_RUNNER_UP
            )
        new_style = run_msoa(
            rounds, capacities, payment_rule=PaymentRule.ITERATION_RUNNER_UP
        )
        assert old_style.social_cost == pytest.approx(new_style.social_cost)

    def test_run_msoa_rejects_extra_positionals(self):
        with pytest.raises(TypeError, match="positional"):
            run_msoa(
                [],
                {1: 5},
                PaymentRule.ITERATION_RUNNER_UP,
                PaymentRule.CRITICAL_RERUN,
            )

    def test_keyword_calls_stay_silent(self, make_instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_ssam(
                make_instance(), payment_rule=PaymentRule.CRITICAL_RERUN
            )


class TestDeprecatedResultAliases:
    # (alias, canonical name) pairs — every old result class must still
    # import from both its home module and the baselines package, warn
    # once at access, and resolve to the uniform outcome type.
    CASES = [
        ("VCGResult", "AuctionOutcome"),
        ("PayAsBidResult", "AuctionOutcome"),
        ("RandomSelectionResult", "AuctionOutcome"),
        ("PostedPriceResult", "PostedPriceOutcome"),
        ("GreedyVariantResult", "GreedyVariantOutcome"),
        ("OfflineResult", "OfflineOutcome"),
    ]

    @pytest.mark.parametrize("alias,canonical", CASES)
    def test_alias_warns_and_resolves(self, alias, canonical):
        import repro.baselines as baselines

        with pytest.warns(DeprecationWarning, match=alias):
            resolved = getattr(baselines, alias)
        canonical_type = self._canonical(canonical)
        assert resolved is canonical_type

    def _canonical(self, name):
        if name == "AuctionOutcome":
            from repro.core.outcomes import AuctionOutcome

            return AuctionOutcome
        import repro.baselines as baselines

        return getattr(baselines, name)

    def test_unknown_attribute_still_raises(self):
        import repro.baselines as baselines

        with pytest.raises(AttributeError):
            baselines.NoSuchResult

    def test_old_isinstance_checks_keep_working(self, make_instance):
        # The pattern old downstream code used: run a baseline, check the
        # result against the legacy class name.
        from repro.baselines.pay_as_bid import run_pay_as_bid

        outcome = run_pay_as_bid(make_instance())
        with pytest.warns(DeprecationWarning):
            from repro.baselines.pay_as_bid import PayAsBidResult
        assert isinstance(outcome, PayAsBidResult)
