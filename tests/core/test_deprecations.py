"""Tests for the deprecation shims kept through the mechanism refactor.

Three families: positional ``payment_rule`` on :func:`run_ssam` /
:func:`run_msoa` (now keyword-only, with a warning-and-forward shim),
the old per-baseline result dataclasses (now aliases of the uniform
outcome types, warning at attribute access), and direct
:class:`~repro.edge.platform.EdgePlatform` wiring (now routed through
:func:`repro.api.serve`, warning at construction).  All must keep old
call sites working bit-for-bit while announcing the new spelling.
"""

import warnings

import pytest

from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule, run_ssam

class TestPositionalPaymentRuleShim:
    def test_run_ssam_warns_and_forwards(self, make_instance):
        instance = make_instance()
        with pytest.warns(DeprecationWarning, match="positionally"):
            old_style = run_ssam(instance, PaymentRule.ITERATION_RUNNER_UP)
        new_style = run_ssam(
            instance, payment_rule=PaymentRule.ITERATION_RUNNER_UP
        )
        assert old_style.payment_rule == new_style.payment_rule
        assert old_style.total_payment == pytest.approx(
            new_style.total_payment
        )

    def test_run_ssam_rejects_extra_positionals(self, make_instance):
        with pytest.raises(TypeError, match="positional"):
            run_ssam(
                make_instance(),
                PaymentRule.ITERATION_RUNNER_UP,
                PaymentRule.CRITICAL_RERUN,
            )

    def test_run_msoa_warns_and_forwards(self, make_horizon):
        rounds, capacities = make_horizon(rounds=2)
        with pytest.warns(DeprecationWarning, match="run_msoa"):
            old_style = run_msoa(
                rounds, capacities, PaymentRule.ITERATION_RUNNER_UP
            )
        new_style = run_msoa(
            rounds, capacities, payment_rule=PaymentRule.ITERATION_RUNNER_UP
        )
        assert old_style.social_cost == pytest.approx(new_style.social_cost)

    def test_run_msoa_rejects_extra_positionals(self):
        with pytest.raises(TypeError, match="positional"):
            run_msoa(
                [],
                {1: 5},
                PaymentRule.ITERATION_RUNNER_UP,
                PaymentRule.CRITICAL_RERUN,
            )

    def test_keyword_calls_stay_silent(self, make_instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_ssam(
                make_instance(), payment_rule=PaymentRule.CRITICAL_RERUN
            )


class TestDeprecatedResultAliases:
    # (alias, canonical name) pairs — every old result class must still
    # import from both its home module and the baselines package, warn
    # once at access, and resolve to the uniform outcome type.
    CASES = [
        ("VCGResult", "AuctionOutcome"),
        ("PayAsBidResult", "AuctionOutcome"),
        ("RandomSelectionResult", "AuctionOutcome"),
        ("PostedPriceResult", "PostedPriceOutcome"),
        ("GreedyVariantResult", "GreedyVariantOutcome"),
        ("OfflineResult", "OfflineOutcome"),
    ]

    @pytest.mark.parametrize("alias,canonical", CASES)
    def test_alias_warns_and_resolves(self, alias, canonical):
        import repro.baselines as baselines

        with pytest.warns(DeprecationWarning, match=alias):
            resolved = getattr(baselines, alias)
        canonical_type = self._canonical(canonical)
        assert resolved is canonical_type

    def _canonical(self, name):
        if name == "AuctionOutcome":
            from repro.core.outcomes import AuctionOutcome

            return AuctionOutcome
        import repro.baselines as baselines

        return getattr(baselines, name)

    def test_unknown_attribute_still_raises(self):
        import repro.baselines as baselines

        with pytest.raises(AttributeError):
            baselines.NoSuchResult

    def test_old_isinstance_checks_keep_working(self, make_instance):
        # The pattern old downstream code used: run a baseline, check the
        # result against the legacy class name.
        from repro.baselines.pay_as_bid import run_pay_as_bid

        outcome = run_pay_as_bid(make_instance())
        with pytest.warns(DeprecationWarning):
            from repro.baselines.pay_as_bid import PayAsBidResult
        assert isinstance(outcome, PayAsBidResult)


class TestDirectPlatformWiring:
    """Direct ``EdgePlatform(...)`` warns; ``_create`` (the facade's
    path, which every non-deprecation test now uses) stays silent."""

    def _pieces(self):
        import numpy as np

        from repro.demand.estimator import DemandEstimator, DemandWeights
        from repro.demand.indicators import RequestRateIndicator
        from repro.edge.cloud import EdgeCloud
        from repro.edge.network import build_backhaul
        from repro.edge.users import build_user_population

        rng = np.random.default_rng(5)
        clouds = [EdgeCloud(0, capacity=40.0), EdgeCloud(1, capacity=40.0)]
        network = build_backhaul(rng, n_clouds=2)
        users = build_user_population(
            rng,
            n_users=10,
            access_points=2,
            services=(1, 2),
            sensitive_rate=0.25,
            tolerant_rate=0.5,
        )
        estimator = DemandEstimator(
            weights=DemandWeights(
                waiting=2.0, processing=1.0, request_rate=1.0
            ),
            request_rate=RequestRateIndicator(
                delta=0.5, neighbour_density=8.0
            ),
            max_units=3,
        )
        return clouds, network, users, estimator, rng

    def test_direct_wiring_warns_but_works(self):
        from repro.edge.platform import EdgePlatform

        clouds, network, users, estimator, rng = self._pieces()
        with pytest.warns(DeprecationWarning, match="serve"):
            platform = EdgePlatform(
                clouds, network, users, estimator, rng=rng, horizon_rounds=2
            )
        reports = platform.run(1)  # deprecated, not broken
        assert len(reports) == 1

    def test_create_classmethod_is_silent(self):
        from repro.edge.platform import EdgePlatform

        clouds, network, users, estimator, rng = self._pieces()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            platform = EdgePlatform._create(
                clouds, network, users, estimator, rng=rng, horizon_rounds=2
            )
        assert platform.horizon_rounds == 2
