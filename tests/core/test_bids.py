"""Unit tests for the bid data structures."""

import pytest

from repro.core.bids import Bid, BidderProfile, group_bids_by_seller, validate_bids
from repro.errors import ConfigurationError


def make_bid(seller=1, index=0, covered=(10, 11), price=5.0, true_cost=None):
    return Bid(
        seller=seller,
        index=index,
        covered=frozenset(covered),
        price=price,
        true_cost=true_cost,
    )


class TestBid:
    def test_key_is_seller_index_pair(self):
        assert make_bid(seller=3, index=2).key == (3, 2)

    def test_size_counts_covered_buyers(self):
        assert make_bid(covered=(10, 11, 12)).size == 3

    def test_cost_defaults_to_price(self):
        assert make_bid(price=7.5).cost == 7.5

    def test_cost_uses_true_cost_when_given(self):
        assert make_bid(price=7.5, true_cost=4.0).cost == 4.0

    def test_empty_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bid(covered=())

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bid(price=-1.0)

    def test_negative_true_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            make_bid(true_cost=-0.5)

    def test_seller_cannot_cover_itself(self):
        with pytest.raises(ConfigurationError):
            make_bid(seller=10, covered=(10, 11))

    def test_with_price_pins_true_cost(self):
        bid = make_bid(price=5.0)
        deviated = bid.with_price(9.0)
        assert deviated.price == 9.0
        assert deviated.cost == 5.0
        assert deviated.key == bid.key
        assert deviated.covered == bid.covered

    def test_with_price_preserves_existing_true_cost(self):
        bid = make_bid(price=5.0, true_cost=3.0)
        assert bid.with_price(9.0).cost == 3.0

    def test_bids_are_hashable_and_frozen(self):
        bid = make_bid()
        assert bid in {bid}
        with pytest.raises(AttributeError):
            bid.price = 1.0  # type: ignore[misc]


class TestBidderProfile:
    def test_positive_capacity_ok(self):
        assert BidderProfile(seller=1, capacity=5).capacity == 5

    @pytest.mark.parametrize("capacity", [0, -3])
    def test_non_positive_capacity_rejected(self, capacity):
        with pytest.raises(ConfigurationError):
            BidderProfile(seller=1, capacity=capacity)


class TestGrouping:
    def test_groups_by_seller_preserving_order(self):
        bids = [
            make_bid(seller=1, index=0),
            make_bid(seller=2, index=0),
            make_bid(seller=1, index=1),
        ]
        grouped = group_bids_by_seller(bids)
        assert sorted(grouped) == [1, 2]
        assert [b.index for b in grouped[1]] == [0, 1]

    def test_empty_input_gives_empty_mapping(self):
        assert group_bids_by_seller([]) == {}


class TestValidateBids:
    DEMAND = {10: 1, 11: 2}

    def test_valid_bids_pass_through_in_order(self):
        bids = [make_bid(seller=1), make_bid(seller=2)]
        assert validate_bids(bids, self.DEMAND) == tuple(bids)

    def test_duplicate_keys_rejected(self):
        bids = [make_bid(seller=1, index=0), make_bid(seller=1, index=0)]
        with pytest.raises(ConfigurationError, match="duplicate"):
            validate_bids(bids, self.DEMAND)

    def test_unknown_buyer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown buyers"):
            validate_bids([make_bid(covered=(10, 99))], self.DEMAND)

    def test_seller_doubling_as_buyer_rejected(self):
        with pytest.raises(ConfigurationError, match="both seller and buyer"):
            validate_bids([make_bid(seller=10, covered=(11,))], self.DEMAND)
