"""Unit tests for the ratio arithmetic (Theorems 3 and 7 bounds)."""

import math

import pytest

from repro.core.bids import Bid
from repro.core.ratios import (
    capacity_margin,
    harmonic,
    msoa_competitive_bound,
    price_spread,
    ssam_ratio_bound,
)
from repro.errors import ConfigurationError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


class TestHarmonic:
    def test_small_values_exact(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_monotone(self):
        values = [harmonic(n) for n in range(1, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_large_n_asymptotic_matches_exact(self):
        exact = sum(1.0 / k for k in range(1, 20_001))
        assert harmonic(20_000) == pytest.approx(exact, rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic(-1)


class TestPriceSpread:
    def test_single_bid_per_seller_gives_one(self):
        bids = [bid(1, {10}, 5.0), bid(2, {10}, 50.0)]
        assert price_spread(bids) == 1.0

    def test_multi_bid_seller_spread(self):
        bids = [bid(1, {10}, 5.0, index=0), bid(1, {11}, 20.0, index=1)]
        assert price_spread(bids) == pytest.approx(4.0)

    def test_worst_seller_dominates(self):
        bids = [
            bid(1, {10}, 5.0, index=0),
            bid(1, {11}, 10.0, index=1),
            bid(2, {10}, 1.0, index=0),
            bid(2, {11}, 10.0, index=1),
        ]
        assert price_spread(bids) == pytest.approx(10.0)

    def test_zero_min_with_positive_max_is_infinite(self):
        bids = [bid(1, {10}, 0.0, index=0), bid(1, {11}, 3.0, index=1)]
        assert math.isinf(price_spread(bids))

    def test_all_zero_prices_spread_one(self):
        bids = [bid(1, {10}, 0.0, index=0), bid(1, {11}, 0.0, index=1)]
        assert price_spread(bids) == 1.0

    def test_empty_bids_spread_one(self):
        assert price_spread([]) == 1.0


class TestSSAMBound:
    def test_single_bid_sellers_reduce_to_harmonic(self):
        bids = [bid(1, {10}, 5.0), bid(2, {10}, 7.0)]
        assert ssam_ratio_bound(3, bids) == pytest.approx(harmonic(3))

    def test_zero_demand_clamped_to_one_unit(self):
        assert ssam_ratio_bound(0, [bid(1, {10}, 5.0)]) == pytest.approx(1.0)


class TestCapacityMargin:
    def test_minimum_over_bids(self):
        bids = [bid(1, {10, 11}, 5.0), bid(2, {10}, 5.0)]
        beta = capacity_margin({1: 6, 2: 3}, bids)
        assert beta == pytest.approx(3.0)  # min(6/2, 3/1)

    def test_unconstrained_sellers_skipped(self):
        bids = [bid(1, {10, 11}, 5.0)]
        assert math.isinf(capacity_margin({}, bids))


class TestCompetitiveBound:
    def test_formula(self):
        assert msoa_competitive_bound(2.0, 3.0) == pytest.approx(3.0)

    def test_beta_at_most_one_gives_infinity(self):
        assert math.isinf(msoa_competitive_bound(2.0, 1.0))
        assert math.isinf(msoa_competitive_bound(2.0, 0.5))

    def test_non_positive_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            msoa_competitive_bound(0.0, 2.0)

    def test_bound_decreases_with_beta(self):
        bounds = [msoa_competitive_bound(2.0, b) for b in (1.5, 2.0, 4.0, 10.0)]
        assert all(b2 < b1 for b1, b2 in zip(bounds, bounds[1:]))
