"""Unit tests for the MSOA evaluation variants."""

import pytest

from repro.core.bids import Bid
from repro.core.variants import (
    VARIANT_RUNNERS,
    HorizonScenario,
    run_msoa_base,
    run_msoa_da,
    run_msoa_oa,
    run_msoa_rc,
)
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


def make_round(demand):
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        demand,
    )


@pytest.fixture
def scenario():
    true_rounds = tuple(make_round({1: 1, 2: 1, 3: 1}) for _ in range(3))
    # The estimator over-asks on buyer 3.
    estimated_rounds = tuple(make_round({1: 1, 2: 1, 3: 2}) for _ in range(3))
    return HorizonScenario(
        rounds_estimated=estimated_rounds,
        rounds_true=true_rounds,
        capacities={10: 8, 11: 6, 12: 8, 13: 10, 14: 6},
    )


class TestScenario:
    def test_mismatched_round_counts_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            HorizonScenario(
                rounds_estimated=scenario.rounds_estimated[:-1],
                rounds_true=scenario.rounds_true,
                capacities=scenario.capacities,
            )


class TestVariants:
    def test_da_uses_true_demand(self, scenario):
        base = run_msoa_base(scenario)
        da = run_msoa_da(scenario)
        # Over-estimation forces extra coverage, so base cost >= DA cost.
        assert base.social_cost >= da.social_cost - 1e-9

    def test_rc_relaxes_capacities(self, scenario):
        rc = run_msoa_rc(scenario, relaxation=3.0)
        for seller, cap in rc.capacities.items():
            assert cap >= scenario.capacities[seller]

    def test_oa_combines_both(self, scenario):
        oa = run_msoa_oa(scenario, relaxation=3.0)
        da = run_msoa_da(scenario)
        assert oa.social_cost <= da.social_cost + 1e-9

    def test_bad_relaxation_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            run_msoa_rc(scenario, relaxation=0.5)

    def test_registry_contains_all_four(self):
        assert set(VARIANT_RUNNERS) == {"MSOA", "MSOA-DA", "MSOA-RC", "MSOA-OA"}

    def test_all_runners_produce_capacity_safe_outcomes(self, scenario):
        for runner in VARIANT_RUNNERS.values():
            outcome = runner(scenario)
            outcome.verify_capacities()
