"""Unit tests for the columnar numerical core (repro.core.columnar).

The end-to-end bit-identity contract lives in
``tests/properties/test_columnar_equivalence.py``; these tests pin the
layer underneath it: the layout construction, the re-pricing path's
structural sharing, state-fork independence, the batched payment
kernel against per-winner scalar replays (including shuffled, subset,
duplicate, and non-winner probe lists), the engine-dispatch validation,
and the observability counters the new kernels emit.
"""

import math

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.columnar import (
    ColumnarInstance,
    ColumnarState,
    columnar_critical_payments,
    columnar_greedy_selection,
    structure_fingerprint,
)
from repro.core.engine import fast_critical_payment
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError


def tiny_instance():
    """A handcrafted market small enough to verify the layout by hand.

    Sellers 100/101/102; buyer 0 needs 2 units, buyer 1 needs 1, buyer 2
    has zero demand (stays in the map, contributes no utility).
    """
    bids = (
        Bid(seller=100, index=0, covered=frozenset({0, 1}), price=10.0),
        Bid(seller=100, index=1, covered=frozenset({0}), price=6.0),
        Bid(seller=101, index=0, covered=frozenset({0, 2}), price=8.0),
        Bid(seller=102, index=0, covered=frozenset({1}), price=5.0),
    )
    demand = {0: 2, 1: 1, 2: 0}
    return WSPInstance.from_bids(list(bids), demand, price_ceiling=50.0)


class TestBuild:
    def test_layout_matches_the_bids(self):
        instance = tiny_instance()
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        assert inst.n_bids == 4
        assert inst.buyers == [0, 1, 2]
        assert inst.demand.tolist() == [2, 1, 0]
        assert inst.prices.tolist() == [10.0, 6.0, 8.0, 5.0]
        assert inst.seller_ids.tolist() == [100, 100, 101, 102]
        # Dense mask row i == bid i's covered set (buyer-column order).
        assert inst.cover.tolist() == [
            [True, True, False],
            [True, False, False],
            [True, False, True],
            [False, True, False],
        ]
        # Utilities count *positive-demand* buyers only (buyer 2 is 0).
        assert inst.initial_utilities.tolist() == [2, 1, 1, 1]
        # Suppliers: distinct sellers covering each buyer.
        assert inst.initial_suppliers.tolist() == [2, 2, 1]
        assert inst.row_of[(101, 0)] == 2

    def test_csr_and_dense_masks_agree(self, make_instance):
        instance = make_instance(3)
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        for row in range(inst.n_bids):
            cols = inst.cover_cols[
                inst.cover_indptr[row] : inst.cover_indptr[row + 1]
            ]
            assert sorted(np.flatnonzero(inst.cover[row])) == sorted(cols)

    def test_fingerprint_ignores_prices_only(self):
        instance = tiny_instance()
        repriced = [bid.with_price(bid.price + 1.0) for bid in instance.bids]
        assert structure_fingerprint(
            instance.bids, instance.demand
        ) == structure_fingerprint(repriced, instance.demand)
        recovered = list(instance.bids)
        recovered[0] = Bid(
            seller=100, index=0, covered=frozenset({0}), price=10.0
        )
        assert structure_fingerprint(
            instance.bids, instance.demand
        ) != structure_fingerprint(recovered, instance.demand)
        assert structure_fingerprint(
            instance.bids, instance.demand
        ) != structure_fingerprint(instance.bids, {0: 1, 1: 1, 2: 0})


class TestWithBids:
    def test_shares_structure_and_swaps_prices(self):
        instance = tiny_instance()
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        repriced = inst.with_bids(
            [bid.with_price(bid.price * 2) for bid in instance.bids]
        )
        assert repriced.prices.tolist() == [20.0, 12.0, 16.0, 10.0]
        # Structural arrays are the *same objects*, not copies.
        assert repriced.cover is inst.cover
        assert repriced.seller_cov is inst.seller_cov
        assert repriced.initial_utilities is inst.initial_utilities
        assert repriced.row_of is inst.row_of
        assert repriced.fingerprint == inst.fingerprint

    def test_rejects_length_and_key_mismatches(self):
        instance = tiny_instance()
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        with pytest.raises(ValueError, match="expected 4 bids"):
            inst.with_bids(instance.bids[:2])
        reordered = (instance.bids[1], instance.bids[0]) + instance.bids[2:]
        with pytest.raises(ValueError, match="key mismatch"):
            inst.with_bids(reordered)


class TestStateFork:
    def test_fork_is_independent(self):
        instance = tiny_instance()
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        state = ColumnarState(inst)
        fork = state.fork()
        fork.apply_win(0)
        fork.remove_seller(int(inst.seller_rows[0]))
        assert state.granted.tolist() == [0, 0, 0]
        assert state.active.all()
        assert state.utilities.tolist() == [2, 1, 1, 1]
        assert state.unmet == 3
        assert not fork.active[0] and not fork.active[1]
        assert fork.unmet == 1

    def test_apply_win_mirrors_reference_semantics(self):
        instance = tiny_instance()
        inst = ColumnarInstance.build(instance.bids, instance.demand)
        state = ColumnarState(inst)
        # Bid 3 covers buyer 1 (demand 1): buyer saturates, every bid
        # covering it loses a utility point, and the gain is 1 unit.
        assert state.apply_win(3) == 1
        assert state.utilities.tolist() == [1, 1, 1, 0]
        # Winning bid 2 again grants buyer 0 (buyer 2 has no demand).
        assert state.apply_win(2) == 1
        # Bid 0 now only gains on buyer 0; buyer 1 is saturated, so the
        # overshoot grant counts zero for it.
        assert state.apply_win(0) == 1
        assert state.satisfied


class TestEngineDispatch:
    def test_unknown_engine_rejected(self, make_instance):
        with pytest.raises(ConfigurationError, match="columnar"):
            run_ssam(make_instance(), engine="vectorised")

    def test_mismatched_layout_rejected(self, make_instance):
        other = make_instance(1, n_sellers=6)
        layout = ColumnarInstance.build(other.bids, other.demand)
        with pytest.raises(ConfigurationError, match="does not match"):
            run_ssam(make_instance(2), engine="columnar", columnar=layout)

    def test_prebuilt_layout_is_used(self, make_instance):
        instance = make_instance(3)
        demand = {b: u for b, u in instance.demand.items() if u > 0}
        layout = ColumnarInstance.build(instance.bids, demand)
        with_layout = run_ssam(
            instance, engine="columnar", columnar=layout
        )
        without = run_ssam(instance, engine="columnar")
        assert with_layout.to_dict() == without.to_dict()

    def test_pay_as_bid_engine_validation(self, make_instance):
        from repro.baselines.pay_as_bid import run_pay_as_bid

        with pytest.raises(ConfigurationError, match="engine"):
            run_pay_as_bid(make_instance(), engine="nope")


class TestBatchedPayments:
    def _selection(self, instance):
        demand = {b: u for b, u in instance.demand.items() if u > 0}
        return columnar_greedy_selection(instance.bids, demand)

    def test_matches_scalar_replay_for_winners(self, make_instance):
        for seed in range(10):
            instance = make_instance(seed)
            winners = [step.bid for step in self._selection(instance)]
            batched = columnar_critical_payments(instance, winners)
            scalar = [
                fast_critical_payment(instance, winner)
                for winner in winners
            ]
            assert batched == scalar, f"seed {seed}"

    def test_order_subsets_and_duplicates(self, make_instance):
        instance = make_instance(4)
        winners = [step.bid for step in self._selection(instance)]
        if len(winners) < 2:
            pytest.skip("needs at least two winners")
        probe = [winners[-1], winners[0], winners[-1]]
        batched = columnar_critical_payments(instance, probe)
        scalar = [fast_critical_payment(instance, bid) for bid in probe]
        assert batched == scalar
        assert batched[0] == batched[2]  # deduped rows share one replay

    def test_non_winner_bids_are_priced_too(self, make_instance):
        # The kernel generalizes to arbitrary bids (losers replay the
        # whole main trajectory, with the sibling-seller early exit).
        instance = make_instance(5)
        winner_keys = {
            step.bid.key for step in self._selection(instance)
        }
        losers = [
            bid for bid in instance.bids if bid.key not in winner_keys
        ][:4]
        if not losers:
            pytest.skip("every bid won")
        batched = columnar_critical_payments(instance, losers)
        scalar = [fast_critical_payment(instance, bid) for bid in losers]
        assert batched == scalar

    def test_empty_winner_list(self, make_instance):
        assert columnar_critical_payments(make_instance(), []) == []

    def test_payments_are_finite_and_above_price(self, make_instance):
        instance = make_instance(6)
        outcome = run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="columnar",
        )
        for winner in outcome.winners:
            assert math.isfinite(winner.payment)
            assert winner.payment >= winner.bid.price - 1e-9


class TestObservabilityCounters:
    def test_columnar_run_emits_counters_and_phases(self, make_instance):
        from repro.obs.runtime import STATE, _reset_for_tests, configure

        instance = make_instance(7)
        _reset_for_tests()
        try:
            configure()
            run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="columnar",
            )
            metrics = STATE.metrics
            assert metrics.counter("engine.columnar.builds").value >= 1
            assert (
                metrics.counter("engine.columnar.candidates_scanned").value
                > 0
            )
            assert (
                metrics.counter("engine.columnar.payment_batches").value == 1
            )
            assert (
                metrics.counter("engine.columnar.payment_forks").value >= 1
            )
            assert (
                metrics.counter(
                    "engine.columnar.payment_prefix_iterations"
                ).value
                >= 1
            )
            # @profiled phases on the new kernels.
            assert metrics.counter("phase.columnar.build.calls").value >= 1
            assert (
                metrics.counter("phase.columnar.payments.calls").value == 1
            )
        finally:
            _reset_for_tests()

    def test_with_bids_counts_price_refreshes(self, make_instance):
        from repro.obs.runtime import STATE, _reset_for_tests, configure

        instance = make_instance(8)
        demand = {b: u for b, u in instance.demand.items() if u > 0}
        layout = ColumnarInstance.build(instance.bids, demand)
        _reset_for_tests()
        try:
            configure()
            layout.with_bids(instance.bids)
            assert (
                STATE.metrics.counter(
                    "engine.columnar.price_refreshes"
                ).value
                == 1
            )
        finally:
            _reset_for_tests()
