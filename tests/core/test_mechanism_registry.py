"""Tests for the mechanism protocol and the string-keyed registry.

The registry is the dispatch surface the experiments, the CLI, and the
edge platform all share, so these tests pin down its contract: every
entry resolves to a callable of the declared kind, single-round entries
uniformly emit :class:`AuctionOutcome` tagged with their registry name,
and the economics metadata (completeness, individual rationality) holds
on random feasible instances for every registered mechanism at once.
"""

import pytest
from hypothesis import given, settings

from repro.core.mechanism import (
    Mechanism,
    OnlineMechanism,
    SingleRoundOnlineAdapter,
    outcome_from_selection,
)
from repro.core.outcomes import AuctionOutcome, OnlineOutcome
from repro.core.bids import Bid
from repro.core.registry import (
    CERTIFIABLE_PROPERTIES,
    MechanismSpec,
    get_mechanism,
    get_spec,
    list_mechanisms,
    make_online,
    mechanism_specs,
    register,
)
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.experiments.storage import load_outcome, save_outcome
from tests.properties.strategies import wsp_instances

EXPECTED_NAMES = {
    "ssam",
    "ssam-reference",
    "vcg",
    "pay-as-bid",
    "posted-price",
    "random",
    "greedy-density",
    "greedy-cheapest-price",
    "greedy-largest-coverage",
    "msoa",
    "offline-milp",
    "offline-greedy",
}


class TestRegistryLookup:
    def test_all_builtins_registered(self):
        assert set(list_mechanisms()) == EXPECTED_NAMES

    def test_kind_filter_partitions_registry(self):
        singles = set(list_mechanisms("single"))
        online = set(list_mechanisms("online"))
        horizon = set(list_mechanisms("horizon"))
        assert online == {"msoa"}
        assert horizon == {"offline-milp", "offline-greedy"}
        assert singles | online | horizon == EXPECTED_NAMES
        assert not (singles & online) and not (singles & horizon)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            get_spec("nope")
        with pytest.raises(ConfigurationError, match="ssam"):
            get_mechanism("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_spec("ssam")
        with pytest.raises(ConfigurationError, match="already registered"):
            register(spec)

    def test_bad_kind_rejected(self):
        bad = MechanismSpec(
            name="test-bad-kind",
            kind="sideways",
            summary="",
            paper_ref="",
            truthful=False,
            individually_rational=False,
            complete=False,
            payment_rule="",
            loader=lambda: None,
        )
        with pytest.raises(ConfigurationError, match="kind"):
            register(bad)

    def test_specs_sorted_by_name(self):
        names = [spec.name for spec in mechanism_specs()]
        assert names == sorted(names)

    def test_loaders_satisfy_mechanism_protocol(self):
        for spec in mechanism_specs("single"):
            assert isinstance(spec.loader(), Mechanism)

    def test_msoa_auctioneer_satisfies_online_protocol(self):
        auction = make_online("msoa", {1: 5})
        assert isinstance(auction, OnlineMechanism)


class TestSingleRoundDispatch:
    def test_every_single_mechanism_emits_tagged_outcome(self, make_instance):
        instance = make_instance()
        for name in list_mechanisms("single"):
            outcome = get_mechanism(name)(instance)
            assert isinstance(outcome, AuctionOutcome)
            assert outcome.mechanism == name

    def test_vcg_never_costs_more_than_ssam(self, make_instance):
        instance = make_instance()
        vcg = get_mechanism("vcg")(instance)
        ssam = get_mechanism("ssam")(instance)
        assert vcg.social_cost <= ssam.social_cost + 1e-9

    def test_reference_engine_entry_matches_fast_ssam(self, make_instance):
        instance = make_instance()
        fast = get_mechanism("ssam")(instance)
        reference = get_mechanism("ssam-reference")(instance)
        assert reference.mechanism == "ssam-reference"
        assert reference.social_cost == pytest.approx(fast.social_cost)
        assert reference.total_payment == pytest.approx(fast.total_payment)

    def test_random_mechanism_is_seeded(self, make_instance):
        instance = make_instance()
        runner = get_mechanism("random")
        a = runner(instance, seed=3)
        b = runner(instance, seed=3)
        assert [w.bid.key for w in a.winners] == [w.bid.key for w in b.winners]

    def test_outcome_round_trips_with_mechanism_tag(self, tmp_path, make_instance):
        # Acceptance criterion: registry outcomes persist and reload
        # through the storage layer with the tag intact.
        instance = make_instance()
        for name in ("vcg", "ssam"):
            outcome = get_mechanism(name)(instance)
            path = tmp_path / f"{name}.json"
            save_outcome(outcome, path)
            loaded = load_outcome(path)
            assert loaded.mechanism == name
            assert loaded.social_cost == pytest.approx(outcome.social_cost)
            assert loaded.total_payment == pytest.approx(outcome.total_payment)

    def test_pre_tag_payloads_default_to_ssam(self, make_instance):
        # Files written before the mechanism tag existed must still load.
        outcome = run_ssam(make_instance())
        payload = outcome.to_dict()
        del payload["mechanism"]
        restored = AuctionOutcome.from_dict(payload)
        assert restored.mechanism == "ssam"


class TestRegistryProperties:
    @settings(max_examples=15, deadline=None)
    @given(instance=wsp_instances(max_sellers=6, max_buyers=3))
    def test_claimed_invariants_hold_on_random_instances(self, instance):
        # One sweep over every single-round mechanism: completeness and
        # individual rationality must hold wherever the spec claims them.
        # Giving up loudly (a typed InfeasibleInstanceError from a
        # heuristic guard on an adversarial multi-minded instance) is
        # allowed; a *silent* shortfall where completeness is claimed is
        # not.
        for spec in mechanism_specs("single"):
            try:
                outcome = spec.loader()(instance)
            except InfeasibleInstanceError:
                continue
            assert outcome.mechanism == spec.name
            if spec.complete:
                outcome.verify()  # feasible cover of full demand
                assert outcome.satisfied
            if spec.individually_rational:
                for winner in outcome.winners:
                    assert winner.payment >= winner.bid.price - 1e-9


class TestMakeOnline:
    def test_unknown_option_rejected_up_front(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            make_online("pay-as-bid", {1: 5}, banana=True)

    def test_horizon_benchmarks_cannot_run_online(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            make_online("offline-milp", {1: 5})

    def test_single_mechanism_drives_multi_round_loop(self, make_horizon):
        horizon, capacities = make_horizon()
        adapter = make_online("pay-as-bid", capacities, on_infeasible="skip")
        assert isinstance(adapter, SingleRoundOnlineAdapter)
        assert isinstance(adapter, OnlineMechanism)
        for instance in horizon:
            result = adapter.process_round(instance)
            assert result.outcome.mechanism == "pay-as-bid"
        online = adapter.finalize()
        assert isinstance(online, OnlineOutcome)
        assert online.mechanism == "pay-as-bid"
        online.verify_capacities()

    def test_adapter_enforces_capacity_discipline(self, make_horizon):
        horizon, capacities = make_horizon()
        adapter = make_online("greedy-density", capacities, on_infeasible="skip")
        for instance in horizon:
            adapter.process_round(instance)
        used = adapter.capacity_used
        for seller, units in used.items():
            assert units <= capacities.get(seller, units)


class TestRegistryErrorPaths:
    def test_bad_engine_string_rejected(self, make_instance):
        instance = make_instance()
        with pytest.raises(ConfigurationError, match="engine"):
            get_mechanism("ssam")(instance, engine="bogus")

    def test_unknown_claim_rejected_at_registration(self):
        bad = MechanismSpec(
            name="test-bad-claim",
            kind="single",
            summary="",
            paper_ref="",
            truthful=False,
            individually_rational=False,
            complete=False,
            payment_rule="",
            loader=lambda: None,
            claims=frozenset({"monotonicity", "telepathy"}),
        )
        with pytest.raises(ConfigurationError, match="telepathy"):
            register(bad)

    def test_builtin_claims_are_certifiable(self):
        for spec in mechanism_specs():
            assert spec.claims <= CERTIFIABLE_PROPERTIES, spec.name

    def test_ssam_claims_every_property(self):
        # The paper's headline: SSAM is the mechanism that certifies on
        # all six axes (both engines must declare the same contract).
        assert get_spec("ssam").claims == CERTIFIABLE_PROPERTIES
        assert get_spec("ssam-reference").claims == CERTIFIABLE_PROPERTIES

    def test_pay_as_bid_does_not_claim_truthfulness(self):
        # Pay-as-bid is the paper's non-truthful strawman (Fig. 3(b));
        # claiming truthfulness for it would defeat the conformance gate.
        assert "truthfulness" not in get_spec("pay-as-bid").claims


class TestAdapterCapacityExhaustion:
    """χ accounting when sellers' long-run capacities run dry.

    Two sellers, one buyer with unit demand, unit-size bids, capacity 1
    each: the first two rounds each consume one seller; by round three
    the capacity screen excludes every bid and the round is infeasible.
    """

    def exhausted_setup(self, on_infeasible):
        bids = [
            Bid(seller=101, index=0, covered=frozenset({1}), price=5.0),
            Bid(seller=102, index=0, covered=frozenset({1}), price=6.0),
        ]
        instance = WSPInstance.from_bids(bids, {1: 1}, price_ceiling=20.0)
        adapter = make_online(
            "greedy-cheapest-price",
            {101: 1, 102: 1},
            on_infeasible=on_infeasible,
        )
        return instance, adapter

    def test_rounds_consume_sellers_until_exhaustion(self):
        instance, adapter = self.exhausted_setup("skip")
        first = adapter.process_round(instance)
        assert first.outcome.winner_keys == {(101, 0)}  # cheapest first
        assert adapter.remaining_capacity(101) == 0
        second = adapter.process_round(instance)
        assert second.outcome.winner_keys == {(102, 0)}
        assert adapter.remaining_capacity(102) == 0

    def test_exhausted_round_skips_to_empty_outcome(self):
        instance, adapter = self.exhausted_setup("skip")
        adapter.process_round(instance)
        adapter.process_round(instance)
        third = adapter.process_round(instance)
        assert third.outcome.winner_keys == frozenset()
        assert not third.outcome.satisfied
        assert third.outcome.unmet_units == 1
        # χ must not move on a skipped round.
        assert adapter.capacity_used == {101: 1, 102: 1}
        online = adapter.finalize()
        online.verify_capacities()
        assert online.social_cost == pytest.approx(11.0)

    def test_exhausted_round_raises_when_configured(self):
        instance, adapter = self.exhausted_setup("raise")
        adapter.process_round(instance)
        adapter.process_round(instance)
        with pytest.raises(InfeasibleInstanceError):
            adapter.process_round(instance)


class TestOutcomeFromSelection:
    def test_zero_utility_bids_dropped(self, make_instance):
        instance = make_instance()
        greedy = get_mechanism("greedy-density")(instance)
        chosen = [w.bid for w in greedy.winners]
        # Feeding the same winner twice: the replay must drop the
        # second, marginally useless copy instead of double counting.
        outcome = outcome_from_selection(
            instance,
            chosen + chosen[:1],
            mechanism="test",
            payment_rule="pay-as-bid",
        )
        assert len(outcome.winners) == len(chosen)
        assert outcome.social_cost == pytest.approx(greedy.social_cost)

    def test_infeasible_selection_fails_verification(self, make_instance):
        instance = make_instance()
        with pytest.raises(InfeasibleInstanceError):
            outcome_from_selection(
                instance, [], mechanism="test", payment_rule="pay-as-bid"
            )

    def test_require_cover_false_reports_shortfall(self, make_instance):
        instance = make_instance()
        outcome = outcome_from_selection(
            instance,
            [],
            mechanism="test",
            payment_rule="pay-as-bid",
            require_cover=False,
        )
        assert not outcome.satisfied
        assert outcome.unmet_units == sum(instance.demand.values())
