"""Unit tests for MSOA (Algorithm 2)."""

import pytest

from repro.core.bids import Bid
from repro.core.msoa import MultiStageOnlineAuction, run_msoa
from repro.core.ssam import PaymentRule
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


def round_instance():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


CAPACITIES = {10: 6, 11: 4, 12: 6, 13: 8, 14: 4}


class TestConstruction:
    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiStageOnlineAuction({1: 0})

    def test_bad_infeasible_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiStageOnlineAuction({1: 5}, on_infeasible="explode")

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiStageOnlineAuction({1: 5}, alpha=0.0)

    def test_initial_state_zeroed(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        assert all(v == 0.0 for v in auction.psi.values())
        assert all(v == 0 for v in auction.capacity_used.values())


class TestRounds:
    def test_round_covers_demand(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        result = auction.process_round(round_instance())
        result.outcome.verify()
        assert result.social_cost > 0

    def test_psi_grows_only_for_winners(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        result = auction.process_round(round_instance())
        winners = {w.bid.seller for w in result.outcome.winners}
        for seller, psi in auction.psi.items():
            if seller in winners:
                assert psi > 0
            else:
                assert psi == 0.0

    def test_chi_tracks_coverage_units(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        result = auction.process_round(round_instance())
        used = auction.capacity_used
        for winner in result.outcome.winners:
            assert used[winner.bid.seller] == winner.bid.size

    def test_scaled_prices_rise_after_wins(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        first = auction.process_round(round_instance())
        second = auction.process_round(round_instance())
        for winner in first.outcome.winners:
            key = winner.bid.key
            assert second.scaled_prices[key] >= first.scaled_prices[key]

    def test_capacity_exclusion(self):
        # Seller 14 has capacity 1 but its bid covers 1 buyer: wins once,
        # then is excluded.
        capacities = dict(CAPACITIES)
        capacities[14] = 1
        auction = MultiStageOnlineAuction(capacities)
        first = auction.process_round(round_instance())
        assert 14 in {w.bid.seller for w in first.outcome.winners}
        second = auction.process_round(round_instance())
        assert (14, 0) not in second.scaled_prices  # bid excluded outright

    def test_unknown_sellers_are_unconstrained(self):
        auction = MultiStageOnlineAuction({})
        for _ in range(3):
            result = auction.process_round(round_instance())
            result.outcome.verify()
        assert all(psi == 0.0 for psi in auction.psi.values())

    def test_alpha_auto_estimated_on_first_round(self):
        auction = MultiStageOnlineAuction(CAPACITIES)
        assert auction.alpha is None
        auction.process_round(round_instance())
        assert auction.alpha is not None and auction.alpha >= 1.0


class TestInfeasibleHandling:
    def tight_setup(self):
        # One seller, capacity 1: second round cannot be served.
        instance = WSPInstance.from_bids([bid(10, {1}, 5.0)], {1: 1})
        return instance, {10: 1}

    def test_raise_mode(self):
        instance, capacities = self.tight_setup()
        auction = MultiStageOnlineAuction(capacities, on_infeasible="raise")
        auction.process_round(instance)
        with pytest.raises(InfeasibleInstanceError):
            auction.process_round(instance)

    def test_skip_mode_records_empty_round(self):
        instance, capacities = self.tight_setup()
        auction = MultiStageOnlineAuction(capacities, on_infeasible="skip")
        auction.process_round(instance)
        second = auction.process_round(instance)
        assert second.outcome.winners == ()

    def test_best_effort_serves_what_it_can(self):
        # Two buyers; seller 10 capacity exhausted after round 1; round 2's
        # demand on buyer 1 is unservable but buyer 2 still gets seller 11.
        rounds = WSPInstance.from_bids(
            [bid(10, {1}, 5.0), bid(11, {2}, 6.0)], {1: 1, 2: 1}
        )
        auction = MultiStageOnlineAuction(
            {10: 1, 11: 10}, on_infeasible="best_effort"
        )
        auction.process_round(rounds)
        second = auction.process_round(rounds)
        winners = {w.bid.seller for w in second.outcome.winners}
        assert winners == {11}


class TestFinalize:
    def test_outcome_aggregates(self):
        outcome = run_msoa([round_instance()] * 3, CAPACITIES)
        assert len(outcome.rounds) == 3
        assert outcome.social_cost == pytest.approx(
            sum(r.social_cost for r in outcome.rounds)
        )
        outcome.verify_capacities()

    def test_capacities_never_exceeded(self):
        outcome = run_msoa(
            [round_instance()] * 5, CAPACITIES, on_infeasible="best_effort"
        )
        for seller, used in outcome.capacity_used.items():
            assert used <= CAPACITIES[seller]

    def test_competitive_bound_finite_when_beta_above_one(self):
        outcome = run_msoa([round_instance()], CAPACITIES)
        assert outcome.beta > 1
        assert outcome.competitive_bound < float("inf")

    def test_payments_on_scaled_prices_preserve_ir(self):
        outcome = run_msoa([round_instance()] * 3, CAPACITIES)
        for round_result in outcome.rounds:
            for winner in round_result.outcome.winners:
                original = round_result.original_bids[winner.bid.key]
                assert winner.payment >= original.price - 1e-9

    @pytest.mark.parametrize("rule", list(PaymentRule))
    def test_both_payment_rules_run(self, rule):
        outcome = run_msoa(
            [round_instance()] * 2, CAPACITIES, payment_rule=rule
        )
        assert outcome.total_payment >= outcome.social_cost - 1e-9
