"""Unit tests for sharded single-round clearing and reconciliation."""

import pytest

from repro.core.bids import Bid
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.shard.plan import RegionShardPlan
from repro.shard.ssam import resolve_shard_workers, run_sharded_ssam

pytestmark = pytest.mark.shard

PLAN = RegionShardPlan(
    regions={0: "a", 1: "a", 2: "b", 3: "b"}, n_shards=2
)


def bid(seller, covered, price=10.0, index=0):
    return Bid(
        seller=seller, index=index, covered=frozenset(covered), price=price
    )


def split_market():
    """Two disjoint per-shard markets, no cross bids."""
    bids = [
        bid(100, {0}, 10.0),
        bid(101, {0, 1}, 12.0),
        bid(102, {1}, 8.0),
        bid(200, {2}, 9.0),
        bid(201, {3}, 11.0),
        bid(202, {2, 3}, 15.0),
    ]
    return WSPInstance.from_bids(
        bids, {0: 1, 1: 1, 2: 1, 3: 1}, price_ceiling=50.0
    )


class TestFastPath:
    def test_single_shard_is_the_unsharded_call(self):
        instance = WSPInstance.from_bids(
            [bid(100, {0}), bid(101, {0, 1}), bid(102, {1})],
            {0: 1, 1: 1},
            price_ceiling=50.0,
        )
        plan = RegionShardPlan(regions={0: "a", 1: "a"}, n_shards=2)
        result = run_sharded_ssam(instance, plan)
        assert result.stats.fast_path is True
        assert result.cross_outcome is None
        assert len(result.shard_outcomes) == 2
        assert result.shard_outcomes.count(None) == 1
        plain = run_ssam(instance)
        assert result.outcome.to_dict() == plain.to_dict()


class TestTwoShards:
    def test_merged_winners_and_duals(self):
        instance = split_market()
        result = run_sharded_ssam(instance, PLAN)
        assert result.stats.fast_path is False
        assert result.stats.cross_bids == 0
        merged = result.outcome
        # Winners are the union of the independent per-shard runs,
        # concatenated in shard order with iterations renumbered.
        assert [w.iteration for w in merged.winners] == list(
            range(len(merged.winners))
        )
        per_shard = [
            run_ssam(result.partition.sub_instance(s)) for s in (0, 1)
        ]
        expected = [
            (w.bid.key, w.payment, w.marginal_utility)
            for outcome in per_shard
            for w in outcome.winners
        ]
        assert [
            (w.bid.key, w.payment, w.marginal_utility)
            for w in merged.winners
        ] == expected
        merged.verify()  # primal feasible after the merge
        # Duals carry one unit tag per granted unit.
        granted = sum(len(v) for v in merged.duals.unit_prices.values())
        assert granted == sum(
            w.marginal_utility for w in merged.winners
        )

    def test_outcome_engine_independent(self):
        instance = split_market()
        outcomes = {
            engine: run_sharded_ssam(instance, PLAN, engine=engine)
            for engine in ("fast", "reference", "columnar")
        }
        base = outcomes["fast"].outcome.to_dict()
        assert outcomes["reference"].outcome.to_dict() == base
        assert outcomes["columnar"].outcome.to_dict() == base

    def test_explicit_workers_match_serial(self):
        instance = split_market()
        serial = run_sharded_ssam(instance, PLAN, shard_workers=1)
        threaded = run_sharded_ssam(instance, PLAN, shard_workers=2)
        assert serial.outcome.to_dict() == threaded.outcome.to_dict()


class TestReconciliation:
    def test_cross_bid_serves_residual_demand(self):
        # Buyer 1 (shard 0) needs 2 units but only one local seller
        # covers it; the second unit must come from the cross bid.
        bids = [
            bid(100, {0, 1}, 10.0),
            bid(101, {0}, 9.0),
            bid(300, {1, 2}, 20.0),  # cross: spans both shards
            bid(200, {2}, 8.0),
            bid(201, {3}, 11.0),
        ]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 1: 2, 2: 1, 3: 1}, price_ceiling=50.0
        )
        result = run_sharded_ssam(instance, PLAN)
        assert result.stats.clamped_shards >= 1
        assert result.cross_outcome is not None
        cross_sellers = {
            w.bid.seller for w in result.cross_outcome.winners
        }
        assert cross_sellers == {300}
        result.outcome.verify()

    def test_one_win_per_seller_across_passes(self):
        # Seller 100 wins locally on shard 0 and also holds the cheapest
        # cross bid; reconciliation must exclude it (one win per seller)
        # and serve the residual through the pricier seller 300 instead.
        bids = [
            bid(100, {0}, 5.0, index=0),
            bid(100, {1, 2}, 6.0, index=1),
            bid(300, {1, 2}, 20.0),
            bid(200, {2}, 8.0),
        ]
        # Buyer 1 has no local coverage at all: shard 0 clamps it and
        # reconciliation serves it from the cross set.
        instance = WSPInstance.from_bids(
            bids, {0: 1, 1: 1, 2: 1}, price_ceiling=50.0
        )
        result = run_sharded_ssam(instance, PLAN)
        winner_sellers = [w.bid.seller for w in result.outcome.winners]
        assert len(winner_sellers) == len(set(winner_sellers))
        assert (100, 0) in {w.bid.key for w in result.outcome.winners}
        assert {
            w.bid.seller for w in result.cross_outcome.winners
        } == {300}
        result.outcome.verify()

    def test_losing_cross_bids_are_recorded(self):
        # No residual demand: cross bids all lose, but the partition
        # still records them (cross_outcome with zero winners).
        bids = [
            bid(100, {0}, 1.0),
            bid(200, {2}, 1.0),
            bid(300, {0, 2}, 40.0),
        ]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 2: 1}, price_ceiling=50.0
        )
        result = run_sharded_ssam(instance, PLAN)
        assert result.cross_outcome is not None
        assert result.cross_outcome.winners == ()
        assert result.stats.cross_bids == 1
        assert result.stats.cross_winners == 0

    def test_infeasible_reconciliation_raises_by_default(self):
        # Buyer 1 is uncoverable: no local bid, no cross bid reaches it.
        bids = [bid(100, {0}), bid(200, {2})]
        instance = WSPInstance(
            bids=tuple(bids),
            demand={0: 1, 1: 1, 2: 1},
            price_ceiling=50.0,
        )
        with pytest.raises(InfeasibleInstanceError):
            run_sharded_ssam(instance, PLAN)

    def test_require_feasible_false_degrades(self):
        bids = [bid(100, {0}), bid(200, {2})]
        instance = WSPInstance(
            bids=tuple(bids),
            demand={0: 1, 1: 1, 2: 1},
            price_ceiling=50.0,
        )
        result = run_sharded_ssam(instance, PLAN, require_feasible=False)
        covered_units = sum(
            len(v) for v in result.outcome.duals.unit_prices.values()
        )
        assert covered_units == 2  # buyers 0 and 2 served, buyer 1 not


class TestResolveShardWorkers:
    def test_explicit_values(self):
        assert resolve_shard_workers(1, 4) == 1
        assert resolve_shard_workers(3, 2) == 2  # capped at active shards
        assert resolve_shard_workers(2, 0) == 1

    def test_auto_caps_at_cpus_and_shards(self):
        import os

        expected = min(os.cpu_count() or 1, 4)
        assert resolve_shard_workers("auto", 4) == expected

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_shard_workers(0, 4)
        with pytest.raises(ConfigurationError):
            resolve_shard_workers("many", 4)

    def test_observability_forces_serial(self, tmp_path):
        from repro.obs.runtime import observing

        with observing(metrics=tmp_path / "metrics.json"):
            assert resolve_shard_workers(4, 4) == 1
