"""Unit tests for streamed round generation and bounded-round assembly."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.errors import ConfigurationError
from repro.shard.plan import RegionShardPlan, partition_round
from repro.shard.streaming import (
    RoundAssembler,
    StreamConfig,
    assemble_bid_stream,
    region_plan,
    stream_capacities,
    stream_rounds,
    total_demand_units,
)

pytestmark = pytest.mark.shard

SMALL = StreamConfig(
    rounds=3,
    regions=2,
    buyers_per_region=5,
    sellers_per_region=15,
    cross_region_fraction=0.2,
)


def tick(seller, t=0.0):
    return (
        t,
        Bid(seller=seller, index=0, covered=frozenset({0}), price=10.0),
    )


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            StreamConfig(demand_range=(0, 2))
        with pytest.raises(ConfigurationError):
            StreamConfig(coverage_range=(1, 99), buyers_per_region=5)
        with pytest.raises(ConfigurationError):
            StreamConfig(price_range=(10.0, 99.0), price_ceiling=50.0)
        with pytest.raises(ConfigurationError):
            StreamConfig(cross_region_fraction=1.5)
        with pytest.raises(ConfigurationError):
            StreamConfig(sellers_per_region=2, demand_range=(1, 3))

    def test_geometry(self):
        assert SMALL.n_buyers == 10
        assert SMALL.n_sellers == 30
        assert SMALL.buyer_region(0) == 0
        assert SMALL.buyer_region(7) == 1
        assert SMALL.expected_demand_units == round(3 * 10 * 2)

    def test_region_plan_maps_regions_to_shards(self):
        plan = region_plan(SMALL)
        assert isinstance(plan, RegionShardPlan)
        assert plan.n_shards == SMALL.regions
        assert plan.shard_of(0) == plan.shard_of(4)
        assert plan.shard_of(0) != plan.shard_of(5)
        folded = region_plan(SMALL, 1)
        assert folded.n_shards == 1


class TestStreamRounds:
    def test_lazy_and_seeded(self):
        rng = np.random.default_rng(3)
        stream = stream_rounds(SMALL, rng)
        first = next(stream)
        again = next(stream_rounds(SMALL, np.random.default_rng(3)))
        assert [b.key for b in first.bids] == [b.key for b in again.bids]
        assert first.demand == again.demand
        assert len(list(stream)) == SMALL.rounds - 1  # first already taken

    def test_rounds_are_locally_feasible(self):
        # Every buyer must be coverable by *non-crossing* sellers of its
        # own region, so the sharded local pass never needs to clamp.
        plan = region_plan(SMALL)
        for instance in stream_rounds(SMALL, np.random.default_rng(11)):
            partition = partition_round(instance, plan)
            for shard in partition.active_shards:
                sub = partition.sub_instance(shard)
                covering: dict[int, set[int]] = {}
                for b in sub.bids:
                    for buyer in b.covered:
                        covering.setdefault(buyer, set()).add(b.seller)
                for buyer, units in sub.demand.items():
                    assert len(covering.get(buyer, ())) >= units

    def test_cross_region_bids_exist_and_span_adjacent_regions(self):
        instance = next(stream_rounds(SMALL, np.random.default_rng(5)))
        spans = [
            {SMALL.buyer_region(b) for b in bid.covered}
            for bid in instance.bids
        ]
        assert any(len(s) > 1 for s in spans)

    def test_zero_cross_fraction_keeps_regions_disjoint(self):
        config = StreamConfig(
            rounds=2,
            regions=2,
            buyers_per_region=5,
            sellers_per_region=15,
            cross_region_fraction=0.0,
        )
        for instance in stream_rounds(config, np.random.default_rng(5)):
            for bid in instance.bids:
                regions = {config.buyer_region(b) for b in bid.covered}
                assert len(regions) == 1

    def test_capacities_cover_the_horizon(self):
        capacities = stream_capacities(SMALL)
        assert len(capacities) == SMALL.n_sellers
        per_round = SMALL.coverage_range[1] + 1
        assert all(
            units == SMALL.rounds * per_round
            for units in capacities.values()
        )

    def test_total_demand_units_counts_instances_and_maps(self):
        rounds = list(stream_rounds(SMALL, np.random.default_rng(1)))
        from_instances = total_demand_units(rounds)
        from_maps = total_demand_units([r.demand for r in rounds])
        assert from_instances == from_maps > 0


class TestRoundAssembler:
    def test_buckets_in_round_order(self):
        assembler = RoundAssembler(round_length=1.0)
        assert assembler.push(*tick(1, 0.2)) == []
        assert assembler.push(*tick(2, 0.8)) == []
        closed = assembler.push(*tick(3, 1.1))
        assert [(i, [b.seller for b in batch]) for i, batch in closed] == [
            (0, [1, 2])
        ]
        index, batch = assembler.flush()
        assert index == 1
        assert [b.seller for b in batch] == [3]

    def test_gap_closes_empty_rounds(self):
        assembler = RoundAssembler(round_length=1.0)
        assembler.push(*tick(1, 0.5))
        closed = assembler.push(*tick(2, 3.4))
        assert [i for i, _ in closed] == [0, 1, 2]
        assert [len(batch) for _, batch in closed] == [1, 0, 0]

    def test_late_bids_dropped_and_counted(self):
        assembler = RoundAssembler(round_length=1.0)
        assembler.push(*tick(1, 2.5))  # opens round 2
        assert assembler.push(*tick(9, 1.0)) == []  # before open start
        assert assembler.late_bids == 1
        _, batch = assembler.flush()
        assert [b.seller for b in batch] == [1]

    def test_rejects_non_positive_round_length(self):
        with pytest.raises(ConfigurationError):
            RoundAssembler(round_length=0.0)

    def test_generator_view(self):
        events = [tick(1, 0.1), tick(2, 1.2), tick(3, 2.9)]
        batches = list(assemble_bid_stream(events, round_length=1.0))
        assert [(i, [b.seller for b in batch]) for i, batch in batches] == [
            (0, [1]),
            (1, [2]),
            (2, [3]),
        ]


class TestServeStreaming:
    def build_platform(self):
        from repro.dist.scenario import DistScenario
        from repro.dist.agents import AgentStreamPolicy

        scenario = DistScenario(seed=9, horizon_rounds=4)
        return scenario.build_platform(
            bidding_policy=AgentStreamPolicy(
                scenario.seed, scenario.policy_factory()
            )
        )

    def test_streamed_rounds_complete(self):
        from repro.shard.streaming import serve_streaming

        platform = self.build_platform()
        reports = serve_streaming(
            platform, rounds=3, rng=np.random.default_rng(2)
        )
        assert len(reports) == 3
        assert all(r.round_index == i for i, r in enumerate(reports))

    def test_all_on_time_when_stamps_fit_the_window(self):
        # Uniform stamps over [0, round_length) are never late, so the
        # streamed run must clear the same bids as the classic loop.
        from repro.shard.streaming import serve_streaming

        streamed = serve_streaming(
            self.build_platform(), rounds=3, rng=np.random.default_rng(2)
        )
        classic = self.build_platform().run(3)
        for s, c in zip(streamed, classic):
            s_dict = s.auction.outcome.to_dict() if s.auction else None
            c_dict = c.auction.outcome.to_dict() if c.auction else None
            assert s_dict == c_dict

    def test_deterministic_arrivals_can_make_bids_late(self):
        from repro.shard.streaming import serve_streaming

        class BeyondWindow:
            def sample(self, horizon, rng):
                return np.array([])  # no slots: every bid misses

        platform = self.build_platform()
        reports = serve_streaming(
            platform,
            rounds=2,
            arrivals=BeyondWindow(),
            rng=np.random.default_rng(2),
        )
        for report in reports:
            if report.auction is not None:
                assert report.auction.outcome.winners == ()
