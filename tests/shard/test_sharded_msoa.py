"""Unit tests for the sharded online auctioneer (MSOA over shards)."""

import numpy as np
import pytest

from repro.core.msoa import run_msoa
from repro.errors import ConfigurationError
from repro.shard import (
    ShardedOnlineAuction,
    make_plan,
    run_sharded_msoa,
)
from repro.shard.streaming import (
    StreamConfig,
    region_plan,
    stream_capacities,
    stream_rounds,
)
from repro.workload.bidgen import MarketConfig, generate_horizon

pytestmark = pytest.mark.shard

STREAM = StreamConfig(
    rounds=4,
    regions=2,
    buyers_per_region=5,
    sellers_per_region=15,
    cross_region_fraction=0.1,
)


def horizon(seed=11, rounds=4):
    return generate_horizon(
        MarketConfig(n_sellers=10, n_buyers=4, bids_per_seller=2),
        np.random.default_rng(seed),
        rounds=rounds,
    )


class TestConstruction:
    def test_plan_and_shards_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            ShardedOnlineAuction(
                {1: 5}, plan=make_plan("hash", 2), shards=2
            )

    def test_defaults_to_single_hash_shard(self):
        auction = ShardedOnlineAuction({1: 5})
        assert auction.plan.n_shards == 1

    def test_msoa_options_forwarded(self):
        with pytest.raises(ConfigurationError):
            ShardedOnlineAuction({1: 5}, shards=2, on_infeasible="explode")


class TestShardedHorizon:
    def test_capacity_safety_and_feasibility(self):
        rounds, capacities = horizon()
        outcome = run_sharded_msoa(
            rounds, capacities, shards=3, on_infeasible="best_effort"
        )
        outcome.verify_capacities()
        for round_result in outcome.rounds:
            round_result.outcome.verify()

    def test_psi_monotone_nondecreasing(self):
        rounds, capacities = horizon()
        outcome = run_sharded_msoa(
            rounds, capacities, shards=3, on_infeasible="best_effort"
        )
        previous = {seller: 0.0 for seller in capacities}
        for round_result in outcome.rounds:
            for seller, psi in round_result.psi_after.items():
                assert psi >= previous.get(seller, 0.0) - 1e-12
            previous = dict(round_result.psi_after)

    def test_streamed_region_sharded_horizon(self):
        outcome = run_sharded_msoa(
            stream_rounds(STREAM, np.random.default_rng(7)),
            stream_capacities(STREAM),
            plan=region_plan(STREAM),
            engine="columnar",
            on_infeasible="best_effort",
        )
        assert len(outcome.rounds) == STREAM.rounds
        assert any(r.outcome.winners for r in outcome.rounds)

    def test_shard_stats_track_each_clearing(self):
        rounds, capacities = horizon(rounds=3)
        auction = ShardedOnlineAuction(capacities, shards=2)
        for instance in rounds:
            auction.process_round(instance)
        assert len(auction.shard_stats) == 3
        assert all(s.n_shards == 2 for s in auction.shard_stats)

    def test_engines_agree_on_sharded_horizon(self):
        rounds, capacities = horizon()
        outcomes = {
            engine: run_sharded_msoa(
                rounds,
                capacities,
                shards=3,
                engine=engine,
                on_infeasible="best_effort",
            ).to_dict()
            for engine in ("fast", "reference", "columnar")
        }
        assert outcomes["fast"] == outcomes["reference"]
        assert outcomes["fast"] == outcomes["columnar"]

    def test_faulted_sharded_horizon_completes(self):
        from repro.faults import FaultPlan, SellerDefault

        rounds, capacities = horizon()
        plan = FaultPlan(
            seed=3,
            seller_defaults=(
                SellerDefault(
                    scripted=((1, next(iter(capacities))),)
                ),
            ),
        )
        outcome = run_sharded_msoa(
            rounds,
            capacities,
            shards=2,
            faults=plan,
            on_infeasible="best_effort",
        )
        assert len(outcome.rounds) == len(rounds)


class TestStreamingMemoryMode:
    def test_retain_rounds_false_keeps_state_but_not_history(self):
        rounds, capacities = horizon(rounds=3)
        streaming = ShardedOnlineAuction(
            capacities, shards=2, retain_rounds=False,
            on_infeasible="best_effort",
        )
        retained = ShardedOnlineAuction(
            capacities, shards=2, on_infeasible="best_effort"
        )
        for instance in rounds:
            lean = streaming.process_round(instance)
            full = retained.process_round(instance)
            assert lean.outcome.to_dict() == full.outcome.to_dict()
        assert streaming.rounds == ()
        assert streaming.round_count == 3
        assert retained.round_count == 3
        assert len(retained.rounds) == 3
        # ψ/χ state is identical: history retention is orthogonal.
        assert streaming.psi == retained.psi
        assert streaming.capacity_used == retained.capacity_used

    def test_round_index_advances_without_retention(self):
        rounds, capacities = horizon(rounds=3)
        auction = ShardedOnlineAuction(
            capacities, shards=1, retain_rounds=False,
            on_infeasible="best_effort",
        )
        indices = [auction.process_round(r).round_index for r in rounds]
        assert indices == [0, 1, 2]


class TestUnshardedBaselineConsistency:
    def test_sharded_run_matches_unsharded_round_count_and_bound(self):
        rounds, capacities = horizon()
        sharded = run_sharded_msoa(
            rounds, capacities, shards=2, on_infeasible="best_effort"
        )
        plain = run_msoa(rounds, capacities, on_infeasible="best_effort")
        assert len(sharded.rounds) == len(plain.rounds)
        assert sharded.alpha == plain.alpha
