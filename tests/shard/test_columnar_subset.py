"""The columnar fork: ``subset`` must equal ``build`` on the sub-market."""

import numpy as np
import pytest

from repro.core.columnar import ColumnarInstance
from repro.shard.plan import RegionShardPlan, partition_round
from repro.workload.bidgen import MarketConfig, generate_round

pytestmark = pytest.mark.shard

ARRAY_FIELDS = (
    "demand",
    "prices",
    "seller_ids",
    "bid_indices",
    "seller_rows",
    "sellers",
    "cover",
    "cover_indptr",
    "cover_cols",
    "seller_cov",
    "initial_utilities",
    "initial_suppliers",
)


def market(seed=4):
    return generate_round(
        MarketConfig(n_sellers=12, n_buyers=8, bids_per_seller=2),
        np.random.default_rng(seed),
    )


def plan(n_buyers=8, shards=2):
    return RegionShardPlan(
        regions={b: f"r{b % shards}" for b in range(n_buyers)},
        n_shards=shards,
    )


def assert_equivalent(view, rebuilt):
    assert view.bids == rebuilt.bids
    assert view.demand_map == rebuilt.demand_map
    assert view.buyers == rebuilt.buyers
    assert view.row_of == rebuilt.row_of
    assert view.fingerprint == rebuilt.fingerprint
    for name in ARRAY_FIELDS:
        np.testing.assert_array_equal(
            getattr(view, name), getattr(rebuilt, name), err_msg=name
        )
    for a, b in zip(view.covering_rows, rebuilt.covering_rows):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(view.seller_bid_rows, rebuilt.seller_bid_rows):
        np.testing.assert_array_equal(a, b)


class TestSubsetEqualsBuild:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_shard_views_match_fresh_builds(self, seed):
        instance = market(seed)
        partition = partition_round(instance, plan())
        parent = ColumnarInstance.build(instance.bids, instance.demand)
        for shard in partition.active_shards:
            demand = partition.shard_demand[shard]
            view = parent.subset(
                partition.local_rows[shard], list(demand)
            )
            rebuilt = ColumnarInstance.build(
                partition.local_bids[shard], demand
            )
            assert_equivalent(view, rebuilt)

    def test_full_slice_is_the_identity(self):
        instance = market()
        parent = ColumnarInstance.build(instance.bids, instance.demand)
        view = parent.subset(
            range(len(instance.bids)), list(instance.demand)
        )
        assert_equivalent(view, parent)

    def test_empty_row_slice(self):
        instance = market()
        parent = ColumnarInstance.build(instance.bids, instance.demand)
        buyers = list(instance.demand)[:2]
        view = parent.subset([], buyers)
        rebuilt = ColumnarInstance.build(
            [], {b: instance.demand[b] for b in buyers}
        )
        assert_equivalent(view, rebuilt)


class TestSubsetValidation:
    def test_rows_must_be_ascending(self):
        instance = market()
        parent = ColumnarInstance.build(instance.bids, instance.demand)
        with pytest.raises(ValueError):
            parent.subset([2, 1], list(instance.demand))

    def test_unknown_buyer_rejected(self):
        instance = market()
        parent = ColumnarInstance.build(instance.bids, instance.demand)
        with pytest.raises(ValueError):
            parent.subset([0], [10_000])
