"""Unit tests for shard plans and the round partitioner."""

import pytest

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.shard.plan import (
    HashShardPlan,
    LocalityShardPlan,
    RegionShardPlan,
    make_plan,
    partition_round,
)

pytestmark = pytest.mark.shard


def bid(seller, covered, price=10.0, index=0):
    return Bid(
        seller=seller, index=index, covered=frozenset(covered), price=price
    )


class TestHashPlan:
    def test_deterministic_and_in_range(self):
        plan = HashShardPlan(n_shards=4)
        assignments = [plan.shard_of(b) for b in range(200)]
        assert assignments == [plan.shard_of(b) for b in range(200)]
        assert set(assignments) <= set(range(4))

    def test_spreads_buyers(self):
        plan = HashShardPlan(n_shards=4)
        used = {plan.shard_of(b) for b in range(100)}
        assert used == set(range(4))

    def test_does_not_use_salted_hash(self):
        # The exact values are pinned: they must survive interpreter
        # restarts and PYTHONHASHSEED changes (Python's builtin hash
        # would not).
        plan = HashShardPlan(n_shards=7)
        assert [plan.shard_of(b) for b in range(5)] == [
            plan.shard_of(b) for b in range(5)
        ]
        assert plan.shard_of(0) == HashShardPlan(n_shards=7).shard_of(0)

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError):
            HashShardPlan(n_shards=0)


class TestRegionPlan:
    def test_colocated_buyers_share_a_shard(self):
        plan = RegionShardPlan(
            regions={0: "eu", 1: "eu", 2: "us", 3: "us"}, n_shards=2
        )
        assert plan.shard_of(0) == plan.shard_of(1)
        assert plan.shard_of(2) == plan.shard_of(3)
        assert plan.shard_of(0) != plan.shard_of(2)

    def test_label_mapping_independent_of_insertion_order(self):
        a = RegionShardPlan(regions={0: "eu", 1: "us"}, n_shards=2)
        b = RegionShardPlan(regions={1: "us", 0: "eu"}, n_shards=2)
        assert a.shard_of(0) == b.shard_of(0)
        assert a.shard_of(1) == b.shard_of(1)

    def test_unknown_buyer_falls_back_to_hash(self):
        plan = RegionShardPlan(regions={0: "eu"}, n_shards=3)
        assert plan.shard_of(999) == HashShardPlan(n_shards=3).shard_of(999)

    def test_more_regions_than_shards_fold_round_robin(self):
        plan = RegionShardPlan(
            regions={b: f"r{b}" for b in range(6)}, n_shards=2
        )
        shards = {plan.shard_of(b) for b in range(6)}
        assert shards == {0, 1}


class TestLocalityPlan:
    def test_unbound_plan_rejects_shard_of(self):
        with pytest.raises(ConfigurationError):
            LocalityShardPlan(n_shards=2).shard_of(0)

    def test_components_stay_whole(self):
        # Buyers {0,1} are co-covered, {2,3} are co-covered; no bid
        # links the two groups, so a 2-shard plan must split exactly
        # along that seam — zero cross-shard bids.
        bids = [
            bid(100, {0, 1}),
            bid(101, {0}),
            bid(102, {1}),
            bid(200, {2, 3}),
            bid(201, {2}),
            bid(202, {3}),
        ]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 1: 1, 2: 1, 3: 1}, price_ceiling=50.0
        )
        plan = LocalityShardPlan(n_shards=2).for_round(instance)
        assert plan.shard_of(0) == plan.shard_of(1)
        assert plan.shard_of(2) == plan.shard_of(3)
        assert plan.shard_of(0) != plan.shard_of(2)
        partition = partition_round(instance, LocalityShardPlan(n_shards=2))
        assert partition.cross_bids == ()

    def test_from_bids_binds_directly(self):
        bids = [bid(100, {0, 1}), bid(200, {2})]
        plan = LocalityShardPlan.from_bids(bids, {0: 1, 1: 1, 2: 1}, 2)
        assert plan.assignment is not None
        assert plan.shard_of(0) == plan.shard_of(1)

    def test_balances_by_demand_load(self):
        # Three singleton components with demands 3, 2, 1: the heaviest
        # goes to shard 0, the next to shard 1, the lightest back to
        # the lighter shard (shard 1, load 2 < 3).
        bids = [bid(100, {0}), bid(101, {1}), bid(102, {2})]
        plan = LocalityShardPlan.from_bids(bids, {0: 3, 1: 2, 2: 1}, 2)
        assert plan.shard_of(0) == 0
        assert plan.shard_of(1) == 1
        assert plan.shard_of(2) == 1


class TestMakePlan:
    def test_strategies(self):
        assert isinstance(make_plan("hash", 2), HashShardPlan)
        assert isinstance(
            make_plan("region", 2, regions={0: "a"}), RegionShardPlan
        )
        assert isinstance(make_plan("locality", 2), LocalityShardPlan)

    def test_region_requires_mapping(self):
        with pytest.raises(ConfigurationError):
            make_plan("region", 2)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_plan("round-robin", 2)


class TestPartitionRound:
    def plan(self):
        # Buyers 0,1 on shard 0; buyers 2,3 on shard 1.
        return RegionShardPlan(
            regions={0: "a", 1: "a", 2: "b", 3: "b"}, n_shards=2
        )

    def test_local_and_cross_classification(self):
        bids = [
            bid(100, {0, 1}),  # local to shard 0
            bid(101, {2}),  # local to shard 1
            bid(102, {1, 2}),  # spans both -> cross
            bid(103, {3}),  # local to shard 1
        ]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 1: 1, 2: 1, 3: 1}, price_ceiling=50.0
        )
        partition = partition_round(instance, self.plan())
        assert [b.seller for b in partition.local_bids[0]] == [100]
        assert sorted(b.seller for b in partition.local_bids[1]) == [101, 103]
        assert [b.seller for b in partition.cross_bids] == [102]
        assert partition.local_rows[0] == (0,)
        assert partition.cross_rows == (2,)
        assert partition.shard_demand[0] == {0: 1, 1: 1}
        assert partition.shard_demand[1] == {2: 1, 3: 1}

    def test_zero_demand_cover_does_not_make_a_bid_cross(self):
        # Buyer 2 has zero demand: a bid covering {1, 2} only *lives*
        # on shard 0, whatever shard buyer 2 would map to.
        bids = [bid(100, {1, 2}), bid(101, {1})]
        instance = WSPInstance.from_bids(
            bids, {1: 1, 2: 0}, price_ceiling=50.0
        )
        partition = partition_round(instance, self.plan())
        assert partition.cross_bids == ()
        assert sorted(b.seller for b in partition.local_bids[0]) == [100, 101]

    def test_coupled_seller_moves_to_reconciliation(self):
        # Seller 100 has one live bid on each shard: independent local
        # clearing could let it win twice, so both bids are coupled
        # into the cross set.
        bids = [
            bid(100, {0}, index=0),
            bid(100, {2}, index=1),
            bid(101, {0}),
            bid(102, {2}),
        ]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 2: 1}, price_ceiling=50.0
        )
        partition = partition_round(instance, self.plan())
        assert sorted(b.key for b in partition.cross_bids) == [
            (100, 0),
            (100, 1),
        ]
        assert [b.seller for b in partition.local_bids[0]] == [101]
        assert [b.seller for b in partition.local_bids[1]] == [102]

    def test_inert_bids_parked_not_crossed(self):
        # A bid covering only zero-demand buyers can never be selected;
        # it must not force reconciliation.
        bids = [bid(100, {0}), bid(101, {2, 3})]
        instance = WSPInstance.from_bids(
            bids, {0: 1, 2: 0, 3: 0}, price_ceiling=50.0
        )
        partition = partition_round(instance, self.plan())
        assert partition.cross_bids == ()
        total_local = sum(len(b) for b in partition.local_bids)
        assert total_local == 2

    def test_ceiling_pinned_from_effective_ceiling(self):
        bids = [bid(100, {0}, price=30.0), bid(101, {2}, price=20.0)]
        explicit = WSPInstance.from_bids(
            bids, {0: 1, 2: 1}, price_ceiling=44.0
        )
        assert partition_round(explicit, self.plan()).price_ceiling == 44.0
        implicit = WSPInstance.from_bids(bids, {0: 1, 2: 1})
        partition = partition_round(implicit, self.plan())
        assert partition.price_ceiling == implicit.effective_ceiling

    def test_sub_instance_restricts_demand(self):
        bids = [bid(100, {0, 1}), bid(101, {2})]
        instance = WSPInstance.from_bids(
            bids, {0: 2, 1: 1, 2: 1}, price_ceiling=50.0
        )
        partition = partition_round(instance, self.plan())
        sub = partition.sub_instance(0)
        assert sub.demand == {0: 2, 1: 1}
        assert [b.seller for b in sub.bids] == [100]
        assert sub.price_ceiling == 50.0

    def test_active_shards_skips_empty_demand(self):
        bids = [bid(100, {0})]
        instance = WSPInstance.from_bids(bids, {0: 1}, price_ceiling=50.0)
        partition = partition_round(instance, self.plan())
        assert partition.active_shards == (0,)
