"""Sharded clearing wired through the platform and the serving facade."""

import pytest

from repro.dist import DistScenario, replay_scenario, serve
from repro.edge.platform import PlatformConfig
from repro.errors import ConfigurationError
from repro.shard.msoa import ShardedOnlineAuction
from repro.shard.plan import RegionShardPlan

pytestmark = [pytest.mark.shard, pytest.mark.dist]

ROUNDS = 4


def _outcomes(reports):
    return [
        report.auction.outcome.to_dict() if report.auction else None
        for report in reports
    ]


def _ledger_rows(platform):
    return (dict(platform.ledger.payments), dict(platform.ledger.charges))


class TestPlatformConfig:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(shards=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(shards=2, shard_strategy="modulo")

    def test_scenario_guard_shards_require_msoa(self):
        with pytest.raises(ConfigurationError):
            DistScenario(shards=2, mechanism="vcg")


class TestPlatformWiring:
    def test_region_strategy_builds_cloud_keyed_plan(self):
        scenario = DistScenario(seed=5, shards=2, shard_strategy="region")
        platform = scenario.build_platform()
        assert isinstance(platform.auction, ShardedOnlineAuction)
        plan = platform.auction.plan
        assert isinstance(plan, RegionShardPlan)
        assert plan.n_shards == 2
        # The region of a microservice is its edge cloud.
        assert set(plan.regions.values()) <= set(platform.clouds)

    def test_hash_strategy_builds_sharded_auction(self):
        platform = DistScenario(
            seed=5, shards=3, shard_strategy="hash"
        ).build_platform()
        assert isinstance(platform.auction, ShardedOnlineAuction)
        assert platform.auction.plan.n_shards == 3

    def test_single_shard_stays_unsharded(self):
        platform = DistScenario(seed=5).build_platform()
        assert not isinstance(platform.auction, ShardedOnlineAuction)


class TestServeSharded:
    def test_serve_smoke_and_shard_stats(self):
        service = serve(
            DistScenario(seed=7, shards=2, shard_strategy="region")
        )
        service.run(rounds=ROUNDS)
        assert len(service.reports) == ROUNDS
        stats = service.shard_stats
        assert stats  # one entry per cleared auction round
        assert all(s.n_shards == 2 for s in stats)

    def test_unsharded_service_has_no_shard_stats(self):
        service = serve(DistScenario(seed=7))
        service.run(rounds=2)
        assert service.shard_stats == ()

    def test_async_serving_matches_sync_replay(self):
        scenario = DistScenario(seed=11, shards=2, shard_strategy="region")
        sync = _outcomes(replay_scenario(scenario, rounds=ROUNDS))
        service = serve(scenario)
        service.run(rounds=ROUNDS)
        assert _outcomes(service.reports) == sync


class TestSingleActiveShardIdentity:
    def test_one_region_sharded_run_is_bit_identical_to_unsharded(self):
        # With a single cloud every microservice maps to one region, so
        # a 2-shard region plan leaves exactly one shard active and the
        # sharded auctioneer takes the structural fast path — outcomes
        # AND the money ledger must match the unsharded platform's,
        # bit for bit.
        from repro.dist.agents import AgentStreamPolicy

        def build(**overrides):
            scenario = DistScenario(seed=13, n_clouds=1, **overrides)
            platform = scenario.build_platform(
                bidding_policy=AgentStreamPolicy(
                    scenario.seed, scenario.policy_factory()
                )
            )
            platform.run(ROUNDS)
            return platform

        sharded = build(shards=2, shard_strategy="region")
        plain = build()
        assert isinstance(sharded.auction, ShardedOnlineAuction)
        assert all(
            s.fast_path for s in sharded.auction.shard_stats
        )
        assert _outcomes(sharded.reports) == _outcomes(plain.reports)
        assert _ledger_rows(sharded) == _ledger_rows(plain)
