"""Unit tests for the DES kernel (events + engine)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.CUSTOM, "b")
        queue.push(1.0, EventKind.CUSTOM, "a")
        queue.push(3.0, EventKind.CUSTOM, "c")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.CUSTOM, "first")
        queue.push(1.0, EventKind.CUSTOM, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.CUSTOM)
        assert queue.peek().time == 1.0
        assert len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Event(time=-1.0, sequence=0, kind=EventKind.CUSTOM)

    def test_clear_empties(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.CUSTOM)
        queue.clear()
        assert not queue


class TestEngine:
    def test_run_until_processes_in_order(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda eng, ev: seen.append(ev.payload))
        engine.schedule(2.0, EventKind.CUSTOM, "late")
        engine.schedule(1.0, EventKind.CUSTOM, "early")
        engine.run_until(10.0)
        assert seen == ["early", "late"]
        assert engine.now == 10.0

    def test_horizon_exclusive(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda eng, ev: seen.append(ev.time))
        engine.schedule(5.0, EventKind.CUSTOM)
        engine.run_until(5.0)
        assert seen == []
        engine.run_until(5.1)
        assert seen == [5.0]

    def test_handlers_can_schedule_followups(self):
        engine = SimulationEngine()
        seen = []

        def chain(eng, event):
            seen.append(event.time)
            if event.time < 3:
                eng.schedule_after(1.0, EventKind.CUSTOM)

        engine.register(EventKind.CUSTOM, chain)
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.schedule(4.0, EventKind.CUSTOM)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_after(-1.0, EventKind.CUSTOM)

    def test_backwards_horizon_rejected(self):
        engine = SimulationEngine()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(4.0)

    def test_run_all_guard(self):
        engine = SimulationEngine()
        engine.register(
            EventKind.CUSTOM,
            lambda eng, ev: eng.schedule_after(1.0, EventKind.CUSTOM),
        )
        engine.schedule(0.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run_all(max_events=100)

    def test_reset_clears_state_keeps_handlers(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.CUSTOM, lambda eng, ev: seen.append(1))
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run_until(2.0)
        engine.reset()
        assert engine.now == 0.0 and engine.pending_events == 0
        engine.schedule(0.5, EventKind.CUSTOM)
        engine.run_until(1.0)
        assert seen == [1, 1]

    def test_multiple_handlers_run_in_order(self):
        engine = SimulationEngine()
        order = []
        engine.register(EventKind.CUSTOM, lambda eng, ev: order.append("a"))
        engine.register(EventKind.CUSTOM, lambda eng, ev: order.append("b"))
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run_until(2.0)
        assert order == ["a", "b"]
