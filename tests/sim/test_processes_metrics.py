"""Unit tests for arrival/service processes and round metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.sim.metrics import MicroserviceStats
from repro.sim.processes import ArrivalProcess, Request, RequestServer
from repro.sim.rng import RngRegistry, make_rng, spawn_rngs


def build_system(rate=5.0, allocation=2.0, horizon=50.0, seed=7, work_mean=0.2):
    engine = SimulationEngine()
    server = RequestServer(microservice=1, allocation=allocation)
    engine.register(EventKind.ARRIVAL, server.handle_arrival)
    engine.register(EventKind.DEPARTURE, server.handle_departure)
    process = ArrivalProcess(
        microservice=1,
        rate=rate,
        horizon=horizon,
        rng=make_rng(seed),
        work_mean=work_mean,
    )
    engine.register(EventKind.ARRIVAL, process.on_arrival)
    process.start(engine)
    return engine, server


class TestRequest:
    def test_non_positive_work_rejected(self):
        with pytest.raises(SimulationError):
            Request(request_id=0, microservice=1, user=0, arrival_time=0.0, work=0.0)


class TestRequestServer:
    def test_processes_all_requests_when_overprovisioned(self):
        engine, server = build_system(rate=2.0, allocation=10.0, horizon=30.0)
        engine.run_until(60.0)
        stats = server.stats
        assert stats.received > 0
        assert stats.served == stats.received

    def test_queue_builds_under_overload(self):
        engine, server = build_system(
            rate=20.0, allocation=1.0, horizon=20.0, work_mean=1.0
        )
        engine.run_until(20.0)
        assert server.stats.served < server.stats.received
        assert server.queue_length > 0

    def test_snapshot_waiting_time_grows_with_load(self):
        _, light_server = (sys := build_system(rate=1.0, allocation=5.0))
        sys[0].run_until(60.0)
        light = light_server.stats.snapshot(0, 0.0, 60.0)
        engine, heavy_server = build_system(
            rate=15.0, allocation=1.0, work_mean=0.5
        )
        engine.run_until(60.0)
        heavy = heavy_server.stats.snapshot(0, 0.0, 60.0)
        assert heavy.mean_waiting_time > light.mean_waiting_time

    def test_allocation_change_scales_total_capacity(self):
        server = RequestServer(microservice=1, allocation=1.0)
        initial_capacity = server.speed * server.slots
        server.set_allocation(4.0, now=0.0)
        assert server.slots == 4
        assert server.speed * server.slots == pytest.approx(4 * initial_capacity)
        # Fractional allocations speed up the single slot directly.
        server.set_allocation(1.5, now=0.0)
        assert server.slots == 1
        assert server.speed == pytest.approx(1.5)

    def test_invalid_allocation_rejected(self):
        server = RequestServer(microservice=1, allocation=1.0)
        with pytest.raises(SimulationError):
            server.set_allocation(0.0, now=0.0)

    def test_unknown_departure_rejected(self):
        engine = SimulationEngine()
        server = RequestServer(microservice=1, allocation=1.0)
        engine.register(EventKind.DEPARTURE, server.handle_departure)
        engine.schedule(1.0, EventKind.DEPARTURE, (1, 999))
        with pytest.raises(SimulationError):
            engine.run_until(2.0)

    def test_foreign_microservice_events_ignored(self):
        engine = SimulationEngine()
        server = RequestServer(microservice=1, allocation=1.0)
        engine.register(EventKind.ARRIVAL, server.handle_arrival)
        foreign = Request(
            request_id=0, microservice=2, user=0, arrival_time=0.5, work=1.0
        )
        engine.schedule(0.5, EventKind.ARRIVAL, foreign)
        engine.run_until(1.0)
        assert server.stats.received == 0


class TestMetrics:
    def test_completion_ratio_idle_is_one(self):
        stats = MicroserviceStats(microservice=1)
        snap = stats.snapshot(0, 0.0, 10.0)
        assert snap.completion_ratio == 1.0
        assert snap.backlog == 0

    def test_negative_durations_rejected(self):
        stats = MicroserviceStats(microservice=1)
        with pytest.raises(SimulationError):
            stats.record_completion(-1.0, 1.0)

    def test_snapshot_requires_positive_duration(self):
        stats = MicroserviceStats(microservice=1)
        with pytest.raises(SimulationError):
            stats.snapshot(0, 5.0, 5.0)

    def test_utilization_bounded(self):
        engine, server = build_system(rate=30.0, allocation=1.0, work_mean=1.0)
        engine.run_until(40.0)
        snap = server.stats.snapshot(0, 0.0, 40.0)
        assert 0.0 <= snap.utilization <= 1.0
        assert snap.utilization > 0.5  # overloaded server is mostly busy

    def test_reset_preserves_busy_state(self):
        stats = MicroserviceStats(microservice=1)
        stats.mark_busy(1.0)
        stats.reset(now=5.0)
        stats.mark_idle(7.0)
        assert stats.busy_time == pytest.approx(2.0)

    def test_arrival_rate_hint_overrides_target(self):
        stats = MicroserviceStats(microservice=1)
        stats.record_arrival()
        snap = stats.snapshot(0, 0.0, 10.0, arrival_rate_hint=3.5)
        assert snap.target_rate == 3.5


class TestRng:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent_and_deterministic(self):
        a1, a2 = spawn_rngs(42, 2)
        b1, b2 = spawn_rngs(42, 2)
        assert a1.random() == b1.random()
        assert a2.random() == b2.random()

    def test_registry_streams_stable_across_instances(self):
        r1 = RngRegistry(seed=9)
        r2 = RngRegistry(seed=9)
        # Request in different orders; same names must give same streams.
        x = r2.stream("beta").random()
        assert r1.stream("alpha").random() == r2.stream("alpha").random()
        assert r1.stream("beta").random() == x

    def test_registry_caches_streams(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("s") is registry.stream("s")

    def test_registry_rejects_empty_name(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RngRegistry(seed=1).stream("")
