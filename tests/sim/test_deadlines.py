"""Unit tests for request deadlines and the EDF queue discipline."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.sim.metrics import MicroserviceStats, RoundSnapshot
from repro.sim.processes import ArrivalProcess, Request, RequestServer


def make_request(rid, arrival, work=1.0, deadline=None):
    return Request(
        request_id=rid,
        microservice=1,
        user=0,
        arrival_time=arrival,
        work=work,
        deadline=deadline,
    )


def wire(server):
    engine = SimulationEngine()
    engine.register(EventKind.ARRIVAL, server.handle_arrival)
    engine.register(EventKind.DEPARTURE, server.handle_departure)
    return engine


class TestRequestDeadlines:
    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(SimulationError):
            make_request(0, arrival=5.0, deadline=4.0)

    def test_stale_request_dropped_not_served(self):
        server = RequestServer(microservice=1, allocation=1.0)
        engine = wire(server)
        # First request occupies the single slot for 10 time units; the
        # second has a deadline that expires while it waits.
        engine.schedule(0.0, EventKind.ARRIVAL, make_request(0, 0.0, work=10.0))
        engine.schedule(
            0.5, EventKind.ARRIVAL, make_request(1, 0.5, work=1.0, deadline=2.0)
        )
        engine.run_until(20.0)
        assert server.stats.served == 1
        assert server.stats.dropped == 1

    def test_fresh_request_with_deadline_served(self):
        server = RequestServer(microservice=1, allocation=1.0)
        engine = wire(server)
        engine.schedule(
            0.0, EventKind.ARRIVAL, make_request(0, 0.0, work=1.0, deadline=5.0)
        )
        engine.run_until(10.0)
        assert server.stats.served == 1
        assert server.stats.dropped == 0

    def test_drop_rate_in_snapshot(self):
        stats = MicroserviceStats(microservice=1)
        stats.record_arrival()
        stats.record_arrival()
        stats.record_drop()
        snap = stats.snapshot(0, 0.0, 10.0)
        assert snap.dropped == 1
        assert snap.drop_rate == pytest.approx(0.5)
        assert snap.backlog == 1

    def test_idle_drop_rate_zero(self):
        snap = RoundSnapshot(
            microservice=1, round_index=0, received=0, served=0,
            mean_waiting_time=0.0, mean_execution_time=0.0,
            utilization=0.0, achieved_rate=0.0, target_rate=0.0,
            allocation=1.0,
        )
        assert snap.drop_rate == 0.0

    def test_reset_clears_drop_counter(self):
        stats = MicroserviceStats(microservice=1)
        stats.record_arrival()
        stats.record_drop()
        stats.reset(now=1.0)
        assert stats.dropped == 0


class TestEDF:
    def test_earliest_deadline_served_first(self):
        server = RequestServer(microservice=1, allocation=1.0, discipline="edf")
        engine = wire(server)
        # One long request occupies the slot; two queued requests arrive
        # in FIFO order opposite to their deadlines.
        engine.schedule(0.0, EventKind.ARRIVAL, make_request(0, 0.0, work=5.0))
        engine.schedule(
            1.0, EventKind.ARRIVAL, make_request(1, 1.0, work=1.0, deadline=100.0)
        )
        engine.schedule(
            1.5, EventKind.ARRIVAL, make_request(2, 1.5, work=1.0, deadline=6.0)
        )
        engine.run_until(5.5)
        # At t=5 the slot frees; EDF must have started request 2
        # (deadline 6) ahead of request 1 (deadline 100).
        assert 2 in {r for r in server._in_service}
        assert 1 not in {r for r in server._in_service}

    def test_fifo_serves_in_arrival_order(self):
        server = RequestServer(microservice=1, allocation=1.0, discipline="fifo")
        engine = wire(server)
        engine.schedule(0.0, EventKind.ARRIVAL, make_request(0, 0.0, work=5.0))
        engine.schedule(
            1.0, EventKind.ARRIVAL, make_request(1, 1.0, work=1.0, deadline=100.0)
        )
        engine.schedule(
            1.5, EventKind.ARRIVAL, make_request(2, 1.5, work=1.0, deadline=6.0)
        )
        engine.run_until(4.9)
        # After the long request finishes at t=5, FIFO starts request 1.
        engine.run_until(5.5)
        assert 1 in {r for r in server._in_service}

    def test_unknown_discipline_rejected(self):
        with pytest.raises(SimulationError):
            RequestServer(microservice=1, allocation=1.0, discipline="lifo")

    def test_undeadlined_requests_sort_last_in_edf(self):
        server = RequestServer(microservice=1, allocation=1.0, discipline="edf")
        engine = wire(server)
        engine.schedule(0.0, EventKind.ARRIVAL, make_request(0, 0.0, work=5.0))
        engine.schedule(1.0, EventKind.ARRIVAL, make_request(1, 1.0, work=1.0))
        engine.schedule(
            1.5, EventKind.ARRIVAL, make_request(2, 1.5, work=1.0, deadline=50.0)
        )
        engine.run_until(5.5)
        # At t=5 the slot frees; EDF must pick request 2 (has a deadline).
        assert 2 in {r for r in server._in_service}


class TestArrivalProcessDeadlines:
    def test_relative_deadline_stamped(self):
        engine = SimulationEngine()
        seen = []
        engine.register(EventKind.ARRIVAL, lambda e, ev: seen.append(ev.payload))
        process = ArrivalProcess(
            microservice=1,
            rate=5.0,
            horizon=10.0,
            rng=np.random.default_rng(1),
            relative_deadline=2.5,
        )
        engine.register(EventKind.ARRIVAL, process.on_arrival)
        process.start(engine)
        engine.run_until(10.0)
        assert seen
        for request in seen:
            assert request.deadline == pytest.approx(request.arrival_time + 2.5)

    def test_invalid_relative_deadline_rejected(self):
        with pytest.raises(SimulationError):
            ArrivalProcess(
                microservice=1,
                rate=1.0,
                horizon=10.0,
                rng=np.random.default_rng(2),
                relative_deadline=0.0,
            )
