"""Unit tests for the alternative greedy selection rules."""

import numpy as np
import pytest

from repro.baselines.greedy_variants import VARIANT_KEYS, run_greedy_variant
from repro.core.bids import Bid
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_round


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestVariants:
    def test_density_matches_ssam(self, market):
        ssam = run_ssam(market)
        density = run_greedy_variant(market, "density")
        assert {b.key for b in density.winners} == ssam.winner_keys
        assert density.social_cost == pytest.approx(ssam.social_cost)

    @pytest.mark.parametrize("variant", sorted(VARIANT_KEYS))
    def test_all_variants_produce_feasible_covers(self, market, variant):
        result = run_greedy_variant(market, variant)
        market.verify_solution(list(result.winners))

    @pytest.mark.parametrize("variant", sorted(VARIANT_KEYS))
    def test_no_variant_beats_optimum(self, market, variant):
        optimum = solve_wsp_optimal(market).objective
        result = run_greedy_variant(market, variant)
        assert result.social_cost >= optimum - 1e-9

    def test_unknown_variant_rejected(self, market):
        with pytest.raises(InfeasibleInstanceError, match="unknown"):
            run_greedy_variant(market, "mystery")

    def test_infeasible_instance_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            run_greedy_variant(instance, "density")

    def test_density_dominates_on_average(self):
        # Over markets priced per-unit (price = unit cost × coverage, as
        # the platform's truthful sellers bid), the density rule is the
        # cheapest of the three — this is the whole point of SSAM's key.
        # (With whole-bid uniform prices, big bids are per-unit bargains
        # and coverage-first accidentally ties it.)
        rng = np.random.default_rng(21)
        totals = {name: 0.0 for name in VARIANT_KEYS}
        for _ in range(12):
            base = generate_round(
                MarketConfig(n_sellers=15, n_buyers=6), rng
            )
            repriced = WSPInstance(
                bids=tuple(
                    Bid(
                        seller=b.seller,
                        index=b.index,
                        covered=b.covered,
                        price=float(rng.uniform(10.0, 35.0)) * b.size,
                    )
                    for b in base.bids
                ),
                demand=base.demand,
                price_ceiling=None,
            )
            for name in VARIANT_KEYS:
                totals[name] += run_greedy_variant(repriced, name).social_cost
        assert totals["density"] <= totals["cheapest_price"] + 1e-9
        assert totals["density"] <= totals["largest_coverage"] + 1e-9

    def test_largest_coverage_prefers_wholesale(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1, 2, 3}, 40.0),
                bid(11, {1}, 1.0),
                bid(12, {2}, 1.0),
                bid(13, {3}, 1.0),
            ],
            {1: 1, 2: 1, 3: 1},
        )
        wholesale = run_greedy_variant(instance, "largest_coverage")
        assert wholesale.winners[0].key == (10, 0)
        dense = run_greedy_variant(instance, "density")
        assert dense.social_cost < wholesale.social_cost
