"""Unit tests for the baseline mechanisms."""

import numpy as np
import pytest

from repro.baselines.fixed_pricing import run_posted_price
from repro.baselines.offline import run_offline_greedy, run_offline_optimal
from repro.baselines.pay_as_bid import run_pay_as_bid
from repro.baselines.random_mechanism import run_random_selection
from repro.baselines.vcg import run_vcg
from repro.core.bids import Bid
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_horizon, generate_round


def bid(seller, covered, price, index=0, true_cost=None):
    return Bid(
        seller=seller,
        index=index,
        covered=frozenset(covered),
        price=price,
        true_cost=true_cost,
    )


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestPostedPrice:
    def test_high_price_attracts_everyone(self, market):
        result = run_posted_price(market, unit_price=40.0)
        assert result.satisfied
        assert result.unmet_units == 0

    def test_low_price_starves_the_market(self, market):
        result = run_posted_price(market, unit_price=1.0)
        assert not result.satisfied
        assert result.unmet_units > 0

    def test_payment_is_posted_price_times_units(self, market):
        result = run_posted_price(market, unit_price=40.0)
        expected = sum(40.0 * b.size for b in result.winners)
        assert result.total_payment == pytest.approx(expected)

    def test_overpaying_relative_to_auction(self, market):
        # The price high enough to clear the market overpays versus SSAM's
        # targeted payments — the paper's argument against flat pricing.
        posted = run_posted_price(market, unit_price=35.0)
        auction = run_ssam(market)
        assert posted.satisfied
        assert posted.total_payment > auction.total_payment

    def test_invalid_price_rejected(self, market):
        with pytest.raises(ConfigurationError):
            run_posted_price(market, unit_price=0.0)


class TestRandomSelection:
    def test_covers_demand(self, market):
        result = run_random_selection(market, np.random.default_rng(1))
        market.verify_solution(list(result.winners))

    def test_costs_at_least_optimal(self, market):
        optimum = solve_wsp_optimal(market).objective
        for seed in range(5):
            result = run_random_selection(market, np.random.default_rng(seed))
            assert result.social_cost >= optimum - 1e-9

    def test_infeasible_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            run_random_selection(instance, np.random.default_rng(0))


class TestPayAsBid:
    def test_allocation_matches_ssam(self, market):
        pab = run_pay_as_bid(market)
        ssam = run_ssam(market)
        assert {b.key for b in pab.winners} == ssam.winner_keys

    def test_payment_equals_social_cost(self, market):
        pab = run_pay_as_bid(market)
        assert pab.total_payment == pytest.approx(pab.social_cost)

    def test_pays_less_than_truthful_auction(self, market):
        pab = run_pay_as_bid(market)
        ssam = run_ssam(market)
        assert pab.total_payment <= ssam.total_payment + 1e-9

    def test_empty_demand(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert run_pay_as_bid(instance).winners == ()


class TestVCG:
    def test_optimal_allocation(self, market):
        vcg = run_vcg(market)
        assert vcg.social_cost == pytest.approx(
            solve_wsp_optimal(market).objective
        )

    def test_individual_rationality(self, market):
        vcg = run_vcg(market)
        for winner in vcg.winners:
            assert vcg.payments[winner.key] >= winner.price - 1e-9

    def test_social_cost_below_ssam(self, market):
        vcg = run_vcg(market)
        ssam = run_ssam(market)
        assert vcg.social_cost <= ssam.social_cost + 1e-9

    def test_loser_utility_zero(self, market):
        vcg = run_vcg(market)
        winning_sellers = {b.seller for b in vcg.winners}
        for seller in set(market.sellers) - winning_sellers:
            assert vcg.utility_of(seller) == 0.0

    def test_pivotal_winner_capped_by_ceiling(self):
        instance = WSPInstance.from_bids(
            [bid(10, {1}, 2.0)], {1: 1}, price_ceiling=50.0
        )
        vcg = run_vcg(instance)
        assert vcg.payments[(10, 0)] == pytest.approx(50.0)

    def test_vcg_truthful_on_random_instances(self):
        rng = np.random.default_rng(31)
        instance = generate_round(MarketConfig(n_sellers=6, n_buyers=3), rng)
        baseline = run_vcg(instance)
        for offer in instance.bids:
            base_utility = baseline.utility_of(offer.seller)
            for factor in (0.5, 1.7):
                deviated = instance.replace_bid(
                    offer.with_price(offer.price * factor)
                )
                utility = run_vcg(deviated).utility_of(offer.seller)
                assert utility <= base_utility + 1e-7


class TestOffline:
    def test_exact_matches_horizon_milp(self):
        rng = np.random.default_rng(7)
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=8, n_buyers=4), rng, rounds=3
        )
        result = run_offline_optimal(horizon, capacities)
        assert result.exact
        assert result.social_cost == pytest.approx(
            sum(result.per_round_cost)
        )
        assert result.rounds == 3

    def test_greedy_upper_bounds_exact(self):
        rng = np.random.default_rng(8)
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=8, n_buyers=4), rng, rounds=3
        )
        exact = run_offline_optimal(horizon, capacities)
        greedy = run_offline_greedy(horizon, capacities)
        assert not greedy.exact
        assert greedy.social_cost >= exact.social_cost - 1e-9
