"""Unit tests for the LP relaxation and the fast lower bounds."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.greedy_lb import fractional_unit_bound, lp_bound
from repro.solvers.lp_relax import solve_lp_relaxation
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_round


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestLPRelaxation:
    def test_lower_bounds_ilp(self, market):
        lp = solve_lp_relaxation(market)
        ilp = solve_wsp_optimal(market)
        assert lp.objective <= ilp.objective + 1e-9

    def test_fractional_solution_within_bounds(self, market):
        lp = solve_lp_relaxation(market)
        assert np.all(lp.x >= -1e-9)
        assert np.all(lp.x <= 1 + 1e-9)

    def test_strong_duality(self, market):
        lp = solve_lp_relaxation(market)
        assert lp.dual_objective(market) == pytest.approx(
            lp.objective, abs=1e-6
        )

    def test_duals_nonnegative(self, market):
        lp = solve_lp_relaxation(market)
        assert all(v >= -1e-9 for v in lp.buyer_duals.values())
        assert all(v >= -1e-9 for v in lp.seller_duals.values())
        assert np.all(lp.bound_duals >= -1e-9)

    def test_zero_demand(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert solve_lp_relaxation(instance).objective == 0.0

    def test_infeasible_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            solve_lp_relaxation(instance)

    def test_random_instances_sandwich(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            instance = generate_round(
                MarketConfig(n_sellers=8, n_buyers=4), rng
            )
            lp = solve_lp_relaxation(instance)
            ilp = solve_wsp_optimal(instance)
            assert lp.objective <= ilp.objective + 1e-6


class TestFastBounds:
    def test_fractional_bound_below_lp(self, market):
        assert fractional_unit_bound(market) <= lp_bound(market) + 1e-9

    def test_lp_bound_below_ilp(self, market):
        assert lp_bound(market) <= solve_wsp_optimal(market).objective + 1e-9

    def test_fractional_bound_zero_demand(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert fractional_unit_bound(instance) == 0.0

    def test_fractional_bound_infeasible(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            fractional_unit_bound(instance)

    def test_bounds_on_random_instances(self):
        rng = np.random.default_rng(23)
        for _ in range(5):
            instance = generate_round(
                MarketConfig(n_sellers=10, n_buyers=4), rng
            )
            ilp = solve_wsp_optimal(instance).objective
            assert fractional_unit_bound(instance) <= ilp + 1e-6
            assert lp_bound(instance) <= ilp + 1e-6
