"""Unit tests for the pure-Python branch-and-bound solver."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.branch_bound import solve_wsp_branch_bound
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_round


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


class TestBranchBound:
    def test_known_optimum(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1, 2}, 12.0),
                bid(11, {1}, 5.0),
                bid(12, {2, 3}, 9.0),
                bid(13, {1, 2, 3}, 30.0),
                bid(14, {3}, 4.0),
            ],
            {1: 1, 2: 1, 3: 2},
        )
        solution = solve_wsp_branch_bound(instance)
        assert solution.objective == pytest.approx(18.0)
        instance.verify_solution(solution.chosen)

    def test_zero_demand(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert solve_wsp_branch_bound(instance).objective == 0.0

    def test_infeasible_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            solve_wsp_branch_bound(instance)

    def test_one_bid_per_seller_respected(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
                bid(11, {1, 2}, 100.0),
                bid(12, {1}, 3.0),
                bid(13, {2}, 3.0),
            ],
            {1: 1, 2: 1},
        )
        solution = solve_wsp_branch_bound(instance)
        assert solution.objective == pytest.approx(4.0)

    def test_node_limit_enforced(self):
        rng = np.random.default_rng(0)
        instance = generate_round(MarketConfig(n_sellers=10, n_buyers=5), rng)
        with pytest.raises(RuntimeError, match="exceeded"):
            solve_wsp_branch_bound(instance, node_limit=3)

    def test_agrees_with_milp_on_random_instances(self):
        rng = np.random.default_rng(17)
        for _ in range(10):
            instance = generate_round(
                MarketConfig(n_sellers=7, n_buyers=3, bids_per_seller=2), rng
            )
            bb = solve_wsp_branch_bound(instance)
            milp = solve_wsp_optimal(instance)
            assert bb.objective == pytest.approx(milp.objective, abs=1e-6)
