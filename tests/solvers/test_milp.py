"""Unit tests for the exact MILP solvers (single round and horizon)."""

import numpy as np
import pytest

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_horizon_optimal, solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_round


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestSingleRound:
    def test_known_optimum(self, market):
        solution = solve_wsp_optimal(market)
        assert solution.objective == pytest.approx(18.0)
        assert solution.chosen_keys == {(11, 0), (12, 0), (14, 0)}

    def test_solution_is_feasible(self, market):
        solution = solve_wsp_optimal(market)
        market.verify_solution(solution.chosen)

    def test_zero_demand_zero_cost(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert solve_wsp_optimal(instance).objective == 0.0

    def test_infeasible_raises(self):
        instance = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 2})
        with pytest.raises(InfeasibleInstanceError):
            solve_wsp_optimal(instance)

    def test_no_bids_positive_demand_raises(self):
        instance = WSPInstance.from_bids([], {1: 1})
        with pytest.raises(InfeasibleInstanceError):
            solve_wsp_optimal(instance)

    def test_respects_one_bid_per_seller(self):
        instance = WSPInstance.from_bids(
            [
                bid(10, {1}, 1.0, index=0),
                bid(10, {2}, 1.0, index=1),
                bid(11, {1, 2}, 100.0),
                bid(12, {1}, 3.0),
                bid(13, {2}, 3.0),
            ],
            {1: 1, 2: 1},
        )
        solution = solve_wsp_optimal(instance)
        sellers = [b.seller for b in solution.chosen]
        assert len(sellers) == len(set(sellers))
        # Cheapest legal combo: 10's one bid plus one 3.0 bid = 4.0.
        assert solution.objective == pytest.approx(4.0)

    def test_random_instances_solvable(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            instance = generate_round(
                MarketConfig(n_sellers=8, n_buyers=4), rng
            )
            solution = solve_wsp_optimal(instance)
            instance.verify_solution(solution.chosen)


class TestHorizon:
    CAPACITIES = {10: 6, 11: 4, 12: 6, 13: 8, 14: 4}

    def test_horizon_at_least_sum_of_round_optima(self, market):
        rounds = [market, market]
        horizon = solve_horizon_optimal(rounds, self.CAPACITIES)
        single = solve_wsp_optimal(market).objective
        assert horizon.objective >= 2 * single - 1e-9

    def test_without_capacities_equals_independent_rounds(self, market):
        rounds = [market, market, market]
        horizon = solve_horizon_optimal(rounds, None)
        single = solve_wsp_optimal(market).objective
        assert horizon.objective == pytest.approx(3 * single)

    def test_capacity_coupling_forces_expensive_bids(self):
        # Seller 10 is cheapest but can serve only one round.
        round_ = WSPInstance.from_bids(
            [bid(10, {1}, 1.0), bid(11, {1}, 10.0)], {1: 1}
        )
        horizon = solve_horizon_optimal([round_, round_], {10: 1, 11: 10})
        assert horizon.objective == pytest.approx(11.0)

    def test_capacity_infeasible_horizon_raises(self):
        round_ = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 1})
        with pytest.raises(InfeasibleInstanceError):
            solve_horizon_optimal([round_, round_], {10: 1})

    def test_round_indices_reported(self, market):
        horizon = solve_horizon_optimal([market, market], self.CAPACITIES)
        assert set(horizon.rounds) <= {0, 1}
        assert len(horizon.rounds) == len(horizon.chosen)

    def test_empty_horizon_zero(self):
        empty = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 0})
        assert solve_horizon_optimal([empty], {10: 5}).objective == 0.0


class TestSolverOptions:
    def test_feasibility_only_zero_objective(self, market):
        solution = solve_horizon_optimal(
            [market], {10: 6, 11: 4, 12: 6, 13: 8, 14: 4},
            feasibility_only=True,
        )
        # Objective is reported at real prices even for feasibility probes.
        market.verify_solution(solution.chosen)

    def test_gap_limited_solution_close_to_exact(self, market):
        rounds = [market] * 3
        capacities = {10: 9, 11: 6, 12: 9, 13: 12, 14: 6}
        exact = solve_horizon_optimal(
            rounds, capacities, mip_rel_gap=1e-9
        )
        gapped = solve_horizon_optimal(
            rounds, capacities, mip_rel_gap=0.05
        )
        assert gapped.objective >= exact.objective - 1e-6
        assert gapped.objective <= exact.objective * 1.06

    def test_infeasible_still_detected_with_options(self):
        round_ = WSPInstance.from_bids([bid(10, {1}, 1.0)], {1: 1})
        with pytest.raises(InfeasibleInstanceError):
            solve_horizon_optimal(
                [round_, round_], {10: 1}, feasibility_only=True
            )
