"""Unit tests for the economics audits, ratio reports, and tables."""

import numpy as np
import pytest

from repro.analysis.economics import (
    audit_individual_rationality,
    payment_price_pairs,
    probe_truthfulness,
)
from repro.analysis.ratios import msoa_performance_ratio, ssam_performance_ratio
from repro.analysis.reporting import ResultTable
from repro.core.bids import Bid
from repro.core.msoa import run_msoa
from repro.core.ssam import run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.workload.bidgen import MarketConfig, generate_horizon, generate_round


def bid(seller, covered, price, index=0):
    return Bid(seller=seller, index=index, covered=frozenset(covered), price=price)


@pytest.fixture
def market():
    return WSPInstance.from_bids(
        [
            bid(10, {1, 2}, 12.0),
            bid(11, {1}, 5.0),
            bid(12, {2, 3}, 9.0),
            bid(13, {1, 2, 3}, 30.0),
            bid(14, {3}, 4.0),
        ],
        {1: 1, 2: 1, 3: 2},
    )


class TestEconomics:
    def test_no_ir_violations_on_ssam(self, market):
        outcome = run_ssam(market)
        assert audit_individual_rationality(outcome) == []

    def test_payment_price_pairs_match_winners(self, market):
        outcome = run_ssam(market)
        pairs = payment_price_pairs(outcome)
        assert len(pairs) == len(outcome.winners)
        assert all(payment >= price for price, payment in pairs)

    def test_truthfulness_probe_finds_no_gain(self, market):
        results = probe_truthfulness(
            market, rng=np.random.default_rng(5), deviations_per_bid=4
        )
        assert results  # some deviations were evaluated
        for result in results:
            assert result.gain <= 1e-9

    def test_probe_on_random_single_bid_market(self):
        rng = np.random.default_rng(9)
        instance = generate_round(
            MarketConfig(n_sellers=8, n_buyers=4, bids_per_seller=1), rng
        )
        results = probe_truthfulness(
            instance, rng=rng, deviations_per_bid=2
        )
        for result in results:
            assert result.gain <= 1e-9


class TestRatios:
    def test_ssam_ratio_at_least_one_within_bound(self, market):
        report = ssam_performance_ratio(run_ssam(market))
        assert report.ratio >= 1.0 - 1e-9
        assert report.within_bound

    def test_msoa_ratio_against_offline(self):
        rng = np.random.default_rng(10)
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=8, n_buyers=4), rng, rounds=3
        )
        from repro.workload.bidgen import ensure_online_feasible

        capacities = ensure_online_feasible(horizon, capacities)
        outcome = run_msoa(horizon, capacities)
        report = msoa_performance_ratio(outcome, horizon, capacities)
        assert report.ratio >= 1.0 - 1e-9
        assert report.mechanism_cost == pytest.approx(outcome.social_cost)


class TestResultTable:
    def test_render_contains_all_cells(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a="x")
        text = table.render()
        assert "T" in text and "2.500" in text and "x" in text
        assert "-" in text  # missing cell placeholder

    def test_unknown_column_rejected(self):
        table = ResultTable(title="T", columns=["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(zzz=1)

    def test_column_extraction(self):
        table = ResultTable(title="T", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]
        with pytest.raises(ConfigurationError):
            table.column("nope")

    def test_bool_rendering(self):
        table = ResultTable(title="T", columns=["ok"])
        table.add_row(ok=True)
        assert "yes" in table.render()

    def test_empty_table_renders_header(self):
        table = ResultTable(title="Empty", columns=["col"])
        assert "col" in table.render()
