"""Unit tests for the sensitivity-analysis helper."""

import pytest

from repro.analysis.sensitivity import sweep_parameter
from repro.errors import ConfigurationError


class TestSweepParameter:
    def test_linear_response_recovers_slope(self):
        result = sweep_parameter(
            [1.0, 2.0, 3.0, 4.0],
            lambda v, seed: 2.0 * v + 1.0,
            seeds=(0,),
        )
        assert result.slope == pytest.approx(2.0)
        assert result.trend == "increasing"
        assert result.is_sensitive

    def test_flat_response(self):
        result = sweep_parameter(
            [1.0, 2.0, 3.0], lambda v, seed: 7.0, seeds=(0, 1)
        )
        assert result.trend == "flat"
        assert result.slope == pytest.approx(0.0)
        assert not result.is_sensitive

    def test_decreasing_response(self):
        result = sweep_parameter(
            [1.0, 2.0, 3.0], lambda v, seed: -v, seeds=(0,)
        )
        assert result.trend == "decreasing"
        assert result.slope == pytest.approx(-1.0)

    def test_non_monotone_detected(self):
        responses = {1.0: 0.0, 2.0: 5.0, 3.0: 1.0}
        result = sweep_parameter(
            [1.0, 2.0, 3.0], lambda v, seed: responses[v], seeds=(0,)
        )
        assert result.trend == "non-monotone"

    def test_seed_averaging(self):
        result = sweep_parameter(
            [1.0, 2.0],
            lambda v, seed: v + seed,
            seeds=(0, 2),
        )
        assert result.responses == (2.0, 3.0)  # mean over seeds 0 and 2

    def test_too_few_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter([1.0], lambda v, s: v)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter([1.0, 2.0], lambda v, s: v, seeds=())

    def test_non_finite_measurement_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_parameter(
                [1.0, 2.0], lambda v, s: float("nan"), seeds=(0,)
            )

    def test_mechanism_level_usage(self):
        # Realistic use: social cost as a function of market thickness.
        import numpy as np

        from repro.core.ssam import run_ssam
        from repro.workload.bidgen import MarketConfig, generate_round

        def cost_at(n_sellers, seed):
            instance = generate_round(
                MarketConfig(n_sellers=int(n_sellers), n_buyers=4),
                np.random.default_rng(seed),
            )
            return run_ssam(instance).social_cost

        result = sweep_parameter(
            [8, 16, 32], cost_at, seeds=(11, 23, 37)
        )
        # Thicker markets are cheaper (more competition).
        assert result.responses[-1] <= result.responses[0]
