"""Unit tests for statistics helpers and ASCII visualization."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_ci,
    geometric_mean,
    paired_delta,
    summarize,
)
from repro.analysis.visualize import bar_chart, series_panel, sparkline
from repro.errors import ConfigurationError


class TestSummaries:
    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.n == 4
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_summarize_single_value(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0 and stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 7.0

    def test_summarize_rejects_empty_and_nonfinite(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize([1.0, float("nan")])

    def test_bootstrap_ci_deterministic_and_covering(self):
        rng = np.random.default_rng(3)
        data = list(rng.normal(10.0, 1.0, size=40))
        low1, high1 = bootstrap_ci(data, rng=np.random.default_rng(1))
        low2, high2 = bootstrap_ci(data, rng=np.random.default_rng(1))
        assert (low1, high1) == (low2, high2)
        assert low1 <= float(np.mean(data)) <= high1

    def test_bootstrap_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_overlap_detection(self):
        a = summarize([1.0, 1.1, 0.9, 1.0])
        b = summarize([5.0, 5.1, 4.9, 5.0])
        assert not a.overlaps(b)
        assert a.overlaps(a)

    def test_paired_delta(self):
        base = [1.0, 2.0, 3.0]
        treat = [1.5, 2.5, 3.5]
        delta = paired_delta(base, treat)
        assert delta.mean == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            paired_delta([1.0], [1.0, 2.0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    # Regressions for the silent non-finite aggregation bug: every
    # aggregator must raise loudly instead of emitting NaN summaries.
    @pytest.mark.parametrize("poison", [float("nan"), float("inf"), -float("inf")])
    def test_bootstrap_ci_rejects_nonfinite(self, poison):
        with pytest.raises(ConfigurationError, match="non-finite"):
            bootstrap_ci([1.0, 2.0, poison])

    @pytest.mark.parametrize("poison", [float("nan"), float("inf")])
    def test_geometric_mean_rejects_nonfinite(self, poison):
        # NaN used to slip through the ``v <= 0`` screen (NaN compares
        # false) and inf was averaged silently.
        with pytest.raises(ConfigurationError, match="non-finite"):
            geometric_mean([1.0, 2.0, poison])

    def test_paired_delta_rejects_nonfinite_inputs(self):
        # inf − inf = NaN: the inputs must be rejected, not the deltas.
        with pytest.raises(ConfigurationError, match="baseline"):
            paired_delta([float("inf"), 1.0], [2.0, 2.0])
        with pytest.raises(ConfigurationError, match="treatment"):
            paired_delta([1.0, 1.0], [float("nan"), 2.0])


class TestVisualize:
    def test_sparkline_shape(self):
        spark = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert len(spark) == 8
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_sparkline_constant_flat(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_sparkline_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    def test_bar_chart_scales_to_max(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert "10.00" in lines[0]

    def test_bar_chart_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})

    def test_series_panel_alignment(self):
        panel = series_panel(
            {"MSOA": [1.0, 1.2, 1.1], "DA": [1.0, 1.05, 1.02]},
            x_label="microservices",
        )
        assert "MSOA" in panel and "DA" in panel
        assert "microservices" in panel

    def test_series_panel_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            series_panel({"a": [1.0], "b": [1.0, 2.0]})
