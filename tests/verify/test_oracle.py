"""Unit tests for the critical-price bisection oracle on crafted markets.

The certification suite cross-checks the oracle against the engines
statistically; these tests pin its mechanics on hand-built instances
where the critical price is known in closed form.
"""

import math

import pytest

from repro.core.bids import Bid
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.verify.oracle import bisect_critical_price


def allocate(instance):
    return run_ssam(
        instance, payment_rule=PaymentRule.ITERATION_RUNNER_UP
    ).winner_keys


def duopoly(winner_price=5.0, runner_up_price=9.0):
    """One buyer, two interchangeable sellers: the cheap bid wins and its
    critical price is exactly the runner-up's announced price."""
    bids = [
        Bid(seller=101, index=0, covered=frozenset({1}), price=winner_price),
        Bid(seller=102, index=0, covered=frozenset({1}), price=runner_up_price),
    ]
    return WSPInstance.from_bids(bids, {1: 1}, price_ceiling=50.0)


class TestBisection:
    def test_threshold_is_the_runner_up_price(self):
        instance = duopoly()
        bracket = bisect_critical_price(allocate, instance, (101, 0))
        assert not bracket.capped
        assert bracket.threshold == pytest.approx(9.0, abs=1e-5)
        # The bracket is a genuine win/lose sandwich.
        assert bracket.lo <= bracket.threshold <= bracket.hi
        assert bracket.hi - bracket.lo <= 1e-6 + 1e-12

    def test_threshold_matches_engine_critical_payment(self):
        instance = duopoly(winner_price=12.0, runner_up_price=31.0)
        outcome = run_ssam(instance, payment_rule=PaymentRule.CRITICAL_RERUN)
        (winner,) = outcome.winners
        bracket = bisect_critical_price(allocate, instance, winner.bid.key)
        assert winner.payment == pytest.approx(bracket.threshold, abs=1e-4)

    def test_monopolist_is_reported_capped(self):
        bids = [Bid(seller=101, index=0, covered=frozenset({1}), price=5.0)]
        instance = WSPInstance.from_bids(bids, {1: 1}, price_ceiling=50.0)
        bracket = bisect_critical_price(allocate, instance, (101, 0))
        assert bracket.capped
        assert math.isinf(bracket.threshold)

    def test_evaluation_budget_is_logarithmic(self):
        bracket = bisect_critical_price(allocate, duopoly(), (101, 0))
        # bisecting a ~60-unit bracket to 1e-6 needs ~26 probes plus the
        # two anchors; anything near max_iterations means no convergence.
        assert bracket.evaluations < 40


class TestAnchoring:
    def test_losing_bid_rejected(self):
        instance = duopoly()
        with pytest.raises(ConfigurationError, match="does not win"):
            bisect_critical_price(allocate, instance, (102, 0))

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="no existing bid"):
            bisect_critical_price(allocate, duopoly(), (999, 0))

    def test_ceiling_below_announced_price_rejected(self):
        with pytest.raises(ConfigurationError, match="probe ceiling"):
            bisect_critical_price(
                allocate, duopoly(), (101, 0), probe_ceiling=4.0
            )
