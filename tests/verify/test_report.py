"""Unit tests for the certification report model and its JSON schema."""

import pytest

from repro.errors import ConfigurationError
from repro.verify.report import (
    MAX_RECORDED_VIOLATIONS,
    REPORT_SCHEMA_VERSION,
    CertificationReport,
    PropertyResult,
    PropertyStatus,
    Violation,
    _result_from_violations,
)


def result(name="monotonicity", status=PropertyStatus.PASS, claimed=True,
           checked=5, **kwargs):
    return PropertyResult(
        name=name, status=status, claimed=claimed, checked=checked, **kwargs
    )


def report(results, mechanism="ssam"):
    return CertificationReport(
        mechanism=mechanism,
        kind="single",
        seed=7,
        instances=10,
        results=tuple(results),
        market={"n_sellers": 8},
    )


class TestConformanceSemantics:
    def test_claimed_pass_conforms(self):
        assert result(status=PropertyStatus.PASS).conforms

    def test_claimed_fail_is_a_regression(self):
        assert not result(status=PropertyStatus.FAIL).conforms

    def test_claimed_skip_breaks_conformance(self):
        # A claim must be checkable; silently skipping it would let a
        # broken check masquerade as a certified property.
        assert not result(status=PropertyStatus.SKIP, checked=0).conforms

    def test_unclaimed_fail_is_expected_not_punished(self):
        r = result(status=PropertyStatus.FAIL, claimed=False)
        assert r.conforms
        assert r.expected_failure

    def test_report_gates_on_every_result(self):
        good = result()
        bad = result(name="truthfulness", status=PropertyStatus.FAIL)
        assert report([good]).conforms
        assert not report([good, bad]).conforms

    def test_expected_failures_listed(self):
        r = report([
            result(),
            result(name="truthfulness", status=PropertyStatus.FAIL,
                   claimed=False),
        ])
        assert r.conforms
        assert r.expected_failures == ("truthfulness",)

    def test_unknown_property_name_rejected(self):
        with pytest.raises(ConfigurationError, match="telepathy"):
            result(name="telepathy")


class TestResultFolding:
    def test_zero_checked_folds_to_skip(self):
        r = _result_from_violations(
            "approximation", checked=0, claimed=False, violations=[]
        )
        assert r.status is PropertyStatus.SKIP
        assert r.note

    def test_violations_fold_to_fail_with_exact_count(self):
        violations = [
            Violation(instance_index=i, detail=f"v{i}")
            for i in range(MAX_RECORDED_VIOLATIONS + 3)
        ]
        r = _result_from_violations(
            "monotonicity", checked=20, claimed=True, violations=violations
        )
        assert r.status is PropertyStatus.FAIL
        assert r.violation_count == MAX_RECORDED_VIOLATIONS + 3
        assert len(r.violations) == MAX_RECORDED_VIOLATIONS

    def test_clean_run_folds_to_pass(self):
        r = _result_from_violations(
            "feasibility", checked=10, claimed=True, violations=[]
        )
        assert r.status is PropertyStatus.PASS


class TestSerialization:
    def full_report(self):
        return report([
            result(violations=(
                Violation(instance_index=3, detail="boom",
                          bid_key=(1001, 0), observed=1.5, expected=2.0),
            ), violation_count=1, status=PropertyStatus.FAIL),
            result(name="truthfulness", status=PropertyStatus.SKIP,
                   claimed=False, checked=0, note="n/a"),
        ])

    def test_roundtrip_preserves_everything(self):
        original = self.full_report()
        restored = CertificationReport.from_dict(original.to_dict())
        assert restored == original

    def test_schema_is_tagged_and_versioned(self):
        data = self.full_report().to_dict()
        assert data["kind"] == "certification"
        assert data["schema_version"] == REPORT_SCHEMA_VERSION
        assert data["conforms"] is False

    def test_wrong_kind_rejected(self):
        data = self.full_report().to_dict()
        data["kind"] = "benchmark"
        with pytest.raises(ConfigurationError, match="kind"):
            CertificationReport.from_dict(data)

    def test_future_schema_version_rejected(self):
        data = self.full_report().to_dict()
        data["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            CertificationReport.from_dict(data)

    def test_result_for_unknown_property_raises(self):
        with pytest.raises(ConfigurationError, match="no property"):
            self.full_report().result_for("approximation")


class TestRender:
    def test_render_shows_verdicts_and_gate(self):
        text = report([
            result(),
            result(name="truthfulness", status=PropertyStatus.FAIL,
                   claimed=False, violations=(
                       Violation(instance_index=2, detail="gained utility"),
                   ), violation_count=1),
        ]).render()
        assert "ssam" in text
        assert "expected failure" in text
        assert "gained utility" in text
        assert "CONFORMS" in text

    def test_render_flags_regressions(self):
        text = report([result(status=PropertyStatus.FAIL)]).render()
        assert "REGRESSION" in text
        assert "DOES NOT CONFORM" in text
