"""Cross-mechanism conformance suite: `repro verify` end to end.

Every registered single/online mechanism is certified against its
declared claims; the suite pins both directions of the contract — SSAM
(both engines) must PASS everything it claims, and the non-truthful
baselines must FAIL truthfulness *as predicted* without breaking
conformance.  The oracle-agreement sweep is the PR's acceptance bar:
the bisection critical prices match the engine payments on hundreds of
generated instances for the fast and the reference engine alike.
"""

import json
import subprocess
import sys

import pytest

from repro.core.registry import get_spec
from repro.errors import ConfigurationError
from repro.verify import (
    CertificationReport,
    CheckSettings,
    PropertyStatus,
    certifiable_mechanisms,
    certify,
)
from repro.workload.bidgen import MarketConfig

pytestmark = pytest.mark.certify

#: Small, fast certification batch for the per-mechanism conformance
#: sweep; the acceptance-grade batches live in the marked-slow tests.
QUICK = dict(instances=6, seed=7)


class TestConformanceSweep:
    @pytest.mark.parametrize("name", sorted(set(certifiable_mechanisms()) - {"vcg"}))
    def test_mechanism_conforms_to_its_claims(self, name):
        report = certify(name, **QUICK)
        assert report.conforms, report.render()

    @pytest.mark.slow
    def test_vcg_conforms_to_its_claims(self):
        # VCG re-solves a MILP for every counterfactual probe; two
        # instances keep this in budget while still exercising it.
        report = certify("vcg", instances=2, seed=7)
        assert report.conforms, report.render()

    def test_ssam_passes_every_claimed_property(self):
        report = certify("ssam", **QUICK)
        for result in report.results:
            assert result.claimed, result.name
            assert result.status is PropertyStatus.PASS, report.render()

    def test_pay_as_bid_fails_truthfulness_as_predicted(self):
        report = certify("pay-as-bid", **QUICK)
        assert report.conforms
        truthfulness = report.result_for("truthfulness")
        assert truthfulness.status is PropertyStatus.FAIL
        assert not truthfulness.claimed
        assert "truthfulness" in report.expected_failures
        # The counterexamples are concrete and reproducible.
        violation = truthfulness.violations[0]
        assert violation.observed > violation.expected

    def test_online_mechanism_skips_single_round_probes(self):
        report = certify("msoa", instances=2, seed=7)
        assert report.conforms
        assert report.result_for("feasibility").status is PropertyStatus.PASS
        skipped = report.result_for("truthfulness")
        assert skipped.status is PropertyStatus.SKIP
        assert not skipped.claimed

    def test_reports_are_reproducible(self):
        first = certify("ssam", **QUICK)
        second = certify("ssam", **QUICK)
        assert first.to_dict() == second.to_dict()


class TestOracleEngineAgreement:
    """Acceptance bar: bisection oracle ≡ engine payments, both engines.

    ``certify`` cross-checks every sampled winner's payment against the
    engine-independent bisection threshold; a PASS over 100 instances ×
    2 engines (≥ 200 certified instances total, ~400 winner payments)
    is the strongest evidence the repo has that the payment rule
    implements Lemma 3.
    """

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_bisection_matches_engine_payments_at_scale(self, engine):
        report = certify(
            "ssam",
            instances=100,
            seed=13,
            engine=engine,
            properties=["critical-payment"],
            settings=CheckSettings(max_critical_bids=3),
        )
        result = report.result_for("critical-payment")
        assert result.status is PropertyStatus.PASS, report.render()
        assert result.checked >= 200  # winners probed across the batch


class TestCertifyValidation:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            certify("nope")

    def test_horizon_benchmark_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            certify("offline-milp")

    def test_unknown_property_rejected(self):
        with pytest.raises(ConfigurationError, match="telepathy"):
            certify("ssam", instances=1, properties=["telepathy"])

    def test_non_positive_instances_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            certify("ssam", instances=0)

    def test_property_subset_restricts_report(self):
        report = certify(
            "ssam", instances=2, properties=["feasibility", "monotonicity"]
        )
        assert [r.name for r in report.results] == [
            "feasibility", "monotonicity",
        ]

    def test_custom_market_is_recorded(self):
        market = MarketConfig(n_sellers=6, n_buyers=2, bids_per_seller=2)
        report = certify("ssam", instances=2, market=market)
        assert report.market["n_sellers"] == 6
        assert report.market["n_buyers"] == 2


class TestVerifyCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "verify", *argv],
            capture_output=True,
            text=True,
        )

    def test_conforming_mechanism_exits_zero(self, tmp_path):
        target = tmp_path / "cert.json"
        proc = self.run_cli(
            "--mechanism", "ssam", "--instances", "4", "--seed", "7",
            "--report", str(target),
        )
        assert proc.returncode == 0, proc.stderr
        assert "CONFORMS" in proc.stdout
        payload = json.loads(target.read_text())
        report = CertificationReport.from_dict(payload)
        assert report.mechanism == "ssam" and report.conforms

    def test_expected_failures_still_exit_zero(self):
        proc = self.run_cli(
            "--mechanism", "pay-as-bid", "--instances", "4", "--seed", "7"
        )
        assert proc.returncode == 0, proc.stderr
        assert "expected failure" in proc.stdout

    def test_unknown_mechanism_exits_two(self):
        proc = self.run_cli("--mechanism", "nope", "--instances", "1")
        assert proc.returncode == 2
        assert "unknown mechanism" in proc.stderr


def test_claims_and_legacy_truthful_flag_agree():
    """The spec's coarse ``truthful`` boolean and the fine-grained claims
    must tell one story — a mechanism flagged truthful has to claim the
    property (posted-price's trivial truthfulness is claimed without the
    flag, so only this direction is asserted)."""
    for name in certifiable_mechanisms():
        spec = get_spec(name)
        if spec.truthful and spec.kind == "single":
            assert "truthfulness" in spec.claims, name
