"""Unit tests for the per-property checkers and the instance editors.

Each checker must (a) stay silent on a mechanism that honours the
property and (b) produce a violation when fed a rigged mechanism that
breaks it — a checker that can't fail is not a check.
"""

import dataclasses

import pytest

from repro.core.registry import get_mechanism
from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import ConfigurationError
from repro.verify.properties import (
    CheckSettings,
    MechanismUnderTest,
    check_approximation,
    check_critical_payment,
    check_feasibility,
    check_individual_rationality,
    check_monotonicity,
    check_truthfulness,
)

SETTINGS = CheckSettings()


def ssam_mut():
    return MechanismUnderTest(
        name="ssam",
        runner=lambda instance: run_ssam(instance),
        allocate=lambda instance: run_ssam(
            instance, payment_rule=PaymentRule.ITERATION_RUNNER_UP
        ).winner_keys,
    )


class TestInstanceEditors:
    def test_perturb_bid_changes_price_and_pins_cost(self, make_instance):
        instance = make_instance()
        key = instance.bids[0].key
        original = instance.bid_by_key(key)
        edited = instance.perturb_bid(key, original.price * 2.0)
        new_bid = edited.bid_by_key(key)
        assert new_bid.price == pytest.approx(original.price * 2.0)
        assert new_bid.cost == pytest.approx(original.cost)
        # everything else untouched
        assert len(edited.bids) == len(instance.bids)
        assert edited.demand == instance.demand

    def test_perturb_unknown_key_rejected(self, make_instance):
        with pytest.raises(ConfigurationError, match="no existing bid"):
            make_instance().perturb_bid((999, 9), 1.0)

    def test_restrict_seller_to_drops_only_siblings(self, make_instance):
        instance = make_instance()  # 2 bids per seller by default
        key = instance.bids[0].key
        projected = instance.restrict_seller_to(key)
        assert len(projected.bids_of(key[0])) == 1
        assert projected.bid_by_key(key) == instance.bid_by_key(key)
        for other in instance.sellers:
            if other != key[0]:
                assert projected.bids_of(other) == instance.bids_of(other)


class TestCheckersCatchViolations:
    def test_ir_checker_flags_underpayment(self, make_instance):
        instance = make_instance()
        mut = ssam_mut()
        outcome = mut.runner(instance)

        underpaying = dataclasses.replace(
            outcome,
            winners=tuple(
                dataclasses.replace(w, payment=w.bid.price - 1.0)
                for w in outcome.winners
            ),
        )
        checked, violations = check_individual_rationality(
            mut, instance, underpaying, 0, SETTINGS
        )
        assert checked == len(outcome.winners)
        assert len(violations) == len(outcome.winners)

    def test_ir_checker_passes_ssam(self, make_instance):
        instance = make_instance()
        mut = ssam_mut()
        _, violations = check_individual_rationality(
            mut, instance, mut.runner(instance), 0, SETTINGS
        )
        assert violations == []

    def test_feasibility_checker_flags_dropped_winner(self, make_instance):
        instance = make_instance()
        mut = ssam_mut()
        outcome = mut.runner(instance)
        gutted = dataclasses.replace(outcome, winners=outcome.winners[:1])
        _, violations = check_feasibility(mut, instance, gutted, 0, SETTINGS)
        assert len(violations) == 1
        assert "feasible" in violations[0].detail

    def test_monotonicity_checker_flags_price_punishing_allocator(
        self, make_instance
    ):
        instance = make_instance()
        honest = ssam_mut()
        outcome = honest.runner(instance)

        # Rig: a probed winner that lowers its price is kicked out of
        # the allocation — the exact opposite of Lemma 2.
        probed = {w.bid.key for w in outcome.winners[:SETTINGS.max_monotonicity_bids]}

        def spiteful_allocate(edited):
            winners = honest.allocate(edited)
            lowered = {
                bid.key
                for bid in edited.bids
                if bid.key in probed
                and bid.price < instance.bid_by_key(bid.key).price
            }
            return frozenset(winners - lowered)

        rigged = MechanismUnderTest(
            name="rigged", runner=honest.runner, allocate=spiteful_allocate
        )
        checked, violations = check_monotonicity(
            rigged, instance, outcome, 0, SETTINGS
        )
        assert checked > 0
        assert violations

    def test_critical_payment_checker_flags_pay_as_bid(self, make_instance):
        instance = make_instance()
        honest = ssam_mut()
        pay_as_bid = MechanismUnderTest(
            name="pay-as-bid",
            runner=get_mechanism("pay-as-bid"),
            allocate=honest.allocate,  # same greedy allocation
        )
        outcome = pay_as_bid.runner(instance)
        checked, violations = check_critical_payment(
            pay_as_bid, instance, outcome, 0, SETTINGS
        )
        assert checked > 0
        # Winners paid their announced price sit strictly below the
        # runner-up threshold on this market.
        assert violations

    def test_truthfulness_checker_flags_pay_as_bid(self, make_instance):
        instance = make_instance()
        honest = ssam_mut()
        pay_as_bid = MechanismUnderTest(
            name="pay-as-bid",
            runner=get_mechanism("pay-as-bid"),
            allocate=honest.allocate,
        )
        outcome = pay_as_bid.runner(instance)
        checked, violations = check_truthfulness(
            pay_as_bid, instance, outcome, 0, SETTINGS
        )
        assert checked > 0
        assert violations

    def test_truthfulness_checker_passes_ssam(self, make_instance):
        instance = make_instance()
        mut = ssam_mut()
        _, violations = check_truthfulness(
            mut, instance, mut.runner(instance), 0, SETTINGS
        )
        assert violations == []

    def test_approximation_checker_skips_unbounded_mechanisms(
        self, make_instance
    ):
        instance = make_instance()
        mut = MechanismUnderTest(
            name="pay-as-bid",
            runner=get_mechanism("pay-as-bid"),
            allocate=ssam_mut().allocate,
        )
        outcome = mut.runner(instance)  # ratio_bound is nan
        checked, violations = check_approximation(
            mut, instance, outcome, 0, SETTINGS
        )
        assert checked == 0 and violations == []

    def test_approximation_checker_passes_ssam(self, make_instance):
        instance = make_instance()
        mut = ssam_mut()
        checked, violations = check_approximation(
            mut, instance, mut.runner(instance), 0, SETTINGS
        )
        assert checked == 2
        assert violations == []
