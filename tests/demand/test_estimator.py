"""Unit tests for the Section-III demand estimator and indicators."""

import numpy as np
import pytest

from repro.demand.estimator import DemandEstimator, DemandWeights, NoisyOracleEstimator
from repro.demand.indicators import (
    ProcessingRateIndicator,
    RequestRateIndicator,
    WaitingTimeIndicator,
)
from repro.errors import ConfigurationError
from repro.sim.metrics import RoundSnapshot


def snapshot(
    received=10,
    served=10,
    utilization=0.5,
    achieved_rate=1.0,
    target_rate=1.0,
    allocation=1.0,
    round_index=0,
):
    return RoundSnapshot(
        microservice=1,
        round_index=round_index,
        received=received,
        served=served,
        mean_waiting_time=0.1,
        mean_execution_time=0.1,
        utilization=utilization,
        achieved_rate=achieved_rate,
        target_rate=target_rate,
        allocation=allocation,
    )


class TestWaitingTimeIndicator:
    def test_keeping_up_contributes_nothing(self):
        indicator = WaitingTimeIndicator(zeta=2.0)
        assert indicator(snapshot(received=10, served=10)) == 0.0

    def test_backlog_raises_demand(self):
        indicator = WaitingTimeIndicator(zeta=2.0)
        assert indicator(snapshot(received=10, served=5)) == pytest.approx(1.0)

    def test_literal_mode_matches_paper_formula(self):
        indicator = WaitingTimeIndicator(zeta=2.0, literal=True)
        assert indicator(snapshot(received=10, served=5)) == pytest.approx(1.0)
        assert indicator(snapshot(received=10, served=10)) == pytest.approx(2.0)

    def test_negative_zeta_rejected(self):
        with pytest.raises(ConfigurationError):
            WaitingTimeIndicator(zeta=-1.0)


class TestProcessingRateIndicator:
    def test_deficit_contributes(self):
        indicator = ProcessingRateIndicator()
        value = indicator(snapshot(target_rate=3.0, achieved_rate=1.0))
        assert value == pytest.approx(2.0)

    def test_surplus_clamped_to_zero(self):
        indicator = ProcessingRateIndicator()
        assert indicator(snapshot(target_rate=1.0, achieved_rate=3.0)) == 0.0

    def test_time_averaging_shrinks_with_rounds(self):
        indicator = ProcessingRateIndicator()
        early = indicator(snapshot(target_rate=3.0, achieved_rate=1.0, round_index=0))
        late = indicator(snapshot(target_rate=3.0, achieved_rate=1.0, round_index=9))
        assert late == pytest.approx(early / 10)


class TestRequestRateIndicator:
    def test_grows_with_utilization(self):
        indicator = RequestRateIndicator()
        low = indicator(snapshot(utilization=0.2), a_max=1.0)
        high = indicator(snapshot(utilization=0.9), a_max=1.0)
        assert high > low

    def test_saturation_clamped(self):
        indicator = RequestRateIndicator(max_utilization=0.95)
        value = indicator(snapshot(utilization=1.0), a_max=1.0)
        assert np.isfinite(value)

    def test_allocation_share_scales(self):
        indicator = RequestRateIndicator()
        small = indicator(snapshot(allocation=1.0), a_max=10.0)
        large = indicator(snapshot(allocation=10.0), a_max=10.0)
        assert large == pytest.approx(10 * small)

    def test_bad_a_max_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestRateIndicator()(snapshot(), a_max=0.0)

    def test_bad_max_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestRateIndicator(max_utilization=1.0)


class TestDemandWeights:
    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandWeights(waiting=0.0, processing=0.0, request_rate=0.0)

    def test_from_ahp_defaults_consistent(self):
        weights, result = DemandWeights.from_ahp_judgments()
        assert result.is_consistent
        total = weights.waiting + weights.processing + weights.request_rate
        assert total == pytest.approx(1.0)


class TestDemandEstimator:
    def test_idle_microservice_estimates_zero(self):
        estimator = DemandEstimator()
        snap = snapshot(
            received=0, served=0, utilization=0.0,
            achieved_rate=0.0, target_rate=0.0,
        )
        assert estimator.estimate_units(snap, a_max=1.0) == 0

    def test_overloaded_microservice_estimates_positive(self):
        estimator = DemandEstimator()
        snap = snapshot(
            received=20, served=5, utilization=0.99,
            achieved_rate=0.5, target_rate=2.0,
        )
        assert estimator.estimate_units(snap, a_max=1.0) >= 1

    def test_cap_respected(self):
        estimator = DemandEstimator(max_units=3)
        snap = snapshot(
            received=100, served=1, utilization=0.999,
            achieved_rate=0.1, target_rate=10.0,
        )
        assert estimator.estimate_units(snap, a_max=1.0) == 3

    def test_estimate_round_omits_idle(self):
        estimator = DemandEstimator()
        idle = snapshot(
            received=0, served=0, utilization=0.0,
            achieved_rate=0.0, target_rate=0.0,
        )
        busy = RoundSnapshot(
            microservice=2,
            round_index=0,
            received=20,
            served=5,
            mean_waiting_time=1.0,
            mean_execution_time=0.5,
            utilization=0.99,
            achieved_rate=0.5,
            target_rate=2.0,
            allocation=1.0,
        )
        demands = estimator.estimate_round([idle, busy])
        assert 1 not in demands and demands.get(2, 0) >= 1

    def test_empty_round(self):
        assert DemandEstimator().estimate_round([]) == {}

    def test_bad_unit_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandEstimator(unit_size=0.0)


class TestNoisyOracle:
    def test_sigma_zero_is_exact(self):
        estimator = NoisyOracleEstimator(rng=np.random.default_rng(1), sigma=0.0)
        assert estimator.estimate({1: 3, 2: 1}) == {1: 3, 2: 1}

    def test_conservative_never_underestimates(self):
        estimator = NoisyOracleEstimator(
            rng=np.random.default_rng(2), sigma=0.8, conservative=True
        )
        true = {1: 2, 2: 4, 3: 1}
        for _ in range(50):
            estimate = estimator.estimate(true)
            for buyer, units in true.items():
                assert estimate[buyer] >= units

    def test_non_conservative_can_underestimate(self):
        estimator = NoisyOracleEstimator(
            rng=np.random.default_rng(3), sigma=1.0, conservative=False
        )
        saw_lower = any(
            estimator.estimate({1: 5})[1] < 5 for _ in range(100)
        )
        assert saw_lower

    def test_zero_demand_dropped(self):
        estimator = NoisyOracleEstimator(rng=np.random.default_rng(4), sigma=0.1)
        assert estimator.estimate({1: 0}) == {}

    def test_max_units_cap(self):
        estimator = NoisyOracleEstimator(
            rng=np.random.default_rng(5), sigma=2.0, max_units=4
        )
        for _ in range(20):
            assert estimator.estimate({1: 4})[1] <= 4

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            NoisyOracleEstimator(rng=np.random.default_rng(6), sigma=-0.1)


class TestOvershootBound:
    def test_estimates_bounded_by_true_plus_overshoot(self):
        estimator = NoisyOracleEstimator(
            rng=np.random.default_rng(10), sigma=2.0, max_overshoot=2
        )
        true = {1: 3, 2: 1}
        for _ in range(50):
            estimate = estimator.estimate(true)
            for buyer, units in true.items():
                assert units <= estimate[buyer] <= units + 2

    def test_zero_overshoot_is_exact_oracle(self):
        estimator = NoisyOracleEstimator(
            rng=np.random.default_rng(11), sigma=2.0, max_overshoot=0
        )
        assert estimator.estimate({1: 4}) == {1: 4}

    def test_negative_overshoot_rejected(self):
        with pytest.raises(ConfigurationError):
            NoisyOracleEstimator(
                rng=np.random.default_rng(12), max_overshoot=-1
            )
