"""Unit tests for the AHP weight derivation."""

import numpy as np
import pytest

from repro.demand.ahp import ahp_weights, pairwise_matrix_from_judgments
from repro.errors import ConfigurationError


class TestMatrixConstruction:
    def test_reciprocal_filled(self):
        matrix = pairwise_matrix_from_judgments({(0, 1): 3.0}, n=2)
        assert matrix[0, 1] == 3.0
        assert matrix[1, 0] == pytest.approx(1 / 3)
        assert matrix[0, 0] == matrix[1, 1] == 1.0

    def test_missing_pairs_default_equal(self):
        matrix = pairwise_matrix_from_judgments({}, n=3)
        assert np.allclose(matrix, np.ones((3, 3)))

    def test_diagonal_judgment_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_matrix_from_judgments({(1, 1): 2.0}, n=3)

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_matrix_from_judgments({(0, 5): 2.0}, n=3)

    def test_non_positive_judgment_rejected(self):
        with pytest.raises(ConfigurationError):
            pairwise_matrix_from_judgments({(0, 1): 0.0}, n=2)


class TestWeights:
    def test_identity_judgments_give_uniform_weights(self):
        result = ahp_weights(np.ones((3, 3)))
        assert np.allclose(result.weights, 1 / 3)
        assert result.consistency_ratio == pytest.approx(0.0, abs=1e-9)

    def test_weights_normalized_and_positive(self):
        matrix = pairwise_matrix_from_judgments(
            {(0, 1): 3.0, (0, 2): 5.0, (1, 2): 2.0}, n=3
        )
        result = ahp_weights(matrix)
        assert result.weights.sum() == pytest.approx(1.0)
        assert np.all(result.weights > 0)

    def test_dominant_criterion_gets_largest_weight(self):
        matrix = pairwise_matrix_from_judgments(
            {(0, 1): 5.0, (0, 2): 7.0, (1, 2): 2.0}, n=3
        )
        result = ahp_weights(matrix)
        assert np.argmax(result.weights) == 0

    def test_consistent_matrix_has_tiny_cr(self):
        # Perfectly consistent: a_ij = w_i / w_j.
        w = np.array([0.5, 0.3, 0.2])
        matrix = w[:, None] / w[None, :]
        result = ahp_weights(matrix)
        assert result.consistency_ratio < 1e-8
        assert result.is_consistent
        assert np.allclose(result.weights, w, atol=1e-8)

    def test_wildly_inconsistent_matrix_flagged(self):
        # A beats B, B beats C, C beats A — a preference cycle.
        matrix = pairwise_matrix_from_judgments(
            {(0, 1): 9.0, (1, 2): 9.0, (0, 2): 1 / 9.0}, n=3
        )
        result = ahp_weights(matrix)
        assert not result.is_consistent

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            ahp_weights(np.ones((2, 3)))

    def test_non_reciprocal_rejected(self):
        matrix = np.array([[1.0, 2.0], [3.0, 1.0]])
        with pytest.raises(ConfigurationError):
            ahp_weights(matrix)

    def test_non_positive_entries_rejected(self):
        matrix = np.array([[1.0, -2.0], [-0.5, 1.0]])
        with pytest.raises(ConfigurationError):
            ahp_weights(matrix)
