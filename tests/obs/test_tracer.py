"""Unit tests for the JSONL tracer and the trace reader."""

import json

import pytest

from repro.errors import ConfigurationError, ObservabilityError
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Tracer,
    iter_spans,
    read_trace,
)


def _write_trace(path, build):
    tracer = Tracer(path)
    build(tracer)
    tracer.close()
    return read_trace(path)


class TestWriting:
    def test_header_and_footer_frame_the_stream(self, tmp_path):
        records = _write_trace(tmp_path / "t.jsonl", lambda t: None)
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[0]["version"] == TRACE_SCHEMA_VERSION
        assert records[-1]["kind"] == "footer"

    def test_sequence_numbers_are_strictly_increasing(self, tmp_path):
        def build(tracer):
            with tracer.span("outer"):
                tracer.event("tick")
                with tracer.span("inner"):
                    tracer.event("tock")

        records = _write_trace(tmp_path / "t.jsonl", build)
        seqs = [r["seq"] for r in records if "seq" in r]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

    def test_spans_nest_through_parent_pointers(self, tmp_path):
        def build(tracer):
            with tracer.span("auction"):
                with tracer.span("greedy-selection"):
                    pass
                with tracer.span("payment-computation"):
                    pass

        records = _write_trace(tmp_path / "t.jsonl", build)
        starts = list(iter_spans(records))
        assert [s["name"] for s in starts] == [
            "auction", "greedy-selection", "payment-computation",
        ]
        auction_id = starts[0]["id"]
        assert starts[0]["parent"] == 0
        assert starts[1]["parent"] == auction_id
        assert starts[2]["parent"] == auction_id

    def test_events_attach_to_innermost_open_span(self, tmp_path):
        def build(tracer):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    tracer.event("deep")
                tracer.event("shallow")

        records = _write_trace(tmp_path / "t.jsonl", build)
        events = {r["name"]: r for r in records if r["kind"] == "event"}
        starts = {s["name"]: s["id"] for s in iter_spans(records)}
        assert events["deep"]["span"] == starts["inner"]
        assert events["shallow"]["span"] == starts["outer"]

    def test_exception_closes_span_with_error_status(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        ends = [r for r in read_trace(path) if r["kind"] == "span_end"]
        assert ends[0]["status"] == "error"

    def test_annotate_lands_on_span_end(self, tmp_path):
        def build(tracer):
            with tracer.span("auction") as span:
                tracer.annotate(span, social_cost=12.5)

        records = _write_trace(tmp_path / "t.jsonl", build)
        end = next(r for r in records if r["kind"] == "span_end")
        assert end["fields"]["social_cost"] == 12.5

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()
        footers = [
            r
            for r in read_trace(tmp_path / "t.jsonl")
            if r["kind"] == "footer"
        ]
        assert len(footers) == 1

    def test_unopenable_path_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot open trace"):
            Tracer(tmp_path / "missing-dir" / "t.jsonl")


class TestReading:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read trace"):
            read_trace(tmp_path / "absent.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="empty trace"):
            read_trace(path)

    def test_malformed_json_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(ObservabilityError, match=":2:"):
            read_trace(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"kind": "header", "schema": "other"}) + "\n")
        with pytest.raises(ObservabilityError, match="header"):
            read_trace(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "schema": TRACE_SCHEMA, "version": 999}
            )
            + "\n"
        )
        with pytest.raises(ObservabilityError, match="version"):
            read_trace(path)


class TestNullTracer:
    def test_null_tracer_is_inert_and_reentrant(self):
        with NULL_TRACER.span("a") as outer:
            with NULL_TRACER.span("b") as inner:
                NULL_TRACER.event("tick")
                NULL_TRACER.annotate(inner, x=1)
        assert outer.span_id == 0
        NULL_TRACER.close()
        assert NULL_TRACER.enabled is False
