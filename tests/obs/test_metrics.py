"""Unit tests for the metrics registry and its exporters."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    NULL_METRICS,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("bids").inc()
        registry.counter("bids").inc(4)
        assert registry.counter("bids").value == 5.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            registry.counter("bids").inc(-1)

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("psi").set(3.5)
        registry.gauge("psi").set(1.25)
        assert registry.gauge("psi").value == 1.25

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.histogram("ratio").observe(value)
        hist = registry.histogram("ratio")
        assert hist.count == 3
        assert hist.total == 15.0
        assert hist.min == 2.0
        assert hist.max == 8.0
        assert hist.mean == 5.0

    def test_empty_histogram_mean_is_nan(self):
        assert math.isnan(MetricsRegistry().histogram("x").mean)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_observe_phase_uses_naming_convention(self):
        registry = MetricsRegistry()
        registry.observe_phase("ssam.selection", 0.25)
        assert registry.histogram("phase.ssam.selection.seconds").count == 1


class TestExporters:
    def test_to_dict_is_versioned_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.gauge("level").set(2.0)
        registry.histogram("t").observe(0.5)
        payload = json.loads(registry.to_json())
        assert payload["schema"] == "repro.obs.metrics"
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert payload["counters"]["runs"] == 1.0
        assert payload["histograms"]["t"]["count"] == 1

    def test_empty_histogram_exports_null_extrema(self):
        registry = MetricsRegistry()
        registry.histogram("t")
        payload = registry.to_dict()
        assert payload["histograms"]["t"]["min"] is None
        assert payload["histograms"]["t"]["max"] is None

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("ssam.runs").inc(2)
        registry.gauge("msoa.psi-max").set(0.5)
        registry.histogram("phase.selection.seconds").observe(0.125)
        text = registry.to_prometheus()
        assert "# TYPE repro_ssam_runs counter" in text
        assert "repro_ssam_runs 2.0" in text
        # Dots and dashes are sanitized to underscores.
        assert "repro_msoa_psi_max 0.5" in text
        assert "repro_phase_selection_seconds_count 1" in text
        assert "repro_phase_selection_seconds_sum 0.125" in text

    def test_write_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        target = registry.write_json(tmp_path / "metrics.json")
        assert json.loads(target.read_text())["counters"]["runs"] == 1.0

    def test_write_json_unwritable_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot write metrics"):
            MetricsRegistry().write_json(tmp_path / "no-dir" / "m.json")


class TestNullRegistry:
    def test_null_instruments_are_inert(self):
        NULL_METRICS.counter("x").inc(10)
        NULL_METRICS.gauge("x").set(3)
        NULL_METRICS.histogram("x").observe(1)
        NULL_METRICS.observe_phase("p", 1.0)
        assert NULL_METRICS.counter("x").value == 0.0
        assert NULL_METRICS.to_dict()["counters"] == {}

    def test_null_registry_flagged_disabled(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True
