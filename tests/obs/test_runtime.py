"""Tests for the process-wide observability switch and @profiled hooks."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    ObservabilityConfig,
    activate,
    configure,
    disable,
    get_metrics,
    get_tracer,
    is_enabled,
    observing,
    profiled,
    summarize,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.runtime import STATE
from repro.obs.tracer import NULL_TRACER


class TestSwitch:
    def test_disabled_is_the_default(self):
        assert is_enabled() is False
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS

    def test_configure_installs_live_instruments(self, tmp_path):
        config = configure(trace=tmp_path / "t.jsonl")
        assert is_enabled() is True
        assert config.trace_path == str(tmp_path / "t.jsonl")
        assert isinstance(get_metrics(), MetricsRegistry)
        disable()
        assert is_enabled() is False

    def test_metrics_only_session_never_touches_disk(self, tmp_path):
        configure()
        get_metrics().counter("x").inc()
        registry = disable()
        assert registry.counter("x").value == 1.0
        assert list(tmp_path.iterdir()) == []

    def test_disable_writes_metrics_snapshot(self, tmp_path):
        target = tmp_path / "metrics.json"
        configure(metrics=target)
        get_metrics().counter("runs").inc(3)
        disable()
        assert json.loads(target.read_text())["counters"]["runs"] == 3.0

    def test_disable_when_disabled_is_a_noop(self):
        assert disable() is None

    def test_reconfigure_finalizes_prior_session(self, tmp_path):
        first = tmp_path / "first.jsonl"
        configure(trace=first)
        configure(trace=tmp_path / "second.jsonl")
        # The first trace was closed (footer written) before the second
        # session opened.
        assert not summarize(first).truncated
        disable()

    def test_observing_restores_state_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with observing(trace=tmp_path / "t.jsonl"):
                raise RuntimeError("boom")
        assert is_enabled() is False


class TestActivate:
    def test_activate_none_is_a_noop(self):
        activate(None)
        assert is_enabled() is False

    def test_activate_applies_config(self, tmp_path):
        activate(ObservabilityConfig(trace_path=str(tmp_path / "t.jsonl")))
        assert is_enabled() is True
        disable()

    def test_activate_is_idempotent_for_equal_config(self, tmp_path):
        config = ObservabilityConfig(trace_path=str(tmp_path / "t.jsonl"))
        activate(config)
        get_metrics().counter("kept").inc()
        tracer = get_tracer()
        activate(ObservabilityConfig(trace_path=str(tmp_path / "t.jsonl")))
        # Same config: the session (tracer and counters) is untouched.
        assert get_tracer() is tracer
        assert get_metrics().counter("kept").value == 1.0
        disable()


class TestProfiled:
    def test_disabled_profiled_function_records_nothing(self):
        @profiled("unit.phase")
        def work():
            return 42

        assert work() == 42
        assert NULL_METRICS.histogram("phase.unit.phase.seconds").count == 0

    def test_enabled_profiled_function_times_calls(self):
        @profiled("unit.phase")
        def work():
            return 42

        with observing() as metrics:
            work()
            work()
        assert metrics.counter("phase.unit.phase.calls").value == 2.0
        hist = metrics.histogram("phase.unit.phase.seconds")
        assert hist.count == 2
        assert hist.min >= 0.0

    def test_profiled_records_timing_on_exception(self):
        @profiled("unit.crash")
        def crash():
            raise ValueError("boom")

        with observing() as metrics:
            with pytest.raises(ValueError):
                crash()
        assert metrics.histogram("phase.unit.crash.seconds").count == 1

    def test_profiled_preserves_metadata(self):
        @profiled("unit.phase")
        def documented():
            """Docstring survives wrapping."""

        assert documented.__name__ == "documented"
        assert documented.__profiled_phase__ == "unit.phase"


class TestSummarizeValidation:
    def test_non_monotone_seq_is_rejected(self):
        records = [
            {"kind": "header", "schema": "repro.obs.trace", "version": 1},
            {"kind": "span_start", "seq": 2, "id": 1, "parent": 0,
             "name": "auction", "fields": {}},
            {"kind": "span_end", "seq": 1, "id": 1, "name": "auction",
             "status": "ok", "duration_s": 0.0, "fields": {}},
        ]
        with pytest.raises(ObservabilityError, match="must increase"):
            summarize(records)

    def test_improper_nesting_is_rejected(self):
        records = [
            {"kind": "header", "schema": "repro.obs.trace", "version": 1},
            {"kind": "span_start", "seq": 1, "id": 1, "parent": 0,
             "name": "a", "fields": {}},
            {"kind": "span_start", "seq": 2, "id": 2, "parent": 1,
             "name": "b", "fields": {}},
            {"kind": "span_end", "seq": 3, "id": 1, "name": "a",
             "status": "ok", "duration_s": 0.0, "fields": {}},
        ]
        with pytest.raises(ObservabilityError, match="nesting"):
            summarize(records)

    def test_recorded_summary_must_match_reconstruction(self):
        records = [
            {"kind": "header", "schema": "repro.obs.trace", "version": 1},
            {"kind": "span_start", "seq": 1, "id": 1, "parent": 0,
             "name": "auction",
             "fields": {"mechanism": "ssam", "demand": {"1": 1}}},
            {"kind": "event", "seq": 2, "span": 1, "name": "winner",
             "fields": {"original_price": 3.0, "payment": 4.0,
                        "covered": [1]}},
            {"kind": "span_end", "seq": 3, "id": 1, "name": "auction",
             "status": "ok", "duration_s": 0.0,
             "fields": {"social_cost": 99.0}},
            {"kind": "footer", "seq": 4, "spans": 1},
        ]
        with pytest.raises(ObservabilityError, match="disagrees"):
            summarize(records)

    def test_truncated_trace_is_flagged_not_fatal(self):
        records = [
            {"kind": "header", "schema": "repro.obs.trace", "version": 1},
            {"kind": "span_start", "seq": 1, "id": 1, "parent": 0,
             "name": "auction", "fields": {}},
        ]
        assert summarize(records).truncated is True

    def test_state_singleton_identity(self):
        # Hot paths read this exact object; rebinding it would silently
        # disconnect the instrumentation.
        from repro.core.engine import _OBS as engine_state
        from repro.core.msoa import _OBS as msoa_state
        from repro.core.ssam import _OBS as ssam_state

        assert engine_state is STATE
        assert msoa_state is STATE
        assert ssam_state is STATE
