"""Observability tests always start from — and restore — the disabled
default, so a failing test can never leak an enabled tracer into the rest
of the suite (which asserts bit-identical untraced behaviour)."""

import pytest

from repro.obs.runtime import _reset_for_tests


@pytest.fixture(autouse=True)
def _observability_reset():
    _reset_for_tests()
    yield
    _reset_for_tests()
