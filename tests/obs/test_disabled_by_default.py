"""Guard: observability is fully disabled unless explicitly configured.

The acceptance contract for the whole subsystem is that the default
execution path is untouched — no files, no live instruments, bit-identical
mechanism outputs.  These tests pin that contract so a stray module-level
``configure()`` (or a test leaking an enabled session) fails loudly.
"""

from repro.core.ssam import run_ssam
from repro.obs import get_metrics, get_tracer, is_enabled
from repro.obs.metrics import NULL_METRICS
from repro.obs.runtime import STATE
from repro.obs.tracer import NULL_TRACER


class TestDisabledDefault:
    def test_state_defaults_to_disabled(self):
        assert STATE.enabled is False
        assert STATE.config is None
        assert is_enabled() is False

    def test_null_objects_installed_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS

    def test_untraced_run_writes_no_files(
        self, tmp_path, make_instance, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        run_ssam(make_instance(seed=7))
        assert list(tmp_path.iterdir()) == []

    def test_untraced_run_records_no_metrics(self, make_instance):
        run_ssam(make_instance(seed=7))
        assert get_metrics().counter("ssam.runs").value == 0.0
        assert get_metrics().to_dict()["counters"] == {}

    def test_importing_obs_does_not_enable(self):
        import repro.obs  # noqa: F401
        import repro.api  # noqa: F401

        assert STATE.enabled is False
