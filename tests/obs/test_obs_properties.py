"""Property-based invariants of the observability layer.

On random feasible instances, with tracing and metrics enabled:

* counter totals agree with the outcome object (bids considered ≥
  winners; dual updates = total marginal utility; iterations match),
* every profiled phase timing is non-negative,
* :func:`summarize` reconstructs the social cost bit-for-bit,
* and — the non-negotiable — tracing never changes the allocation or
  the payments relative to an untraced run.
"""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.ssam import run_ssam
from repro.obs import observing, summarize
from repro.obs.runtime import _reset_for_tests

from tests.properties.strategies import wsp_instances

pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@COMMON
@given(instance=wsp_instances())
def test_metric_totals_match_outcome(instance):
    with observing() as metrics:
        outcome = run_ssam(instance)
    assert metrics.counter("ssam.bids_considered").value == len(instance.bids)
    assert metrics.counter("ssam.winners").value == len(outcome.winners)
    assert metrics.counter("ssam.bids_considered").value >= metrics.counter(
        "ssam.winners"
    ).value
    assert metrics.counter("ssam.iterations").value == outcome.iterations
    assert metrics.counter("ssam.dual_updates").value == sum(
        w.marginal_utility for w in outcome.winners
    )


@COMMON
@given(instance=wsp_instances())
def test_phase_timings_are_non_negative(instance):
    with observing() as metrics:
        run_ssam(instance)
    for phase in ("ssam.selection", "ssam.payments"):
        hist = metrics.histogram(f"phase.{phase}.seconds")
        assert hist.count >= 1
        assert hist.min >= 0.0
        assert metrics.counter(f"phase.{phase}.calls").value == hist.count


@COMMON
@given(instance=wsp_instances())
def test_summarize_reconstructs_random_instances(instance):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        with observing(trace=path):
            outcome = run_ssam(instance)
        summary = summarize(path)
        assert summary.social_cost == outcome.social_cost
        assert summary.total_payment == outcome.total_payment
        assert summary.auctions[0].coverage == outcome.coverage


@COMMON
@given(instance=wsp_instances())
def test_tracing_is_behaviour_preserving(instance):
    # @given bypasses the module's autouse reset fixture between examples,
    # so restore the disabled default explicitly on both sides.
    _reset_for_tests()
    untraced = run_ssam(instance)
    with tempfile.TemporaryDirectory() as tmp:
        with observing(trace=os.path.join(tmp, "t.jsonl")):
            traced = run_ssam(instance)
    _reset_for_tests()
    assert [w.bid.key for w in traced.winners] == [
        w.bid.key for w in untraced.winners
    ]
    assert [w.payment for w in traced.winners] == [
        w.payment for w in untraced.winners
    ]
    assert traced.social_cost == untraced.social_cost
    assert traced.duals.to_dict() == untraced.duals.to_dict()
