"""Bounded trace modes: top-level sampling and segment rolling.

Long-lived serving (``repro.dist``) must not grow the trace without
bound; these suites pin the two opt-in modes of
:class:`repro.obs.tracer.Tracer` — ``sample_every`` keeps every k-th
top-level span tree whole, ``max_records`` rolls the file into
self-contained segments — and that both stay readable by
:func:`read_trace` and :func:`repro.obs.summary.summarize`.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.summary import summarize
from repro.obs.tracer import Tracer, read_trace


def _write_trees(tracer, n, events_per_tree=1):
    for i in range(n):
        with tracer.span("tree", index=i) as outer:
            tracer.annotate(outer, index=i)
            for _ in range(events_per_tree):
                tracer.event("tick", index=i)
            with tracer.span("inner", index=i):
                pass


class TestSampledMode:
    def test_keeps_every_kth_toplevel_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, sample_every=3)
        _write_trees(tracer, 9)
        tracer.close()
        records = read_trace(path)
        kept = [
            r["fields"]["index"]
            for r in records
            if r.get("kind") == "span_start" and r.get("name") == "tree"
        ]
        assert kept == [0, 3, 6]

    def test_kept_trees_are_complete(self, tmp_path):
        """Sampling decides per tree: nested spans and events come along."""
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, sample_every=2)
        _write_trees(tracer, 4, events_per_tree=2)
        tracer.close()
        records = read_trace(path)
        inner = [
            r for r in records
            if r.get("kind") == "span_start" and r.get("name") == "inner"
        ]
        events = [r for r in records if r.get("kind") == "event"]
        assert len(inner) == 2
        assert len(events) == 4
        assert {r["fields"]["index"] for r in events} == {0, 2}

    def test_sequence_stays_gap_free_and_summarizable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, sample_every=3)
        _write_trees(tracer, 9)
        tracer.close()
        records = read_trace(path)
        seqs = [r["seq"] for r in records if "seq" in r]
        assert seqs == list(range(1, len(seqs) + 1))
        summarize(records)  # must not raise

    def test_sample_every_one_keeps_everything(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, sample_every=1)
        _write_trees(tracer, 5)
        tracer.close()
        starts = [
            r for r in read_trace(path)
            if r.get("kind") == "span_start" and r.get("name") == "tree"
        ]
        assert len(starts) == 5


class TestRollingMode:
    def test_rolls_into_bounded_standalone_segments(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, max_records=12)
        _write_trees(tracer, 20)
        tracer.close()
        rolled = path.with_name(path.name + ".1")
        assert rolled.exists()
        current = read_trace(path)
        previous = read_trace(rolled)
        # the rolled segment closes with a marked footer; the live one
        # closes with the ordinary final footer
        assert previous[-1]["kind"] == "footer"
        assert previous[-1].get("rolled") is True
        assert current[-1]["kind"] == "footer"
        assert "rolled" not in current[-1]
        assert current[0].get("segment", 0) > 0
        summarize(current)
        summarize(previous)

    def test_rotation_only_happens_between_trees(self, tmp_path):
        """A segment never splits a span tree: every start has its end."""
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, max_records=10)
        _write_trees(tracer, 25)
        tracer.close()
        for segment in (path, path.with_name(path.name + ".1")):
            records = read_trace(segment)
            starts = [r["id"] for r in records if r["kind"] == "span_start"]
            ends = [r["id"] for r in records if r["kind"] == "span_end"]
            assert sorted(starts) == sorted(ends)

    def test_disk_usage_is_bounded_by_two_segments(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, max_records=12)
        _write_trees(tracer, 200)
        tracer.close()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["trace.jsonl", "trace.jsonl.1"]
        # each segment holds one tree past the cap at most (footer+header
        # bookkeeping aside), not the whole run
        assert len(read_trace(path)) < 30
        assert len(read_trace(path.with_name(path.name + ".1"))) < 30

    def test_modes_compose(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, max_records=12, sample_every=2)
        _write_trees(tracer, 40)
        tracer.close()
        records = read_trace(path)
        kept = [
            r["fields"]["index"]
            for r in records
            if r.get("kind") == "span_start" and r.get("name") == "tree"
        ]
        assert kept  # some trees survived both bounds
        assert all(index % 2 == 0 for index in kept)


class TestValidation:
    def test_max_records_must_be_at_least_two(self, tmp_path):
        with pytest.raises(ConfigurationError, match="max_records"):
            Tracer(tmp_path / "t.jsonl", max_records=1)

    def test_sample_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="sample_every"):
            Tracer(tmp_path / "t.jsonl", sample_every=0)

    def test_unbounded_default_is_unchanged(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        _write_trees(tracer, 30)
        tracer.close()
        assert not path.with_name(path.name + ".1").exists()
        starts = [
            r for r in read_trace(path)
            if r.get("kind") == "span_start" and r.get("name") == "tree"
        ]
        assert len(starts) == 30


class TestRuntimeWiring:
    def test_observing_forwards_bounded_options(self, tmp_path):
        from repro.obs.runtime import observing

        path = tmp_path / "trace.jsonl"
        with observing(trace=path, trace_sample_every=2):
            from repro.obs.runtime import get_tracer

            tracer = get_tracer()
            assert tracer.sample_every == 2
            _write_trees(tracer, 4)
        kept = [
            r["fields"]["index"]
            for r in read_trace(path)
            if r.get("kind") == "span_start" and r.get("name") == "tree"
        ]
        assert kept == [0, 2]
