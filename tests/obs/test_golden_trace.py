"""Golden-trace regression tests.

Seeded SSAM and MSOA runs are traced and the trace is held to the
schema contract: versioned header, strictly increasing sequence numbers,
properly nested spans, monotone round indices — and, the load-bearing
property, :func:`repro.obs.summarize` reconstructs the run's social cost
*bit-for-bit* from the trace alone, for both selection engines.  Tracing
must also never perturb the auction itself: a traced run's winners and
payments equal the untraced run's exactly.
"""

import pytest

from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule, run_ssam
from repro.obs import observing, read_trace, summarize
from repro.obs.tracer import TRACE_SCHEMA, TRACE_SCHEMA_VERSION, iter_spans
from repro.workload.bidgen import generate_horizon

ENGINES = ("fast", "reference")


def _trace_ssam(tmp_path, instance, engine, **options):
    path = tmp_path / f"ssam-{engine}.jsonl"
    with observing(trace=path):
        outcome = run_ssam(instance, engine=engine, **options)
    return path, outcome


class TestTraceSchema:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_header_is_versioned(self, tmp_path, make_instance, engine):
        path, _ = _trace_ssam(tmp_path, make_instance(seed=7), engine)
        header = read_trace(path)[0]
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_SCHEMA_VERSION
        assert summarize(path).schema_version == TRACE_SCHEMA_VERSION

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sequence_is_strictly_monotone(
        self, tmp_path, make_instance, engine
    ):
        path, _ = _trace_ssam(tmp_path, make_instance(seed=7), engine)
        seqs = [r["seq"] for r in read_trace(path) if "seq" in r]
        assert all(a < b for a, b in zip(seqs, seqs[1:]))

    def test_auction_phases_are_nested_spans(self, tmp_path, make_instance):
        path, _ = _trace_ssam(tmp_path, make_instance(seed=7), "fast")
        starts = {s["name"]: s for s in iter_spans(read_trace(path))}
        auction = starts["auction"]
        assert auction["parent"] == 0
        assert starts["greedy-selection"]["parent"] == auction["id"]
        assert starts["payment-computation"]["parent"] == auction["id"]
        # The fast engine's indexing phase nests under the selection span.
        assert starts["bid-indexing"]["parent"] == starts["greedy-selection"]["id"]

    def test_trace_is_complete_not_truncated(self, tmp_path, make_instance):
        path, _ = _trace_ssam(tmp_path, make_instance(seed=7), "fast")
        assert summarize(path).truncated is False


class TestGoldenSsam:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", (7, 23))
    def test_summarize_reconstructs_social_cost_bit_for_bit(
        self, tmp_path, make_instance, engine, seed
    ):
        instance = make_instance(seed=seed)
        path, outcome = _trace_ssam(tmp_path, instance, engine)
        summary = summarize(path)
        assert summary.social_cost == outcome.social_cost  # bit-for-bit
        assert summary.total_payment == outcome.total_payment

    @pytest.mark.parametrize("engine", ENGINES)
    def test_summarize_reconstructs_coverage(
        self, tmp_path, make_instance, engine
    ):
        instance = make_instance(seed=7)
        path, outcome = _trace_ssam(tmp_path, instance, engine)
        auction = summarize(path).auctions[0]
        assert auction.coverage == outcome.coverage
        assert auction.satisfied == outcome.satisfied
        assert auction.demand == {
            b: u for b, u in instance.demand.items() if u > 0
        }

    @pytest.mark.parametrize("engine", ENGINES)
    def test_winner_events_match_outcome_order(
        self, tmp_path, make_instance, engine
    ):
        path, outcome = _trace_ssam(tmp_path, make_instance(seed=7), engine)
        auction = summarize(path).auctions[0]
        assert [
            (w["seller"], w["index"]) for w in auction.winners
        ] == [w.bid.key for w in outcome.winners]
        assert [w["payment"] for w in auction.winners] == [
            w.payment for w in outcome.winners
        ]

    def test_runner_up_rule_traces_identically(self, tmp_path, make_instance):
        path, outcome = _trace_ssam(
            tmp_path,
            make_instance(seed=7),
            "fast",
            payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        )
        summary = summarize(path)
        assert summary.social_cost == outcome.social_cost
        assert summary.total_payment == outcome.total_payment

    @pytest.mark.parametrize("engine", ENGINES)
    def test_tracing_never_changes_the_outcome(
        self, tmp_path, make_instance, engine
    ):
        instance = make_instance(seed=7)
        untraced = run_ssam(instance, engine=engine)
        _, traced = _trace_ssam(tmp_path, instance, engine)
        assert [w.bid.key for w in traced.winners] == [
            w.bid.key for w in untraced.winners
        ]
        assert [w.payment for w in traced.winners] == [
            w.payment for w in untraced.winners
        ]
        assert traced.social_cost == untraced.social_cost


class TestGoldenMsoa:
    @pytest.fixture
    def horizon(self, make_rng, make_market):
        return generate_horizon(make_market(), make_rng(11), rounds=4)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_summarize_reconstructs_online_social_cost(
        self, tmp_path, horizon, engine
    ):
        rounds, capacities = horizon
        path = tmp_path / "msoa.jsonl"
        with observing(trace=path):
            outcome = run_msoa(
                rounds, capacities, engine=engine, on_infeasible="best_effort"
            )
        summary = summarize(path)
        assert summary.social_cost == outcome.social_cost  # bit-for-bit
        assert summary.total_payment == outcome.total_payment
        assert [r.social_cost for r in summary.rounds] == [
            r.social_cost for r in outcome.rounds
        ]

    def test_round_indices_are_monotone(self, tmp_path, horizon):
        rounds, capacities = horizon
        path = tmp_path / "msoa.jsonl"
        with observing(trace=path):
            run_msoa(rounds, capacities, on_infeasible="best_effort")
        indices = [r.round_index for r in summarize(path).rounds]
        assert indices == list(range(len(rounds)))

    def test_msoa_events_present(self, tmp_path, horizon):
        rounds, capacities = horizon
        path = tmp_path / "msoa.jsonl"
        with observing(trace=path):
            run_msoa(rounds, capacities, on_infeasible="best_effort")
        names = {
            r["name"] for r in read_trace(path) if r["kind"] == "event"
        }
        assert "price-scaling" in names
        assert "psi-update" in names

    def test_tracing_never_changes_online_outcome(self, tmp_path, horizon):
        rounds, capacities = horizon
        untraced = run_msoa(rounds, capacities, on_infeasible="best_effort")
        with observing(trace=tmp_path / "msoa.jsonl"):
            traced = run_msoa(rounds, capacities, on_infeasible="best_effort")
        assert traced.social_cost == untraced.social_cost
        assert traced.total_payment == untraced.total_payment
        for t_round, u_round in zip(traced.rounds, untraced.rounds):
            assert [w.bid.key for w in t_round.outcome.winners] == [
                w.bid.key for w in u_round.outcome.winners
            ]
