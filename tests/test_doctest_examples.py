"""The documented examples must run: doctests on the public surface.

The API facade, the mechanism entry points, and the fault-plan module all
carry executable examples in their docstrings (they double as the docs'
quickstart snippets); this test keeps them honest.  CI runs it as part of
tier 1, so a signature change that breaks a documented example fails the
build, not the reader.
"""

import doctest

import pytest

import repro.api
import repro.core.msoa
import repro.core.ssam
import repro.faults.models

DOCUMENTED_MODULES = [
    repro.api,
    repro.core.ssam,
    repro.core.msoa,
    repro.faults.models,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_docstring_examples_execute(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its examples"
    assert result.failed == 0
