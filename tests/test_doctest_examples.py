"""The documented examples must run: doctests on the public surface.

The API facade, the mechanism entry points, and the fault-plan module all
carry executable examples in their docstrings (they double as the docs'
quickstart snippets); this test keeps them honest.  CI runs it as part of
tier 1, so a signature change that breaks a documented example fails the
build, not the reader.
"""

import doctest
import importlib.util
import pathlib

import pytest

import repro.api
import repro.core.msoa
import repro.core.ssam
import repro.faults.models

DOCUMENTED_MODULES = [
    repro.api,
    repro.core.ssam,
    repro.core.msoa,
    repro.faults.models,
]

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def load_example(name):
    """Import ``examples/<name>.py`` without running its ``main()``."""
    spec = importlib.util.spec_from_file_location(
        name, EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_docstring_examples_execute(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its examples"
    assert result.failed == 0


def test_distributed_serving_example_doctest():
    """The serving walkthrough in examples/ carries a checked example
    too — the in-memory serve + determinism assertion from its module
    docstring must keep running as written."""
    module = load_example("distributed_serving")
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, "distributed_serving lost its examples"
    assert result.failed == 0
