"""The resilience machinery end to end: bit-identity guards, the golden
seller-default recovery trajectory, graceful degradation, and serde.

The two invariants the subsystem pins (see ``repro.faults``):

1. A ``None``/null plan changes *nothing* — outcomes are bit-identical
   to the unfaulted run on both engines and for the adapter-wrapped
   baselines.  (JSON-string comparison, because the adapters report
   ``alpha = NaN`` and ``NaN != NaN`` under dict equality.)
2. A faulted run is a pure function of (market, plan, policy): the same
   plan replays the identical fault trajectory.
"""

import json

import pytest

from repro.core.msoa import run_msoa
from repro.core.outcomes import OnlineOutcome
from repro.core.registry import make_online
from repro.errors import InfeasibleInstanceError
from repro.faults import (
    FaultPlan,
    ResiliencePolicy,
    SellerDefault,
)
from repro.obs import observing, read_trace


def as_json(outcome):
    return json.dumps(outcome.to_dict(), sort_keys=True)


def run_adapter(name, horizon, capacities, **kwargs):
    mechanism = make_online(
        name, capacities, on_infeasible="skip", **kwargs
    )
    for instance in horizon:
        mechanism.process_round(instance)
    return mechanism.finalize()


NULL_PLANS = [
    None,
    FaultPlan(),
    FaultPlan(seed=123, seller_defaults=(SellerDefault(probability=0.0),)),
]


class TestNullPlanBitIdentity:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_msoa_unchanged_on_both_engines(self, make_horizon, engine):
        horizon, capacities = make_horizon(11, rounds=3)
        reference = run_msoa(horizon, capacities, engine=engine)
        for plan in NULL_PLANS:
            faulted = run_msoa(
                horizon, capacities, engine=engine, faults=plan
            )
            assert as_json(faulted) == as_json(reference)

    @pytest.mark.parametrize("name", ["pay-as-bid", "greedy-density"])
    def test_adapters_unchanged(self, make_horizon, name):
        horizon, capacities = make_horizon(11, rounds=3)
        reference = run_adapter(name, horizon, capacities)
        for plan in NULL_PLANS:
            faulted = run_adapter(name, horizon, capacities, faults=plan)
            assert as_json(faulted) == as_json(reference)

    def test_null_plan_report_is_absent(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=3)
        outcome = run_msoa(horizon, capacities, faults=FaultPlan())
        assert all(r.resilience is None for r in outcome.rounds)
        assert outcome.fault_events == 0
        assert outcome.degraded_rounds == []


class TestGoldenRecovery:
    """A scripted default on round 1 must be re-covered by a retry."""

    @pytest.fixture
    def scenario(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=3)
        clean = run_msoa(horizon, capacities)
        victim = clean.rounds[1].outcome.winners[0].bid.seller
        plan = FaultPlan(
            seed=5,
            seller_defaults=(SellerDefault(scripted=((1, victim),)),),
        )
        return horizon, capacities, clean, victim, plan

    def test_retry_recovers_the_default(self, scenario):
        horizon, capacities, clean, victim, plan = scenario
        outcome = run_msoa(horizon, capacities, faults=plan)
        report = outcome.rounds[1].resilience
        assert report is not None
        # The injected fault is visible and attributed.
        assert [e.kind for e in report.events] == ["seller-default"]
        assert report.events[0].seller == victim
        assert report.events[0].detail["scripted"] == 1.0
        assert report.defaulted_sellers == frozenset({victim})
        # The retry re-auction recovered everything the default dropped.
        assert len(report.recoveries) >= 1
        assert report.recoveries[0].attempt == 1
        assert report.recovered_units > 0
        assert report.abandoned_units == 0
        assert not report.degraded
        assert outcome.rounds[1].outcome.satisfied
        # The defaulted seller delivers nothing in round 1.
        assert victim not in outcome.rounds[1].outcome.winning_sellers
        # Replacement coverage costs at least the first-choice coverage.
        assert outcome.social_cost >= clean.social_cost - 1e-9
        # Untouched rounds carry no resilience report.
        assert outcome.rounds[0].resilience is None
        assert outcome.rounds[2].resilience is None

    def test_trajectory_replays_bit_identically(self, scenario):
        horizon, capacities, _, _, plan = scenario
        first = run_msoa(horizon, capacities, faults=plan)
        second = run_msoa(horizon, capacities, faults=plan)
        assert as_json(first) == as_json(second)

    def test_recovery_visible_in_obs_trace(self, scenario, tmp_path):
        horizon, capacities, _, victim, plan = scenario
        path = tmp_path / "faults.jsonl"
        with observing(trace=path):
            run_msoa(horizon, capacities, faults=plan)
        events = [r for r in read_trace(path) if r["kind"] == "event"]
        names = [e["name"] for e in events]
        assert "fault-injected" in names
        assert "recovery-attempt" in names
        injected = next(e for e in events if e["name"] == "fault-injected")
        assert injected["fields"]["seller"] == victim
        assert injected["fields"]["kind"] == "seller-default"


class TestGracefulDegradation:
    def test_total_default_yields_partial_outcome(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=2)
        plan = FaultPlan(
            seed=5, seller_defaults=(SellerDefault(probability=1.0),)
        )
        outcome = run_msoa(horizon, capacities, faults=plan)
        assert isinstance(outcome, OnlineOutcome)
        for round_result in outcome.rounds:
            report = round_result.resilience
            assert report is not None and report.degraded
            # Every winner of every attempt defaulted: the uncovered set
            # is the whole demand, spelled out instead of raised.
            assert dict(report.uncovered) == dict(
                round_result.outcome.instance.demand
            )
            assert report.recovered_units == 0
            assert round_result.outcome.winners == ()
        assert outcome.degraded_rounds == [0, 1]
        assert outcome.uncovered_units > 0

    def test_degradation_raise_propagates(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=2)
        plan = FaultPlan(
            seed=5, seller_defaults=(SellerDefault(probability=1.0),)
        )
        with pytest.raises(InfeasibleInstanceError):
            run_msoa(
                horizon,
                capacities,
                faults=plan,
                resilience=ResiliencePolicy(degradation="raise"),
            )

    def test_zero_retries_abandons_immediately(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=2)
        plan = FaultPlan(
            seed=5, seller_defaults=(SellerDefault(probability=1.0),)
        )
        outcome = run_msoa(
            horizon,
            capacities,
            faults=plan,
            resilience=ResiliencePolicy(max_retries=0),
        )
        for round_result in outcome.rounds:
            assert round_result.resilience.recoveries == ()
            assert round_result.resilience.degraded


class TestSerde:
    def test_faulted_outcome_round_trips(self, make_horizon):
        horizon, capacities = make_horizon(11, rounds=3)
        plan = FaultPlan(
            seed=5, seller_defaults=(SellerDefault(probability=0.5),)
        )
        outcome = run_msoa(horizon, capacities, faults=plan)
        assert outcome.fault_events > 0
        rebuilt = OnlineOutcome.from_dict(outcome.to_dict())
        assert as_json(rebuilt) == as_json(outcome)
        faulted_rounds = [
            r for r in rebuilt.rounds if r.resilience is not None
        ]
        assert faulted_rounds
        assert rebuilt.fault_events == outcome.fault_events

    def test_fault_free_round_serializes_without_resilience_key(
        self, make_horizon
    ):
        horizon, capacities = make_horizon(11, rounds=2)
        outcome = run_msoa(horizon, capacities)
        for round_result in outcome.to_dict()["rounds"]:
            assert "resilience" not in round_result

    def test_policy_round_trips(self):
        policy = ResiliencePolicy(
            max_retries=4,
            backoff_factor=1.5,
            bid_timeout=2.0,
            degradation="raise",
            carry_uncovered=True,
        )
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy
