"""The seeded injector: determinism, stream isolation, and per-kind
semantics (scripted defaults, churn windows, timeout-gated late bids)."""

from repro.faults import (
    BidDropout,
    CloudChurn,
    DemandSurge,
    FaultInjector,
    FaultPlan,
    LateBid,
    SellerDefault,
)


def bids_of(instance):
    return list(instance.bids)


def make_plan(**kwargs):
    kwargs.setdefault("seed", 5)
    return FaultPlan(**kwargs)


class TestDeterminism:
    def test_two_injectors_replay_identically(self, make_instance):
        plan = make_plan(
            seller_defaults=(SellerDefault(probability=0.4),),
            bid_dropouts=(BidDropout(probability=0.3),),
            late_bids=(LateBid(probability=0.3),),
        )
        instance = make_instance(3)
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            kept, events = injector.filter_bids(0, bids_of(instance))
            defaulted, default_events = injector.winner_defaults(
                0, bids_of(instance)[:4]
            )
            runs.append((
                [b.key for b in kept],
                [e.to_dict() for e in events],
                sorted(defaulted),
                [e.to_dict() for e in default_events],
            ))
        assert runs[0] == runs[1]

    def test_reset_rewinds_every_stream(self, make_instance):
        plan = make_plan(
            bid_dropouts=(BidDropout(probability=0.5),),
            cloud_churn=(CloudChurn(sellers=(0,), leave_round=0,
                                    probability=0.5),),
        )
        instance = make_instance(3)
        injector = FaultInjector(plan)
        first = [
            injector.filter_bids(t, bids_of(instance))[0] for t in range(3)
        ]
        injector.reset()
        second = [
            injector.filter_bids(t, bids_of(instance))[0] for t in range(3)
        ]
        assert [[b.key for b in kept] for kept in first] == [
            [b.key for b in kept] for kept in second
        ]

    def test_different_fault_seeds_diverge(self, make_instance):
        instance = make_instance(3)
        outcomes = []
        for seed in (1, 2):
            injector = FaultInjector(
                make_plan(seed=seed,
                          bid_dropouts=(BidDropout(probability=0.5),))
            )
            kept, _ = injector.filter_bids(0, bids_of(instance))
            outcomes.append([b.key for b in kept])
        assert outcomes[0] != outcomes[1]

    def test_null_plan_never_perturbs(self, make_instance):
        instance = make_instance(3)
        injector = FaultInjector(make_plan())
        assert injector.is_null
        kept, events = injector.filter_bids(0, bids_of(instance))
        assert kept == bids_of(instance) and events == []
        surged, surge_events = injector.surge_demand(0, instance.demand)
        assert surged == dict(instance.demand) and surge_events == []
        defaulted, default_events = injector.winner_defaults(
            0, bids_of(instance)
        )
        assert defaulted == frozenset() and default_events == []


class TestSemantics:
    def test_scripted_default_fires_only_on_attempt_zero(self, make_instance):
        instance = make_instance(3)
        seller = instance.bids[0].seller
        plan = make_plan(
            seller_defaults=(SellerDefault(scripted=((2, seller),)),)
        )
        injector = FaultInjector(plan)
        hit, events = injector.winner_defaults(2, bids_of(instance))
        assert hit == frozenset({seller})
        assert events[0].detail["scripted"] == 1.0
        retry_hit, _ = injector.winner_defaults(
            2, bids_of(instance), attempt=1
        )
        assert retry_hit == frozenset()
        other_round, _ = injector.winner_defaults(0, bids_of(instance))
        assert other_round == frozenset()

    def test_churn_hides_sellers_for_the_window(self, make_instance):
        instance = make_instance(3)
        seller = instance.bids[0].seller
        plan = make_plan(
            cloud_churn=(CloudChurn(sellers=(seller,), leave_round=1,
                                    rejoin_round=3),)
        )
        injector = FaultInjector(plan)
        for t, expect_away in ((0, False), (1, True), (2, True), (3, False)):
            kept, events = injector.filter_bids(t, bids_of(instance))
            away = {b.seller for b in bids_of(instance)} - {
                b.seller for b in kept
            }
            assert (seller in away) is expect_away, t
            if expect_away:
                assert all(e.kind == "cloud-churn" for e in events)

    def test_late_bid_dropped_only_past_timeout(self, make_instance):
        instance = make_instance(3)
        plan = make_plan(
            late_bids=(LateBid(probability=1.0, delay_range=(2.0, 2.0)),)
        )
        # Delay is exactly 2: a 5-unit timeout keeps every bid, a 1-unit
        # timeout drops them all; without a timeout the event is
        # informational.
        keep = FaultInjector(plan).filter_bids(
            0, bids_of(instance), bid_timeout=5.0
        )
        drop = FaultInjector(plan).filter_bids(
            0, bids_of(instance), bid_timeout=1.0
        )
        info = FaultInjector(plan).filter_bids(0, bids_of(instance))
        assert len(keep[0]) == len(instance.bids)
        assert drop[0] == []
        assert len(info[0]) == len(instance.bids)
        assert all(e.detail["timed_out"] == 0.0 for e in info[1])
        assert all(e.detail["timed_out"] == 1.0 for e in drop[1])

    def test_surge_scales_and_ceils(self):
        plan = make_plan(demand_surges=(DemandSurge(factor=1.5, rounds=(1,)),))
        injector = FaultInjector(plan)
        unchanged, no_events = injector.surge_demand(0, {10: 3})
        surged, events = injector.surge_demand(1, {10: 3, 20: 2})
        assert unchanged == {10: 3} and no_events == []
        assert surged == {10: 5, 20: 3}
        assert [e.kind for e in events] == ["demand-surge"]

    def test_dropout_removes_bids_with_events(self, make_instance):
        instance = make_instance(3)
        plan = make_plan(bid_dropouts=(BidDropout(probability=1.0),))
        kept, events = FaultInjector(plan).filter_bids(0, bids_of(instance))
        assert kept == []
        assert len(events) == len(instance.bids)
        assert {e.kind for e in events} == {"bid-dropout"}
