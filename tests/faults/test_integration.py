"""Fault surface integration: platform loop, experiment config, the
resilience sweep, the CLI ``--faults`` flag, and the hypothesis-driven
zero-probability guard."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.msoa import run_msoa
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.resilience import (
    evaluate_fault_plan,
    run_resilience_sweep,
)
from repro.faults import (
    BidDropout,
    DemandSurge,
    FaultPlan,
    LateBid,
    ResiliencePolicy,
    SellerDefault,
    save_fault_plan,
)
from tests.integration.test_platform import build_platform

PLAN = FaultPlan(seed=5, seller_defaults=(SellerDefault(probability=0.6),))


def null_plans():
    """Plans that cannot fire: arbitrary seeds, all-zero probabilities."""
    zero_defaults = st.builds(
        SellerDefault, probability=st.just(0.0)
    )
    zero_dropouts = st.builds(BidDropout, probability=st.just(0.0))
    zero_late = st.builds(LateBid, probability=st.just(0.0))
    null_surges = st.builds(
        DemandSurge, factor=st.just(1.0),
        probability=st.floats(0.0, 1.0),
    )
    return st.builds(
        FaultPlan,
        seed=st.integers(0, 2**31 - 1),
        seller_defaults=st.tuples(zero_defaults),
        bid_dropouts=st.tuples(zero_dropouts),
        late_bids=st.tuples(zero_late),
        demand_surges=st.tuples(null_surges),
    )


class TestZeroProbabilityProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(plan=null_plans(), engine=st.sampled_from(["fast", "reference"]))
    def test_null_plan_is_bit_identical(self, make_horizon, plan, engine):
        assert plan.is_null
        horizon, capacities = make_horizon(11, rounds=2)
        reference = run_msoa(horizon, capacities, engine=engine)
        faulted = run_msoa(horizon, capacities, engine=engine, faults=plan)
        assert json.dumps(faulted.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )


class TestExperimentConfig:
    def test_accepts_plan_and_policy(self):
        config = ExperimentConfig(
            faults=PLAN, resilience=ResiliencePolicy(max_retries=1)
        )
        assert config.faults is PLAN

    def test_resilience_without_faults_rejected(self):
        with pytest.raises(ConfigurationError, match="requires faults"):
            ExperimentConfig(resilience=ResiliencePolicy())

    def test_wrong_types_rejected(self):
        with pytest.raises(ConfigurationError, match="FaultPlan"):
            ExperimentConfig(faults={"kind": "fault-plan"})
        with pytest.raises(ConfigurationError, match="ResiliencePolicy"):
            ExperimentConfig(faults=PLAN, resilience="partial")


class TestPlatformLoop:
    def test_platform_runs_under_faults(self):
        certain = FaultPlan(
            seed=5, seller_defaults=(SellerDefault(probability=1.0),)
        )
        platform = build_platform(faults=certain)
        reports = platform.run(3)
        assert len(reports) == 3
        auctioned = [r for r in reports if r.auction is not None]
        assert auctioned, "the overloaded deployment must trade"
        faulted = [
            r for r in auctioned if r.auction.resilience is not None
        ]
        assert faulted, "certain defaults must leave visible reports"
        assert any(
            e.kind == "seller-default"
            for r in faulted
            for e in r.auction.resilience.events
        )

    def test_platform_null_plan_matches_unfaulted(self):
        clean = [r.social_cost for r in build_platform().run(3)]
        nulled = [
            r.social_cost
            for r in build_platform(faults=FaultPlan()).run(3)
        ]
        assert clean == nulled

    def test_prebuilt_mechanism_rejects_faults(self):
        from repro.core.msoa import MultiStageOnlineAuction

        prebuilt = MultiStageOnlineAuction({0: 10, 1: 10})
        with pytest.raises(ConfigurationError, match="already-built"):
            build_platform(mechanism=prebuilt, faults=PLAN)


class TestResilienceSweep:
    def test_sweep_reference_row_is_fault_free(self):
        table = run_resilience_sweep(
            mechanisms=("msoa",), probabilities=(0.0, 0.5), rounds=2
        )
        reference, faulted = table.rows
        assert reference["fault_events"] == 0
        assert reference["coverage"] == 1.0
        assert faulted["fault_events"] > 0

    def test_evaluate_plan_pairs_rows(self):
        table = evaluate_fault_plan(PLAN, mechanisms=("msoa",), rounds=2)
        assert [row["p_default"] for row in table.rows] == [0.0, 0.6]

    def test_unknown_mechanism_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="online"):
            run_resilience_sweep(mechanisms=("offline-greedy",), rounds=2)


class TestCli:
    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "plan.json"
        save_fault_plan(PLAN, path)
        return str(path)

    def test_run_faults_reports_events(self, spec_path, capsys):
        code = main([
            "run", "--mechanism", "msoa", "--rounds", "2",
            "--faults", spec_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault events" in out

    def test_run_faults_wraps_single_round_mechanism(self, spec_path, capsys):
        code = main([
            "run", "--mechanism", "pay-as-bid", "--rounds", "2",
            "--faults", spec_path,
        ])
        assert code == 0
        assert "fault events" in capsys.readouterr().out

    def test_run_faults_rejects_horizon_benchmarks(self, spec_path, capsys):
        code = main([
            "run", "--mechanism", "offline-greedy", "--faults", spec_path,
        ])
        assert code == 2
        assert "online" in capsys.readouterr().err

    def test_bench_faults_runs_the_evaluation(self, spec_path, capsys):
        code = main(["bench", "--quick", "--faults", spec_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fault-plan evaluation" in out

    def test_missing_spec_is_a_clean_error(self, tmp_path, capsys):
        code = main([
            "run", "--mechanism", "msoa",
            "--faults", str(tmp_path / "absent.json"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
