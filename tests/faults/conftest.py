"""Fault tests always start from — and restore — the disabled
observability default, since several of them turn tracing on to assert
fault/recovery events and the rest of the suite pins untraced
bit-identity."""

import pytest

from repro.obs.runtime import _reset_for_tests


@pytest.fixture(autouse=True)
def _observability_reset():
    _reset_for_tests()
    yield
    _reset_for_tests()
