"""Fault-model dataclasses: validation, nullability, and serde.

The plan file is the experiment's reproducibility contract — a faulted
run is fully described by (config, plan), so ``to_dict``/``from_dict``
must round-trip exactly and reject anything the injector could not
execute."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_PLAN_SCHEMA_VERSION,
    BidDropout,
    CloudChurn,
    DemandSurge,
    FaultPlan,
    LateBid,
    SellerDefault,
    load_fault_plan,
    save_fault_plan,
)

FULL_PLAN = FaultPlan(
    seed=42,
    seller_defaults=(
        SellerDefault(probability=0.2, sellers=(1, 2), rounds=(0, 3)),
        SellerDefault(scripted=((1, 4), (2, 5))),
    ),
    bid_dropouts=(BidDropout(probability=0.1),),
    late_bids=(LateBid(probability=0.3, delay_range=(1.0, 4.0)),),
    cloud_churn=(CloudChurn(sellers=(7, 8), leave_round=2, rejoin_round=5),),
    demand_surges=(DemandSurge(factor=1.5, rounds=(3,)),),
)


class TestValidation:
    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_probability_bounds(self, p):
        for model_type in (SellerDefault, BidDropout, LateBid):
            with pytest.raises(ConfigurationError):
                model_type(probability=p)
        with pytest.raises(ConfigurationError):
            CloudChurn(sellers=(1,), probability=p)
        with pytest.raises(ConfigurationError):
            DemandSurge(factor=2.0, probability=p)

    def test_surge_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandSurge(factor=0.5, probability=0.1)

    def test_churn_rejoin_before_leave_rejected(self):
        with pytest.raises(ConfigurationError):
            CloudChurn(sellers=(1,), leave_round=4, rejoin_round=4)

    def test_late_bid_delay_range_ordered(self):
        with pytest.raises(ConfigurationError):
            LateBid(probability=0.5, delay_range=(3.0, 1.0))

    def test_plan_rejects_wrong_model_type(self):
        with pytest.raises(ConfigurationError, match="seller_defaults"):
            FaultPlan(seller_defaults=(BidDropout(probability=0.5),))


class TestNullability:
    def test_empty_plan_is_null(self):
        assert FaultPlan().is_null

    def test_zero_probability_models_are_null(self):
        plan = FaultPlan(
            seed=99,
            seller_defaults=(SellerDefault(probability=0.0),),
            bid_dropouts=(BidDropout(probability=0.0),),
            late_bids=(LateBid(probability=0.0),),
            cloud_churn=(CloudChurn(sellers=(), leave_round=0),),
            demand_surges=(DemandSurge(factor=1.0, probability=1.0),),
        )
        assert plan.is_null

    def test_scripted_default_is_not_null(self):
        assert not FaultPlan(
            seller_defaults=(SellerDefault(scripted=((0, 1),)),)
        ).is_null

    def test_any_live_model_makes_plan_live(self):
        assert not FULL_PLAN.is_null

    def test_applies_respects_restrictions(self):
        model = SellerDefault(probability=0.5, sellers=(1,), rounds=(2,))
        assert model.applies(2, 1)
        assert not model.applies(2, 3)
        assert not model.applies(1, 1)

    def test_churn_window(self):
        churn = CloudChurn(sellers=(1,), leave_round=2, rejoin_round=4)
        assert [churn.covers_round(t) for t in range(5)] == [
            False, False, True, True, False,
        ]
        forever = CloudChurn(sellers=(1,), leave_round=3)
        assert forever.covers_round(100)


class TestSerde:
    def test_round_trip_full_plan(self):
        assert FaultPlan.from_dict(FULL_PLAN.to_dict()) == FULL_PLAN

    def test_dict_is_json_compatible_and_tagged(self):
        data = json.loads(json.dumps(FULL_PLAN.to_dict()))
        assert data["kind"] == "fault-plan"
        assert data["schema_version"] == FAULT_PLAN_SCHEMA_VERSION
        assert FaultPlan.from_dict(data) == FULL_PLAN

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        save_fault_plan(FULL_PLAN, path)
        assert load_fault_plan(path) == FULL_PLAN

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultPlan.from_dict({"kind": "outcome", "seed": 0})

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ConfigurationError, match="schema version"):
            FaultPlan.from_dict(
                {"kind": "fault-plan", "schema_version": 999}
            )

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="bid_dropouts"):
            FaultPlan.from_dict(
                {
                    "kind": "fault-plan",
                    "schema_version": FAULT_PLAN_SCHEMA_VERSION,
                    "bid_dropouts": [{"nonsense": 1}],
                }
            )

    def test_missing_file_message_names_path(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no-such-plan"):
            load_fault_plan(tmp_path / "no-such-plan.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_fault_plan(path)
