"""Shared fixtures: seeded RNGs and market-instance factories.

Before these existed every test module hand-rolled its own
``small_instance(seed)`` helper around :class:`MarketConfig` +
:func:`generate_round`; the copies drifted in their defaults, and a
change to the generator's signature meant touching a dozen files.  All
instance construction in the suite now funnels through the factories
below.  (Hypothesis-driven property tests are the exception: ``@given``
cannot consume function-scoped fixtures, so they keep drawing from
``tests/properties/strategies.py``.)
"""

import numpy as np
import pytest

from repro.workload.bidgen import MarketConfig, generate_horizon, generate_round

#: The suite-wide defaults for generated markets: small enough that MILP
#: baselines and payment replays stay fast, rich enough (2 alternative
#: bids per seller) to exercise the one-winning-bid-per-seller rule.
DEFAULT_MARKET_KWARGS = dict(n_sellers=10, n_buyers=4, bids_per_seller=2)


@pytest.fixture
def rng():
    """The suite's default seeded generator (seed 7)."""
    return np.random.default_rng(7)


@pytest.fixture
def make_rng():
    """Factory for independent seeded generators: ``make_rng(42)``."""

    def _make(seed=7):
        return np.random.default_rng(seed)

    return _make


@pytest.fixture
def make_market():
    """Factory for :class:`MarketConfig` with the suite defaults."""

    def _make(**overrides):
        kwargs = dict(DEFAULT_MARKET_KWARGS)
        kwargs.update(overrides)
        return MarketConfig(**kwargs)

    return _make


@pytest.fixture
def make_instance(make_market):
    """Factory for one generated feasible round: ``make_instance(seed=7)``.

    Keyword overrides are forwarded to :class:`MarketConfig`, so tests
    spell only what they care about::

        instance = make_instance(42, n_sellers=20, n_buyers=5)
    """

    def _make(seed=7, **overrides):
        return generate_round(make_market(**overrides), np.random.default_rng(seed))

    return _make


@pytest.fixture
def make_horizon(make_market):
    """Factory for a generated multi-round horizon plus capacities.

    Returns the ``(rounds, capacities)`` pair of
    :func:`generate_horizon`; ``rounds=`` and generator keywords are
    overridable the same way as :func:`make_instance`.
    """

    def _make(seed=11, *, rounds=3, **overrides):
        return generate_horizon(
            make_market(**overrides), np.random.default_rng(seed), rounds=rounds
        )

    return _make
