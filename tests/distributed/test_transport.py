"""Transport-level behaviour: ordering, clocks, endpoints, wire format."""

import asyncio

import pytest

from repro.core.bids import Bid
from repro.dist.messages import (
    MESSAGE_SCHEMA_VERSION,
    BidSubmission,
    OutcomeNotice,
    RoundOpen,
    Shutdown,
    message_from_dict,
    message_to_dict,
)
from repro.dist.transport import InMemoryTransport
from repro.errors import ConfigurationError, TransportError

pytestmark = pytest.mark.dist


class TestInMemoryTransport:
    def test_delivery_preserves_send_order(self):
        transport = InMemoryTransport()
        inbox = transport.register("agent")
        for i in range(5):
            transport.send("agent", Shutdown(reason=str(i)), sender="x")

        async def drain():
            return [(await inbox.get()) for _ in range(5)]

        envelopes = asyncio.run(drain())
        assert [e.message.reason for e in envelopes] == list("01234")
        assert [e.seq for e in envelopes] == sorted(e.seq for e in envelopes)

    def test_sequence_is_transport_wide_and_monotone(self):
        transport = InMemoryTransport()
        transport.register("a")
        transport.register("b")
        seqs = [
            transport.send(recipient, Shutdown(), sender="x").seq
            for recipient in ("a", "b", "a", "b")
        ]
        assert seqs == [1, 2, 3, 4]

    def test_identical_send_sequences_stamp_identically(self):
        def stamped():
            transport = InMemoryTransport()
            transport.register("a")
            out = []
            for i in range(4):
                transport.advance_to(float(i))
                env = transport.send("a", Shutdown(), sender="x", delay=0.5)
                out.append((env.seq, env.sent_at, env.deliver_at))
            return out

        assert stamped() == stamped()

    def test_virtual_delay_stamps_without_sleeping(self):
        transport = InMemoryTransport()
        inbox = transport.register("agent")
        transport.advance_to(10.0)
        envelope = transport.send("agent", Shutdown(), sender="x", delay=2.5)
        assert envelope.sent_at == 10.0
        assert envelope.deliver_at == 12.5
        assert envelope.delay == 2.5
        # delivery is immediate on the wall clock: already in the mailbox
        assert len(inbox) == 1

    def test_unknown_endpoint_raises_transport_error(self):
        transport = InMemoryTransport()
        with pytest.raises(TransportError, match="ghost"):
            transport.send("ghost", Shutdown(), sender="x")

    def test_closed_transport_rejects_sends_and_registers(self):
        transport = InMemoryTransport()
        transport.register("agent")
        transport.close()
        with pytest.raises(TransportError):
            transport.send("agent", Shutdown(), sender="x")
        with pytest.raises(TransportError):
            transport.register("other")

    def test_duplicate_endpoint_rejected(self):
        transport = InMemoryTransport()
        transport.register("agent")
        with pytest.raises(ConfigurationError, match="already registered"):
            transport.register("agent")

    def test_clock_never_moves_backward(self):
        transport = InMemoryTransport()
        transport.advance_to(5.0)
        with pytest.raises(ConfigurationError, match="backward"):
            transport.advance_to(4.0)

    def test_negative_delay_rejected(self):
        transport = InMemoryTransport()
        transport.register("agent")
        with pytest.raises(ConfigurationError, match="delay"):
            transport.send("agent", Shutdown(), sender="x", delay=-1.0)

    def test_broadcast_reaches_everyone_but_sender_and_excluded(self):
        transport = InMemoryTransport()
        boxes = {name: transport.register(name) for name in ("a", "b", "c")}
        transport.broadcast(Shutdown(), sender="a", exclude=("b",))
        assert len(boxes["a"]) == 0
        assert len(boxes["b"]) == 0
        assert len(boxes["c"]) == 1


class TestWireFormat:
    def test_every_message_round_trips_through_dicts(self):
        bid = Bid(seller=3, index=0, covered=frozenset({1, 2}), price=20.0,
                  true_cost=20.0)
        messages = [
            RoundOpen(round_index=2, seller_id=3, local_buyers=(1, 2),
                      max_units=4, opened_at=16.0, deadline=17.0),
            BidSubmission(round_index=2, seller_id=3, bids=(bid,)),
            OutcomeNotice(round_index=2, winners=((3, 0, 25.0),),
                          transfers=((3, (1, 2)),), social_cost=20.0),
            Shutdown(reason="done"),
        ]
        for message in messages:
            payload = message_to_dict(message)
            assert payload["schema_version"] == MESSAGE_SCHEMA_VERSION
            assert message_from_dict(payload) == message

    def test_unknown_kind_and_bad_version_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            message_from_dict({"kind": "nonsense",
                               "schema_version": MESSAGE_SCHEMA_VERSION})
        payload = message_to_dict(Shutdown())
        payload["schema_version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            message_from_dict(payload)

    def test_submission_rejects_foreign_bids(self):
        foreign = Bid(seller=9, index=0, covered=frozenset({1}), price=5.0,
                      true_cost=5.0)
        with pytest.raises(ConfigurationError, match="seller 9"):
            BidSubmission(round_index=0, seller_id=3, bids=(foreign,))

    def test_outcome_notice_helpers(self):
        notice = OutcomeNotice(
            round_index=0,
            winners=((3, 0, 25.0), (3, 1, 5.0), (4, 0, 7.0)),
            transfers=((3, (1, 2)), (4, (1,))),
        )
        assert notice.payment_to(3) == pytest.approx(30.0)
        assert notice.payment_to(99) == 0
        assert notice.units_to(1) == 2
        assert notice.units_to(2) == 1
