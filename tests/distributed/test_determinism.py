"""The determinism contract: async serving == synchronous replay, bitwise.

A seeded :func:`repro.api.serve` session over the in-memory transport
must produce :class:`~repro.core.outcomes.AuctionOutcome`\\ s that are
bit-identical to :func:`repro.dist.replay_scenario`'s synchronous run of
the same :class:`~repro.dist.DistScenario` — for the paper's MSOA and
for the baseline mechanisms, with and without an injected fault plan.
"""

import pytest

from repro.dist import DistScenario, replay_scenario, serve
from repro.faults import (
    BidDropout,
    FaultPlan,
    LateBid,
    ResiliencePolicy,
    SellerDefault,
)

pytestmark = pytest.mark.dist

ROUNDS = 5

FAULT_PLAN = FaultPlan(
    seed=3,
    seller_defaults=(SellerDefault(probability=0.3),),
    bid_dropouts=(BidDropout(probability=0.2),),
    late_bids=(LateBid(probability=0.3, delay_range=(0.0, 3.0)),),
)
RESILIENCE = ResiliencePolicy(bid_timeout=2.0)


def _outcomes(reports):
    return [
        report.auction.outcome.to_dict() if report.auction else None
        for report in reports
    ]


def _ledger_rows(platform):
    return (dict(platform.ledger.payments), dict(platform.ledger.charges))


@pytest.mark.parametrize("mechanism", [None, "pay-as-bid", "vcg"])
@pytest.mark.parametrize("seed", [5, 11])
def test_async_outcomes_match_sync_replay(mechanism, seed):
    scenario = DistScenario(seed=seed, mechanism=mechanism)
    sync = _outcomes(replay_scenario(scenario, rounds=ROUNDS))
    service = serve(scenario)
    service.run(rounds=ROUNDS)
    assert _outcomes(service.reports) == sync


@pytest.mark.parametrize("mechanism", [None, "pay-as-bid", "vcg"])
def test_fault_injected_runs_stay_bit_identical(mechanism):
    scenario = DistScenario(
        seed=5,
        mechanism=mechanism,
        faults=FAULT_PLAN,
        resilience=RESILIENCE,
    )
    sync = _outcomes(replay_scenario(scenario, rounds=ROUNDS))
    service = serve(scenario)
    service.run(rounds=ROUNDS)
    assert _outcomes(service.reports) == sync


def test_ledgers_match_entry_for_entry():
    scenario = DistScenario(seed=5)

    # replay_scenario builds its own platform; rebuild to keep a handle
    from repro.dist.agents import AgentStreamPolicy

    sync_platform = scenario.build_platform(
        bidding_policy=AgentStreamPolicy(
            scenario.seed, scenario.policy_factory()
        )
    )
    sync_platform.run(ROUNDS)
    service = serve(scenario)
    service.run(rounds=ROUNDS)
    assert _ledger_rows(service.platform) == _ledger_rows(sync_platform)


def test_serving_twice_from_one_scenario_is_reproducible():
    scenario = DistScenario(seed=13)
    first = serve(scenario)
    first.run(rounds=ROUNDS)
    second = serve(scenario)
    second.run(rounds=ROUNDS)
    assert _outcomes(first.reports) == _outcomes(second.reports)


def test_nonzero_rounds_actually_trade():
    """Guard against vacuous equality: the compared runs must trade."""
    scenario = DistScenario(seed=5)
    outcomes = _outcomes(replay_scenario(scenario, rounds=ROUNDS))
    assert any(
        outcome is not None and outcome["winners"] for outcome in outcomes
    )
