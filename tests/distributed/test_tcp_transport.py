"""TCP transport: framing, handshake, error paths, wall-clock deadlines."""

import asyncio
import json
import struct
import time

import pytest

from repro.dist import (
    AuctionService,
    DistScenario,
    InMemoryTransport,
    RoundOrchestrator,
    TcpTransport,
    agent_worker,
    replay_scenario,
    seller_endpoint,
)
from repro.dist.messages import BidSubmission, RoundOpen, Shutdown
from repro.dist.tcp import read_frame, write_frame
from repro.errors import ConfigurationError, TransportError
from repro.obs.runtime import observing
from repro.obs.tracer import read_trace

pytestmark = pytest.mark.dist

SCENARIO = DistScenario(seed=5, horizon_rounds=4)


def _events(records, name):
    return [
        r for r in records if r.get("kind") == "event" and r.get("name") == name
    ]


async def _router() -> TcpTransport:
    transport = TcpTransport()
    await transport.listen("127.0.0.1", 0)
    return transport


async def _client(router: TcpTransport) -> TcpTransport:
    client = TcpTransport()
    await client.dial(*router.address)
    return client


class TestFraming:
    def test_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = {"op": "register", "endpoint": "seller-1"}

            class _Writer:
                def write(self, data):
                    reader.feed_data(data)

            write_frame(_Writer(), frame)
            return await read_frame(reader)

        assert asyncio.run(scenario()) == {
            "op": "register",
            "endpoint": "seller-1",
        }

    def test_oversized_frame_is_rejected_on_read(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 1 << 30))
            await read_frame(reader, max_frame_bytes=1024)

        with pytest.raises(TransportError, match="exceeds"):
            asyncio.run(scenario())

    def test_oversized_frame_is_rejected_on_write(self):
        with pytest.raises(TransportError, match="exceeds"):
            write_frame(None, {"op": "x", "pad": "y" * 64}, max_frame_bytes=16)

    def test_malformed_json_is_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            body = b"this is not json"
            reader.feed_data(struct.pack(">I", len(body)) + body)
            await read_frame(reader)

        with pytest.raises(TransportError, match="malformed"):
            asyncio.run(scenario())

    def test_frame_without_op_is_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            body = json.dumps({"no_op": 1}).encode()
            reader.feed_data(struct.pack(">I", len(body)) + body)
            await read_frame(reader)

        with pytest.raises(TransportError, match="'op'"):
            asyncio.run(scenario())


class TestHandshakeAndRouting:
    def test_register_send_round_trip_preserves_order(self):
        async def scenario():
            router = await _router()
            orchestrator_box = router.register("orchestrator")
            client = await _client(router)
            client.register("seller-1")
            await client.wait_registered("seller-1")
            for index in range(3):
                client.send(
                    "orchestrator",
                    BidSubmission(round_index=index, seller_id=1),
                    sender="seller-1",
                )
            received = [await orchestrator_box.get() for _ in range(3)]
            client.close()
            router.close()
            return received

        received = asyncio.run(scenario())
        # router-stamped seq is monotone and per-recipient order is FIFO
        assert [e.message.round_index for e in received] == [0, 1, 2]
        assert [e.seq for e in received] == sorted(e.seq for e in received)
        assert all(e.sender == "seller-1" for e in received)

    def test_router_delivers_to_remote_endpoint(self):
        async def scenario():
            router = await _router()
            router.register("orchestrator")
            client = await _client(router)
            box = client.register("seller-2")
            await client.wait_registered("seller-2")
            sent = router.send(
                "seller-2",
                RoundOpen(
                    round_index=0,
                    seller_id=2,
                    local_buyers=(1,),
                    max_units=3,
                    opened_at=0.0,
                    deadline=1.0,
                ),
                sender="orchestrator",
            )
            got = await asyncio.wait_for(box.get(), timeout=5)
            client.close()
            router.close()
            return sent, got

        sent, got = asyncio.run(scenario())
        # the client reconstructs exactly the router's stamped envelope
        assert got.seq == sent.seq
        assert got.message == sent.message
        assert got.deliver_at == sent.deliver_at

    def test_duplicate_registration_is_rejected(self):
        async def scenario():
            router = await _router()
            first = await _client(router)
            first.register("seller-1")
            await first.wait_registered("seller-1")
            second = await _client(router)
            second.register("seller-1")
            try:
                await second.wait_registered("seller-1")
            finally:
                first.close()
                second.close()
                router.close()

        with pytest.raises(TransportError, match="already registered"):
            asyncio.run(scenario())

    def test_local_duplicate_registration_is_rejected(self):
        async def scenario():
            router = await _router()
            router.register("orchestrator")
            try:
                router.register("orchestrator")
            finally:
                router.close()

        with pytest.raises(ConfigurationError, match="already registered"):
            asyncio.run(scenario())

    def test_send_to_unknown_endpoint_raises(self):
        async def scenario():
            router = await _router()
            try:
                router.send("nobody", Shutdown(), sender="orchestrator")
            finally:
                router.close()

        with pytest.raises(TransportError, match="nobody"):
            asyncio.run(scenario())

    def test_wait_for_endpoints_times_out_with_missing_names(self):
        async def scenario():
            router = await _router()
            try:
                await router.wait_for_endpoints(
                    ["seller-9"], timeout=0.05
                )
            finally:
                router.close()

        with pytest.raises(TransportError, match="seller-9"):
            asyncio.run(scenario())


class TestFrameRejection:
    def test_malformed_frame_drops_the_connection(self):
        async def scenario():
            router = await _router()
            reader, writer = await asyncio.open_connection(*router.address)
            writer.write(struct.pack(">I", 12) + b"not json!!!!")
            # the router answers an error frame, then closes on us
            answer = await asyncio.wait_for(read_frame(reader), timeout=5)
            eof = await asyncio.wait_for(reader.read(), timeout=5)
            writer.close()
            router.close()
            return answer, eof

        with observing() as metrics:
            answer, eof = asyncio.run(scenario())
            assert metrics.counter("transport.frames_rejected").value == 1
        assert answer["op"] == "error"
        assert "malformed" in answer["error"]
        assert eof == b""

    def test_oversized_frame_drops_the_connection(self):
        async def scenario():
            router = TcpTransport(max_frame_bytes=64)
            await router.listen("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(*router.address)
            body = json.dumps({"op": "register", "endpoint": "x" * 256})
            writer.write(
                struct.pack(">I", len(body)) + body.encode()
            )
            # The error answer is best-effort: the unread body still in
            # the router's socket buffer can turn its close into a reset
            # that eats the frame.  The contract is only that the
            # connection dies (and the rejection is counted).
            try:
                answer = await asyncio.wait_for(read_frame(reader), timeout=5)
            except (
                TransportError,
                asyncio.IncompleteReadError,
                ConnectionError,
            ):
                answer = None
            writer.close()
            router.close()
            return answer

        with observing() as metrics:
            answer = asyncio.run(scenario())
            assert metrics.counter("transport.frames_rejected").value == 1
        if answer is not None:
            assert "exceeds" in answer["error"]

    def test_unknown_op_drops_the_connection(self):
        async def scenario():
            router = await _router()
            reader, writer = await asyncio.open_connection(*router.address)
            write_frame(writer, {"op": "teleport"})
            answer = await asyncio.wait_for(read_frame(reader), timeout=5)
            writer.close()
            router.close()
            return answer

        with observing() as metrics:
            answer = asyncio.run(scenario())
            assert metrics.counter("transport.frames_rejected").value == 1
        assert "teleport" in answer["error"]


class TestDisconnects:
    def test_client_disconnect_synthesizes_shutdown(self):
        async def scenario():
            router = await _router()
            router.register("orchestrator")
            client = await _client(router)
            box = client.register("seller-1")
            await client.wait_registered("seller-1")
            router.close()
            envelope = await asyncio.wait_for(box.get(), timeout=5)
            with pytest.raises(TransportError):
                client.send("orchestrator", Shutdown(), sender="seller-1")
            client.close()
            return envelope

        envelope = asyncio.run(scenario())
        assert isinstance(envelope.message, Shutdown)
        assert envelope.message.reason == "transport-disconnected"

    def test_peer_disconnect_mid_round_still_clears(self, tmp_path):
        """A seller whose process dies mid-session doesn't wedge the round."""
        trace = tmp_path / "trace.jsonl"

        async def scenario():
            router = TcpTransport()
            platform = SCENARIO.build_platform()
            orchestrator = RoundOrchestrator(
                platform, router, grace_window=1.0, wall_timeout=0.5
            )
            await router.listen("127.0.0.1", 0)
            client = await _client(router)
            client.register(seller_endpoint(3))
            await client.wait_registered(seller_endpoint(3))
            orchestrator.attach_seller(3, seller_endpoint(3))
            # the agent's process "dies" before the round opens
            client.close()
            await asyncio.sleep(0.1)  # let the router see the EOF
            report = await orchestrator.run_round()
            router.close()
            return report

        with observing(trace=trace) as metrics:
            report = asyncio.run(scenario())
            assert report.round_index == 0
            disconnected = metrics.counter("dist.sellers_disconnected").value
            timed_out = metrics.counter("dist.submissions_timeout").value
            # either the router already saw the EOF (send refused) or the
            # wall guard caught the silence — both account for seller 3
            assert disconnected + timed_out >= 1
        records = read_trace(trace)
        noted = _events(records, "dist.seller_disconnected") + _events(
            records, "dist.bid_timeout"
        )
        assert {e["fields"]["seller"] for e in noted} == {3}


class TestWallClock:
    def test_wall_clock_transport_advances_itself(self):
        transport = InMemoryTransport(clock="wall")
        before = transport.now
        time.sleep(0.01)
        assert transport.now > before
        transport.advance_to(0.0)  # a no-op, never "backward"

    def test_invalid_clock_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="clock"):
            InMemoryTransport(clock="lunar")
        with pytest.raises(ConfigurationError, match="clock"):
            TcpTransport(clock="lunar")

    def test_orchestrator_refuses_clock_mismatch(self):
        platform = SCENARIO.build_platform()
        with pytest.raises(ConfigurationError, match="does not match"):
            RoundOrchestrator(
                platform, InMemoryTransport(clock="virtual"), clock="wall"
            )

    def test_delayed_submission_is_late_by_wall_clock(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        delays = {sid: 30.0 for sid in SCENARIO.seller_ids()}
        with observing(trace=trace) as metrics:
            service = AuctionService(
                SCENARIO,
                grace_window=1.0,
                seller_delays=delays,
                clock="wall",
            )
            reports = service.run(rounds=2)
            assert len(reports) == 2
            late = metrics.counter("dist.submissions_late").value
            assert late > 0
            assert (
                metrics.counter("transport.late_wall_clock").value == late
            )
        assert all(not report.transfers for report in reports)

    def test_wall_deadline_fires_for_silent_agent(self, tmp_path):
        """Under clock="wall" the grace window itself is the timeout."""
        trace = tmp_path / "trace.jsonl"

        async def session():
            service = AuctionService(
                SCENARIO,
                grace_window=0.2,
                wall_timeout=30.0,
                clock="wall",
            )
            service.connect(3)  # connected, but nobody ever answers
            return await service.serve_rounds(rounds=1)

        with observing(trace=trace) as metrics:
            started = time.monotonic()
            reports = asyncio.run(session())
            elapsed = time.monotonic() - started
            assert len(reports) == 1
            assert metrics.counter("dist.submissions_timeout").value >= 1
        # the deadline (0.2s), not the 30s liveness guard, closed the round
        assert elapsed < 10.0
        timeout_events = _events(read_trace(trace), "dist.bid_timeout")
        assert {e["fields"]["seller"] for e in timeout_events} == {3}
        assert {e["fields"]["cause"] for e in timeout_events} == {
            "wall_deadline"
        }


class TestTcpDeterminism:
    def test_multi_process_tcp_session_matches_oracle(self):
        """Acceptance: ≥3 rounds over real sockets and OS processes,
        bit-identical to the synchronous replay oracle."""
        scenario = DistScenario(seed=5, horizon_rounds=3)
        service = AuctionService(
            scenario, listen=("127.0.0.1", 0), agent_processes=2
        )
        reports = service.run(rounds=3)
        oracle = replay_scenario(scenario, rounds=3)
        assert len(reports) == 3
        assert service.address is not None
        for served, replayed in zip(reports, oracle):
            served_outcome = (
                served.auction.outcome.to_dict() if served.auction else None
            )
            oracle_outcome = (
                replayed.auction.outcome.to_dict()
                if replayed.auction
                else None
            )
            assert served_outcome == oracle_outcome

    def test_in_loop_tcp_session_matches_oracle_pay_as_bid(self):
        scenario = DistScenario(
            seed=11, horizon_rounds=3, mechanism="pay-as-bid"
        )

        async def session():
            service = AuctionService(
                scenario, listen=("127.0.0.1", 0), agent_processes=0
            )
            workers = []
            service.on_listening = lambda addr: workers.append(
                asyncio.create_task(
                    agent_worker(
                        addr[0], addr[1], scenario.seller_ids(), scenario
                    )
                )
            )
            reports = await service.serve_rounds(rounds=3)
            for worker in workers:
                try:
                    await asyncio.wait_for(worker, timeout=5)
                except (TransportError, asyncio.TimeoutError):
                    worker.cancel()
            return reports

        reports = asyncio.run(session())
        oracle = replay_scenario(scenario, rounds=3)
        assert len(reports) == 3
        for served, replayed in zip(reports, oracle):
            served_outcome = (
                served.auction.outcome.to_dict() if served.auction else None
            )
            oracle_outcome = (
                replayed.auction.outcome.to_dict()
                if replayed.auction
                else None
            )
            assert served_outcome == oracle_outcome
