"""Round orchestration over real asynchrony: grace window, guards, events."""

import asyncio

import pytest

from repro.dist import (
    AuctionService,
    DistScenario,
    InMemoryTransport,
    RoundOrchestrator,
)
from repro.dist.messages import BidSubmission, RoundOpen, Shutdown
from repro.errors import ConfigurationError
from repro.obs.runtime import observing
from repro.obs.tracer import read_trace

pytestmark = pytest.mark.dist

SCENARIO = DistScenario(seed=5, horizon_rounds=4)


def _events(records, name):
    return [
        r for r in records if r.get("kind") == "event" and r.get("name") == name
    ]


class TestGraceWindow:
    def test_slow_sellers_miss_the_window(self):
        """A submission delivered past the deadline is a real late bid."""
        delays = {sid: 5.0 for sid in SCENARIO.seller_ids()}
        with observing() as metrics:
            service = AuctionService(
                SCENARIO, grace_window=1.0, seller_delays=delays
            )
            reports = service.run(rounds=3)
            assert len(reports) == 3
            assert metrics.counter("dist.submissions_late").value > 0
            assert metrics.counter("dist.submissions_accepted").value == 0
        # every round still cleared — just over an empty bid pool
        assert all(not report.transfers for report in reports)

    def test_fast_sellers_make_the_window(self):
        with observing() as metrics:
            service = AuctionService(SCENARIO, grace_window=1.0)
            service.run(rounds=3)
            assert metrics.counter("dist.submissions_late").value == 0
            assert metrics.counter("dist.submissions_accepted").value > 0

    def test_only_the_delayed_seller_is_excluded(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        delays = {3: 9.0}
        with observing(trace=trace) as metrics:
            service = AuctionService(
                SCENARIO, grace_window=1.0, seller_delays=delays
            )
            service.run(rounds=3)
            late = metrics.counter("dist.submissions_late").value
            assert late > 0
            assert metrics.counter("dist.submissions_accepted").value > 0
        late_events = _events(read_trace(trace), "dist.late_bid")
        assert len(late_events) == late
        assert {e["fields"]["seller"] for e in late_events} == {3}


class TestSubmissionGuards:
    def test_duplicate_submissions_are_counted_and_dropped(self):
        async def session():
            service = AuctionService(SCENARIO, grace_window=1.0)
            handle = service.connect(3)

            async def eager_agent():
                while True:
                    envelope = await handle.next_message()
                    message = envelope.message
                    if isinstance(message, Shutdown):
                        return
                    if isinstance(message, RoundOpen):
                        handle.submit_bid(message)
                        handle.submit_bid(message)  # once too often

            task = asyncio.create_task(eager_agent())
            await service.serve_rounds(rounds=2)
            await task

        with observing() as metrics:
            asyncio.run(session())
            assert metrics.counter("dist.submissions_duplicate").value >= 1

    def test_stale_submission_is_dropped(self):
        async def session():
            service = AuctionService(SCENARIO, grace_window=1.0)
            handle = service.connect(3)

            async def confused_agent():
                while True:
                    envelope = await handle.next_message()
                    message = envelope.message
                    if isinstance(message, Shutdown):
                        return
                    if isinstance(message, RoundOpen):
                        handle.transport.send(
                            "orchestrator",
                            BidSubmission(
                                round_index=message.round_index + 7,
                                seller_id=3,
                            ),
                            sender=handle.endpoint,
                        )
                        handle.submit_bid(message)

            task = asyncio.create_task(confused_agent())
            await service.serve_rounds(rounds=2)
            await task

        with observing() as metrics:
            asyncio.run(session())
            assert metrics.counter("dist.submissions_stale").value >= 1

    def test_silent_agent_trips_the_wall_clock_guard(self, tmp_path):
        trace = tmp_path / "trace.jsonl"

        async def session():
            service = AuctionService(
                SCENARIO, grace_window=1.0, wall_timeout=0.05
            )
            service.connect(3)  # connected, but nobody ever answers
            return await service.serve_rounds(rounds=1)

        with observing(trace=trace) as metrics:
            reports = asyncio.run(session())
            assert len(reports) == 1
            assert metrics.counter("dist.submissions_timeout").value >= 1
        timeout_events = _events(read_trace(trace), "dist.bid_timeout")
        assert {e["fields"]["seller"] for e in timeout_events} == {3}

    def test_unattached_seller_round_still_clears(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        platform = SCENARIO.build_platform()
        orchestrator = RoundOrchestrator(
            platform, InMemoryTransport(), grace_window=1.0, wall_timeout=0.5
        )
        with observing(trace=trace) as metrics:
            report = asyncio.run(orchestrator.run_round())
            assert metrics.counter("dist.rounds").value == 1
            assert metrics.counter("dist.submissions_accepted").value == 0
        assert report.round_index == 0
        assert not report.transfers
        assert _events(read_trace(trace), "dist.seller_unattached")


class TestOutcomeBroadcast:
    def test_buyer_observers_see_their_granted_units(self):
        service = AuctionService(SCENARIO, grace_window=1.0)
        buyers = [service.observe_buyer(b) for b in SCENARIO.overloaded]
        reports = service.run(rounds=4)
        granted = sum(
            1
            for report in reports
            for _, covered in report.transfers
            for buyer in covered
            if buyer in SCENARIO.overloaded
        )
        observed = sum(
            units
            for buyer in buyers
            for units in buyer.units_received.values()
        )
        assert granted > 0
        assert observed == granted

    def test_seller_agents_record_their_earnings(self):
        service = AuctionService(SCENARIO, grace_window=1.0)
        reports = service.run(rounds=4)
        paid = sum(
            winner.payment
            for report in reports
            if report.auction is not None
            for winner in report.auction.outcome.winners
        )
        earned = sum(
            amount
            for agent in service.sellers.values()
            for amount in agent.earnings.values()
        )
        assert paid > 0
        assert earned == pytest.approx(paid)


class TestValidation:
    def test_grace_window_and_wall_timeout_must_be_positive(self):
        platform = SCENARIO.build_platform()
        with pytest.raises(ConfigurationError, match="grace_window"):
            RoundOrchestrator(platform, InMemoryTransport(), grace_window=0.0)
        with pytest.raises(ConfigurationError, match="wall_timeout"):
            RoundOrchestrator(
                platform, InMemoryTransport(), wall_timeout=0.0
            )

    def test_seller_cannot_attach_twice(self):
        platform = SCENARIO.build_platform()
        orchestrator = RoundOrchestrator(platform, InMemoryTransport())
        orchestrator.attach_seller(3, "seller-3")
        with pytest.raises(ConfigurationError, match="already attached"):
            orchestrator.attach_seller(3, "elsewhere")
        assert orchestrator.attached_sellers == (3,)

    def test_connect_after_serving_starts_is_rejected(self):
        service = AuctionService(SCENARIO, grace_window=1.0)
        service.run(rounds=1)
        with pytest.raises(ConfigurationError, match="connect"):
            service.connect(3)
