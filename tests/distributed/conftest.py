"""Dist-suite fixtures: observability isolation for orchestrator metrics.

The orchestrator emits ``dist.*`` counters and trace events through the
global observability state; every test here starts from — and restores —
the disabled default so enabled tracers never leak across tests.
"""

import pytest

from repro.obs.runtime import _reset_for_tests


@pytest.fixture(autouse=True)
def _observability_reset():
    _reset_for_tests()
    yield
    _reset_for_tests()
