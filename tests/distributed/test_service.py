"""The redesigned serving API: facade, deprecation, CLI entry point."""

import asyncio
import warnings

import numpy as np
import pytest

import repro.api
from repro.cli import main
from repro.demand.estimator import DemandEstimator, DemandWeights
from repro.demand.indicators import RequestRateIndicator
from repro.dist import AuctionService, DistScenario, replay_scenario, serve
from repro.dist.messages import RoundOpen, Shutdown
from repro.edge.cloud import EdgeCloud
from repro.edge.network import build_backhaul
from repro.edge.platform import EdgePlatform
from repro.edge.users import build_user_population

pytestmark = pytest.mark.dist

SCENARIO = DistScenario(seed=5, horizon_rounds=3)


class TestServeFacade:
    def test_serve_is_exported_from_the_api_module(self):
        for name in (
            "serve",
            "AuctionService",
            "RoundOrchestrator",
            "AgentHandle",
            "DistScenario",
            "replay_scenario",
            "InMemoryTransport",
        ):
            assert name in repro.api.__all__
            assert hasattr(repro.api, name)

    def test_serve_returns_a_ready_service(self):
        service = serve(SCENARIO)
        assert isinstance(service, AuctionService)
        reports = service.run()
        assert len(reports) == SCENARIO.horizon_rounds
        assert service.reports is service.platform.reports
        assert service.ledger.is_budget_balanced

    def test_serve_defaults_grace_window_from_resilience_policy(self):
        from repro.faults import FaultPlan, LateBid, ResiliencePolicy

        scenario = DistScenario(
            seed=5,
            faults=FaultPlan(
                seed=1,
                late_bids=(
                    LateBid(probability=0.1, delay_range=(0.0, 1.0)),
                ),
            ),
            resilience=ResiliencePolicy(bid_timeout=2.5),
        )
        service = serve(scenario)
        assert service.orchestrator.grace_window == 2.5
        assert serve(SCENARIO).orchestrator.grace_window == 1.0

    def test_manual_agent_drives_its_own_seller(self):
        async def session():
            service = AuctionService(SCENARIO, grace_window=1.0)
            handle = service.connect(3)
            opened = []

            async def scripted_agent():
                while True:
                    envelope = await handle.next_message()
                    message = envelope.message
                    if isinstance(message, Shutdown):
                        return
                    if isinstance(message, RoundOpen):
                        opened.append(message.round_index)
                        handle.submit_bid(message)  # explicit decline

            task = asyncio.create_task(scripted_agent())
            reports = await service.serve_rounds(rounds=2)
            await task
            return opened, reports

        opened, reports = asyncio.run(session())
        assert len(reports) == 2
        assert opened  # the seller was genuinely consulted
        # seller 3 declined every round, so it never appears as a winner
        assert all(
            winner.bid.seller != 3
            for report in reports
            if report.auction is not None
            for winner in report.auction.outcome.winners
        )


class TestDeprecatedWiring:
    def _direct_pieces(self):
        rng = np.random.default_rng(5)
        clouds = [EdgeCloud(0, capacity=40.0), EdgeCloud(1, capacity=40.0)]
        network = build_backhaul(rng, n_clouds=2)
        users = build_user_population(
            rng,
            n_users=10,
            access_points=2,
            services=(1, 2),
            sensitive_rate=0.25,
            tolerant_rate=0.5,
        )
        estimator = DemandEstimator(
            weights=DemandWeights(waiting=2.0, processing=1.0, request_rate=1.0),
            request_rate=RequestRateIndicator(delta=0.5, neighbour_density=8.0),
            max_units=3,
        )
        return clouds, network, users, estimator, rng

    def test_create_path_is_silent_and_works(self):
        # The direct-wiring DeprecationWarning itself is covered in
        # tests/core/test_deprecations.py; here we assert the facade's
        # construction path (_create) runs the same loop without one.
        clouds, network, users, estimator, rng = self._direct_pieces()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            platform = EdgePlatform._create(
                clouds, network, users, estimator, rng=rng, horizon_rounds=2
            )
        reports = platform.run(2)
        assert len(reports) == 2

    def test_facade_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            serve(SCENARIO).run(rounds=1)
            replay_scenario(SCENARIO, rounds=1)
            SCENARIO.build_platform()


class TestServeCli:
    def test_serve_subcommand_reports_rounds_and_ledger(self, capsys):
        exit_code = main(["serve", "--rounds", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "served 2 rounds" in out
        assert "ledger:" in out
        assert "budget balanced: True" in out

    def test_serve_check_flag_asserts_determinism(self, capsys):
        exit_code = main(
            ["serve", "--rounds", "2", "--seed", "5", "--check"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "determinism check: async outcomes bit-identical" in out

    def test_serve_accepts_registry_mechanisms(self, capsys):
        exit_code = main(
            [
                "serve",
                "--rounds",
                "2",
                "--mechanism",
                "pay-as-bid",
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "mechanism pay-as-bid" in out

    def test_serve_rejects_bad_grace_window(self, capsys):
        exit_code = main(["serve", "--rounds", "1", "--grace", "-1"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "grace_window" in captured.err
