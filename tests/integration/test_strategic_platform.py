"""Integration: the platform loop under strategic bidding policies.

Runs identical deployments (same seeds, same workload) with truthful,
marked-up, and opportunistic seller populations and checks the
platform-level consequences: auctions still clear, IR still holds against
announced prices, and a uniformly marked-up population extracts higher
payments from the platform for the same service.
"""

import numpy as np
import pytest

from repro.demand.estimator import DemandEstimator, DemandWeights
from repro.demand.indicators import RequestRateIndicator
from repro.edge.cloud import EdgeCloud
from repro.edge.microservice import DelayClass, Microservice
from repro.edge.network import build_backhaul
from repro.edge.platform import EdgePlatform, PlatformConfig, TruthfulCostPolicy
from repro.edge.policies import MarkupPolicy, OpportunisticPolicy, RandomizedPolicy
from repro.edge.users import build_user_population


def build_platform(policy, seed=5):
    rng = np.random.default_rng(seed)
    clouds = [EdgeCloud(0, capacity=60.0), EdgeCloud(1, capacity=60.0)]
    for sid in range(1, 9):
        overloaded = sid in (1, 2)
        clouds[(sid - 1) % 2].host(
            Microservice(
                service_id=sid,
                delay_class=(
                    DelayClass.DELAY_SENSITIVE if overloaded
                    else DelayClass.DELAY_TOLERANT
                ),
                allocation=1.0 if overloaded else 6.0,
                base_demand=1.0 if overloaded else 2.0,
                share_capacity=None if overloaded else 12,
            )
        )
    users = build_user_population(
        rng,
        n_users=60,
        access_points=2,
        services=tuple(range(1, 9)),
        sensitive_rate=0.25,
        tolerant_rate=0.5,
    )
    estimator = DemandEstimator(
        weights=DemandWeights(waiting=2.0, processing=1.0, request_rate=1.0),
        request_rate=RequestRateIndicator(delta=0.5, neighbour_density=8.0),
        max_units=3,
    )
    return EdgePlatform._create(
        clouds,
        build_backhaul(rng, n_clouds=2),
        users,
        estimator,
        config=PlatformConfig(round_length=8.0, work_mean=0.5),
        bidding_policy=policy,
        rng=rng,
        horizon_rounds=5,
    )


POLICIES = {
    "truthful": TruthfulCostPolicy(),
    "markup": MarkupPolicy(markup=1.5),
    "opportunistic": OpportunisticPolicy(),
    "randomized": RandomizedPolicy(sigma=0.4),
}


class TestStrategicPlatforms:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_loop_completes_and_ir_holds(self, name):
        platform = build_platform(POLICIES[name])
        platform.run(5)
        for report in platform.reports:
            if report.auction is None:
                continue
            report.auction.outcome.verify()
            for winner in report.auction.outcome.winners:
                assert winner.payment >= winner.bid.price - 1e-9
        platform.finalize().verify_capacities()

    def test_markup_winners_extract_their_markup(self):
        # Within one run: every marked-up winner's payment covers not just
        # its true cost but the full 1.6x announcement — the platform pays
        # the distortion.  (Cross-run payment comparisons are meaningless
        # here: the feedback loop makes trajectories path-dependent.)
        marked = build_platform(MarkupPolicy(markup=1.6), seed=9)
        marked.run(5)
        winners_seen = 0
        for report in marked.reports:
            if report.auction is None:
                continue
            for winner in report.auction.outcome.winners:
                winners_seen += 1
                assert winner.bid.price >= 1.6 * winner.bid.cost - 1e-9
                assert winner.payment >= 1.6 * winner.bid.cost - 1e-9
        assert winners_seen > 0

    def test_budget_balance_regardless_of_policy(self):
        for name, policy in POLICIES.items():
            platform = build_platform(policy, seed=13)
            platform.run(5)
            if platform.ledger.total_paid > 0:
                assert platform.ledger.is_budget_balanced, name
