"""Integration tests: baseline mechanisms driving the full platform loop.

The refactor made the per-round auction pluggable — ``EdgePlatform``
accepts a registry name (or a prebuilt online mechanism) instead of
always running MSOA.  These tests run the whole Figure-2 stack with a
baseline in the auction slot and check the loop's invariants survive:
feasible rounds, capacity discipline, budget-balanced ledger, and
outcomes tagged with the mechanism that produced them.
"""

import numpy as np
import pytest

from repro.core.mechanism import OnlineMechanism
from repro.core.registry import make_online
from repro.errors import ConfigurationError
from tests.integration.test_platform import build_platform


def build_platform_with(mechanism, seed=5):
    """The standard two-cloud deployment, with a pluggable auction."""
    import repro.edge.platform as platform_mod

    base = build_platform(seed=seed)
    return platform_mod.EdgePlatform._create(
        list(base.clouds.values()),
        base.network,
        list(base.users),
        base.estimator,
        config=base.config,
        rng=np.random.default_rng(seed),
        horizon_rounds=4,
        mechanism=mechanism,
    )


class TestPlatformWithBaselineMechanism:
    def test_pay_as_bid_runs_the_full_loop(self):
        platform = build_platform_with("pay-as-bid")
        reports = platform.run(4)
        auctions = [r.auction for r in reports if r.auction is not None]
        assert auctions, "expected at least one auction round"
        cleared = [r for r in auctions if r.outcome.winners]
        assert cleared, "expected at least one cleared (non-skipped) round"
        for result in auctions:
            assert result.outcome.mechanism == "pay-as-bid"
        for result in cleared:
            result.outcome.verify()
            # Pay-as-bid pays exactly the announced price.
            for winner in result.outcome.winners:
                assert winner.payment == pytest.approx(winner.bid.price)

    def test_finalize_tags_online_outcome(self):
        platform = build_platform_with("pay-as-bid")
        platform.run(4)
        online = platform.finalize()
        assert online.mechanism == "pay-as-bid"
        online.verify_capacities()

    def test_greedy_baseline_respects_share_capacities(self):
        platform = build_platform_with("greedy-cheapest-price")
        platform.run(4)
        online = platform.finalize()
        assert online.mechanism == "greedy-cheapest-price"
        online.verify_capacities()

    def test_ledger_stays_budget_balanced_under_baseline(self):
        platform = build_platform_with("pay-as-bid")
        platform.run(4)
        ledger = platform.ledger
        if ledger.total_paid > 0:
            assert ledger.is_budget_balanced
            assert ledger.total_charged == pytest.approx(ledger.total_paid)

    def test_msoa_by_name_matches_default(self):
        by_name = build_platform_with("msoa", seed=11)
        default = build_platform_with(None, seed=11)
        costs_by_name = [r.social_cost for r in by_name.run(3)]
        costs_default = [r.social_cost for r in default.run(3)]
        assert costs_by_name == pytest.approx(costs_default)

    def test_prebuilt_online_mechanism_used_as_is(self):
        base = build_platform(seed=5)
        capacities = {
            sid: s.share_capacity
            for sid, s in base._services.items()
            if s.share_capacity is not None
        }
        prebuilt = make_online("pay-as-bid", capacities, on_infeasible="skip")
        platform = build_platform_with(prebuilt)
        assert platform.auction is prebuilt
        assert isinstance(platform.auction, OnlineMechanism)
        platform.run(3)
        assert platform.finalize().mechanism == "pay-as-bid"

    def test_unknown_mechanism_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mechanism"):
            build_platform_with("made-up-auction")

    def test_horizon_benchmark_rejected_as_platform_mechanism(self):
        with pytest.raises(ConfigurationError, match="cannot"):
            build_platform_with("offline-milp")
