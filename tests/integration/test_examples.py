"""Smoke tests: every example script runs cleanly as `python examples/X.py`.

The examples are the library's front door; a release where any of them
crashes is broken regardless of the unit suite.  Each script ends with
internal assertions of its headline claim, so a clean exit is meaningful.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_every_example_has_module_docstring():
    for script in EXAMPLES:
        source = script.read_text()
        assert source.lstrip().startswith(('"""', "#!")), script.name


def test_at_least_four_examples_exist():
    assert len(EXAMPLES) >= 4
