"""Integration tests: the full platform loop of Figure 2.

These exercise the whole stack — DES simulator → metrics → demand
estimator → bid collection → MSOA round → resource transfer → ledger —
on a small two-cloud deployment.
"""

import numpy as np
import pytest

from repro.demand.estimator import DemandEstimator, DemandWeights
from repro.demand.indicators import RequestRateIndicator
from repro.edge.cloud import EdgeCloud
from repro.edge.microservice import DelayClass, Microservice
from repro.edge.network import build_backhaul
from repro.edge.platform import EdgePlatform, PlatformConfig
from repro.edge.users import build_user_population


def build_platform(
    seed=5,
    horizon_rounds=4,
    n_services=8,
    overload_targets=(1, 2),
    **platform_kwargs,
):
    """A two-cloud deployment where a couple of services are overloaded.

    Extra keyword arguments go to :class:`EdgePlatform` verbatim (e.g.
    ``mechanism=``, ``faults=``, ``resilience=``)."""
    rng = np.random.default_rng(seed)
    clouds = [EdgeCloud(0, capacity=60.0), EdgeCloud(1, capacity=60.0)]
    services = []
    for sid in range(1, n_services + 1):
        overloaded = sid in overload_targets
        service = Microservice(
            service_id=sid,
            delay_class=(
                DelayClass.DELAY_SENSITIVE if overloaded
                else DelayClass.DELAY_TOLERANT
            ),
            allocation=1.0 if overloaded else 6.0,
            base_demand=1.0 if overloaded else 2.0,
            share_capacity=None if overloaded else 12,
        )
        clouds[(sid - 1) % 2].host(service)
        services.append(service)
    network = build_backhaul(rng, n_clouds=2)
    # Low per-user rates so only the under-allocated services fall behind;
    # the well-provisioned majority stays idle enough to act as sellers.
    users = build_user_population(
        rng,
        n_users=60,
        access_points=2,
        services=tuple(s.service_id for s in services),
        sensitive_rate=0.25,
        tolerant_rate=0.5,
    )
    # Damp Eq. 2's t-growth (Δ and V(n̄) are free constants in the paper)
    # so only genuinely saturated services register demand.
    estimator = DemandEstimator(
        weights=DemandWeights(waiting=2.0, processing=1.0, request_rate=1.0),
        request_rate=RequestRateIndicator(delta=0.5, neighbour_density=8.0),
        max_units=3,
    )
    return EdgePlatform._create(
        clouds,
        network,
        users,
        estimator,
        config=PlatformConfig(round_length=8.0, work_mean=0.5),
        rng=rng,
        horizon_rounds=horizon_rounds,
        **platform_kwargs,
    )


class TestPlatformLoop:
    def test_rounds_produce_reports(self):
        platform = build_platform()
        reports = platform.run(3)
        assert len(reports) == 3
        assert [r.round_index for r in reports] == [0, 1, 2]
        for report in reports:
            assert len(report.snapshots) == 8

    def test_overloaded_services_generate_demand(self):
        platform = build_platform()
        reports = platform.run(4)
        demanded = set()
        for report in reports:
            demanded |= set(report.demand_units)
        assert demanded  # somebody asked for resources

    def test_auction_rounds_are_feasible_and_paid(self):
        platform = build_platform()
        reports = platform.run(4)
        auctions = [r.auction for r in reports if r.auction is not None]
        assert auctions, "expected at least one auction round"
        for result in auctions:
            result.outcome.verify()
            for winner in result.outcome.winners:
                assert winner.payment >= winner.bid.price - 1e-9

    def test_transfers_conserve_cloud_capacity(self):
        platform = build_platform()
        before = {
            cid: cloud.allocated for cid, cloud in platform.clouds.items()
        }
        platform.run(4)
        for cid, cloud in platform.clouds.items():
            assert cloud.allocated == pytest.approx(before[cid], abs=1e-6)
            assert cloud.allocated <= cloud.capacity + 1e-6

    def test_sellers_never_exceed_share_capacity(self):
        platform = build_platform()
        platform.run(4)
        online = platform.finalize()
        online.verify_capacities()

    def test_ledger_budget_balance(self):
        platform = build_platform()
        platform.run(4)
        ledger = platform.ledger
        if ledger.total_paid > 0:
            assert ledger.is_budget_balanced
            assert ledger.total_charged == pytest.approx(ledger.total_paid)

    def test_social_cost_accumulates(self):
        platform = build_platform()
        platform.run(4)
        assert platform.total_social_cost == pytest.approx(
            sum(r.social_cost for r in platform.reports)
        )

    def test_deterministic_under_seed(self):
        a = build_platform(seed=11)
        b = build_platform(seed=11)
        ra = a.run(3)
        rb = b.run(3)
        assert [r.social_cost for r in ra] == pytest.approx(
            [r.social_cost for r in rb]
        )

    def test_different_seeds_differ(self):
        a = build_platform(seed=11)
        b = build_platform(seed=12)
        costs_a = [r.social_cost for r in a.run(4)]
        costs_b = [r.social_cost for r in b.run(4)]
        assert costs_a != costs_b or [
            len(r.demand_units) for r in a.reports
        ] != [len(r.demand_units) for r in b.reports]
