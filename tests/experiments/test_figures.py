"""Tests for the experiment harness (tiny sweeps, shape assertions).

Each figure function runs on a miniature configuration so the tests stay
fast; the assertions target the *qualitative* shapes the paper reports
(the full-scale numbers live in the benchmarks and EXPERIMENTS.md).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import fig3a, fig3b, fig4a, fig4b, fig5a, fig6a, fig6b
from repro.experiments.runner import (
    build_horizon_scenario,
    build_single_round,
    mean_over_seeds,
)
from repro.errors import ConfigurationError
from repro.workload.scenarios import PAPER_DEFAULTS

TINY = ExperimentConfig(
    seeds=(11, 23),
    microservice_counts=(25, 45),
    request_levels=(100, 200),
    rounds_axis=(2, 4),
    bids_axis=(1, 2),
    horizon_rounds=3,
)


class TestRunner:
    def test_mean_over_seeds_skips_nan(self):
        values = {1: 2.0, 2: float("nan"), 3: 4.0}
        assert mean_over_seeds((1, 2, 3), values.get) == pytest.approx(3.0)

    def test_mean_over_seeds_all_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_over_seeds((1, 2), lambda s: float("nan"))

    def test_single_round_deterministic(self):
        a = build_single_round(PAPER_DEFAULTS, 5)
        b = build_single_round(PAPER_DEFAULTS, 5)
        assert a.bids == b.bids

    def test_horizon_scenario_consistent_views(self):
        scenario = build_horizon_scenario(
            PAPER_DEFAULTS, 7, estimation_sigma=0.3
        )
        assert len(scenario.rounds_true) == PAPER_DEFAULTS.rounds
        for true, est in zip(scenario.rounds_true, scenario.rounds_estimated):
            assert true.bids == est.bids
            # Conservative estimation: estimated >= true where both defined.
            for buyer, units in est.demand.items():
                assert units >= 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(seeds=())
        with pytest.raises(ConfigurationError):
            ExperimentConfig(horizon_rounds=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(capacity_relaxation=0.5)


class TestFig3a:
    def test_shape(self):
        table = fig3a(TINY)
        assert len(table.rows) == 4  # 2 counts × 2 J values
        for row in table.rows:
            assert 1.0 - 1e-9 <= row["ratio"] <= row["bound_WXi"] + 1e-9

    def test_single_bid_close_to_optimal(self):
        table = fig3a(TINY)
        single = [r["ratio"] for r in table.rows if r["bids_per_seller"] == 1]
        assert all(r <= 1.35 for r in single)


class TestFig3b:
    def test_payment_cost_optimal_ordering(self):
        table = fig3b(TINY)
        for row in table.rows:
            assert row["total_payment"] >= row["social_cost"] - 1e-9
            assert row["social_cost"] >= row["optimal_cost"] - 1e-9

    def test_more_requests_cost_more(self):
        table = fig3b(TINY)
        by_count: dict[int, dict[int, float]] = {}
        for row in table.rows:
            by_count.setdefault(row["microservices"], {})[row["requests"]] = row[
                "social_cost"
            ]
        for costs in by_count.values():
            assert costs[200] > costs[100]


class TestFig4a:
    def test_every_payment_covers_price(self):
        table = fig4a(TINY)
        assert table.rows
        for row in table.rows:
            assert row["payment_covers_price"] is True
            assert row["payment"] >= row["price"] - 1e-9


class TestFig4b:
    def test_runtimes_positive_and_under_a_second(self):
        table = fig4b(TINY, repeats=2)
        for row in table.rows:
            assert 0 < row["runner_up_ms"] < 1000
            assert 0 < row["critical_rerun_ms"] < 5000


class TestFig5a:
    def test_ratios_at_least_one_and_da_beats_base(self):
        table = fig5a(TINY)
        for row in table.rows:
            for name in ("MSOA", "MSOA-DA", "MSOA-RC", "MSOA-OA"):
                assert row[name] >= 1.0 - 0.05
            assert row["MSOA-DA"] <= row["MSOA"] + 0.05


class TestFig6a:
    def test_ratio_defined_for_every_cell(self):
        table = fig6a(TINY)
        assert len(table.rows) == 4  # 2 rounds × 2 J
        for row in table.rows:
            assert row["ratio"] >= 1.0 - 0.05


class TestFig6b:
    def test_cost_ordering(self):
        table = fig6b(TINY)
        for row in table.rows:
            assert row["total_payment"] >= row["social_cost"] - 1e-9
            assert row["social_cost"] >= row["offline_optimal"] - 1e-6


class TestReport:
    def test_build_and_render_tiny_report(self):
        from repro.experiments.report import build_report, render_report

        reports = build_report(TINY)
        assert len(reports) == 7
        text = render_report(reports)
        for panel in ("3(a)", "3(b)", "4(a)", "4(b)", "5(a)", "6(a)", "6(b)"):
            assert f"Figure {panel}" in text
        assert "PASS" in text
        # Shape checks that encode theorem guarantees must never fail.
        for report in reports:
            for check in report.checks:
                if "Thm" in check.claim or "IR" in check.claim:
                    assert check.passed, (report.panel, check.claim)
