"""Tests for the results-embedding and sweep scripts."""

import importlib.util
import pathlib
import sys


def load_script(name):
    root = pathlib.Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(name, root / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestEmbedResults:
    def test_embeds_and_is_idempotent(self, tmp_path):
        embed = load_script("scripts_embed_results").embed
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig9z.txt").write_text("title\ncol\n---\n1\n")
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("before\n\n<!-- RESULTS:fig9z -->\n\nafter\n")
        count = embed(doc, results)
        assert count == 1
        text = doc.read_text()
        assert "```\ntitle" in text
        assert "after" in text
        # Refresh with new numbers: the old block is replaced, not stacked.
        (results / "fig9z.txt").write_text("title\ncol\n---\n2\n")
        count = embed(doc, results)
        assert count == 1
        text = doc.read_text()
        assert text.count("```") == 2
        assert "---\n2" in text and "---\n1" not in text

    def test_missing_table_keeps_marker(self, tmp_path):
        embed = load_script("scripts_embed_results").embed
        (tmp_path / "results").mkdir()
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("<!-- RESULTS:fig8x -->\n")
        assert embed(doc, tmp_path / "results") == 0
        assert "<!-- RESULTS:fig8x -->" in doc.read_text()

    def test_real_experiments_md_has_markers_or_tables(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        text = (root / "EXPERIMENTS.md").read_text()
        for panel in ("fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig6a", "fig6b"):
            assert f"<!-- RESULTS:{panel} -->" in text


class TestApiDocsScript:
    def test_builder_produces_markdown(self):
        build = load_script("scripts_build_api_docs").build
        text = build()
        assert text.startswith("# API reference")
        assert "## `repro.core.ssam`" in text
        assert "run_ssam" in text
