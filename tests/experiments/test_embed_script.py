"""Tests for the results-embedding and sweep scripts."""

import importlib.util
import pathlib
import sys


def load_script(name):
    root = pathlib.Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(name, root / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestEmbedResults:
    def test_embeds_and_is_idempotent(self, tmp_path):
        embed = load_script("scripts_embed_results").embed
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig9z.txt").write_text("title\ncol\n---\n1\n")
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("before\n\n<!-- RESULTS:fig9z -->\n\nafter\n")
        count = embed(doc, results)
        assert count == 1
        text = doc.read_text()
        assert "```\ntitle" in text
        assert "after" in text
        # Refresh with new numbers: the old block is replaced, not stacked.
        (results / "fig9z.txt").write_text("title\ncol\n---\n2\n")
        count = embed(doc, results)
        assert count == 1
        text = doc.read_text()
        assert text.count("```") == 2
        assert "---\n2" in text and "---\n1" not in text

    def test_missing_table_keeps_marker(self, tmp_path):
        embed = load_script("scripts_embed_results").embed
        (tmp_path / "results").mkdir()
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("<!-- RESULTS:fig8x -->\n")
        assert embed(doc, tmp_path / "results") == 0
        assert "<!-- RESULTS:fig8x -->" in doc.read_text()

    def test_real_experiments_md_has_markers_or_tables(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        text = (root / "EXPERIMENTS.md").read_text()
        for panel in ("fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig6a", "fig6b"):
            assert f"<!-- RESULTS:{panel} -->" in text


class TestApiDocsScript:
    def test_builder_produces_markdown(self):
        build = load_script("scripts_build_api_docs").build
        text = build()
        assert text.startswith("# API reference")
        assert "## `repro.core.ssam`" in text
        assert "run_ssam" in text


class TestApiDocsDrift:
    def test_generated_reference_is_current(self):
        """docs/api_reference.md must match a fresh build (the CI docs
        gate): regenerate with ``python scripts_build_api_docs.py``."""
        root = pathlib.Path(__file__).resolve().parents[2]
        build = load_script("scripts_build_api_docs").build
        on_disk = (root / "docs" / "api_reference.md").read_text()
        assert build() == on_disk, (
            "docs/api_reference.md is stale; run "
            "`python scripts_build_api_docs.py`"
        )


class TestDocsLinkChecker:
    def test_repo_docs_have_no_broken_links(self):
        checker = load_script("scripts_check_docs_links")
        problems = [
            issue
            for path in checker.CHECKED
            for issue in checker.check_file(path)
        ]
        assert problems == []

    def test_checker_catches_rot(self, tmp_path):
        checker = load_script("scripts_check_docs_links")
        page = tmp_path / "page.md"
        page.write_text(
            "# Title\n\n[gone](missing.md) [bad](#no-such-heading)\n"
            "[ok](#title)\n",
            encoding="utf-8",
        )
        old_root = checker.ROOT
        checker.ROOT = tmp_path
        try:
            problems = checker.check_file(page)
        finally:
            checker.ROOT = old_root
        assert len(problems) == 2
        assert any("missing.md" in p for p in problems)
        assert any("no-such-heading" in p for p in problems)

    def test_code_fences_and_external_urls_are_skipped(self, tmp_path):
        checker = load_script("scripts_check_docs_links")
        page = tmp_path / "page.md"
        page.write_text(
            "# T\n\n```\n[not a link](nowhere.md)\n```\n"
            "[ext](https://example.com/x) [mail](mailto:a@b.c)\n"
            "and `[inline code](also-not-a-link.md)` stays out too\n",
            encoding="utf-8",
        )
        old_root = checker.ROOT
        checker.ROOT = tmp_path
        try:
            problems = checker.check_file(page)
        finally:
            checker.ROOT = old_root
        assert problems == []

    def test_duplicate_headings_get_numbered_anchors(self, tmp_path):
        checker = load_script("scripts_check_docs_links")
        page = tmp_path / "page.md"
        page.write_text(
            "# Setup\n\n## Setup\n\n"
            "[first](#setup) [second](#setup-1) [gone](#setup-2)\n",
            encoding="utf-8",
        )
        old_root = checker.ROOT
        checker.ROOT = tmp_path
        try:
            problems = checker.check_file(page)
        finally:
            checker.ROOT = old_root
        assert len(problems) == 1
        assert "setup-2" in problems[0]

    def test_html_anchors_count(self, tmp_path):
        checker = load_script("scripts_check_docs_links")
        page = tmp_path / "page.md"
        page.write_text(
            '# T\n\n<a id="pinned"></a>\n<a name="named">x</a>\n\n'
            "[a](#pinned) [b](#named) [c](#unpinned)\n",
            encoding="utf-8",
        )
        old_root = checker.ROOT
        checker.ROOT = tmp_path
        try:
            problems = checker.check_file(page)
        finally:
            checker.ROOT = old_root
        assert len(problems) == 1
        assert "unpinned" in problems[0]

    def test_reference_style_links(self, tmp_path):
        checker = load_script("scripts_check_docs_links")
        (tmp_path / "real.md").write_text("# Real\n", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            "# T\n\nSee [the page][ok], [case][OK], [itself][], "
            "and [nothing][undefined].\n\n"
            "[ok]: real.md\n[itself]: #t\n[rotten]: missing.md\n",
            encoding="utf-8",
        )
        old_root = checker.ROOT
        checker.ROOT = tmp_path
        try:
            problems = checker.check_file(page)
        finally:
            checker.ROOT = old_root
        # Two offenders: the dangling [undefined] usage and the rotten
        # definition target; defined labels match case-insensitively and
        # collapsed [itself][] resolves through its own text.
        assert len(problems) == 2
        assert any("undefined" in p for p in problems)
        assert any("missing.md" in p for p in problems)
