"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in FIGURES:
            assert f"fig {key}" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "SSAM social cost" in out
        assert "competitive bound" in out

    def test_unknown_panel_errors(self, capsys):
        assert main(["fig", "9z"]) == 2
        assert "unknown figure panel" in capsys.readouterr().err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_quick_flag_parsed(self):
        args = build_parser().parse_args(["fig", "3a", "--quick"])
        assert args.panel == "3a" and args.quick is True

    def test_fig_parallelism_flag_parsed(self):
        args = build_parser().parse_args(["fig", "4b", "--parallelism", "4"])
        assert args.parallelism == 4
        assert build_parser().parse_args(["fig", "4b"]).parallelism == "auto"
        args = build_parser().parse_args(["fig", "4b", "--parallelism", "auto"])
        assert args.parallelism == "auto"

    def test_bench_flags_parsed(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--parallelism", "2", "--out", "x.json"]
        )
        assert args.quick is True
        assert args.parallelism == 2
        assert args.out == "x.json"
        # --out defaults to None; _cmd_bench resolves it per tier
        # (BENCH_engine.json, or BENCH_scale.json under --scale).
        bare = build_parser().parse_args(["bench"])
        assert bare.out is None
        assert bare.scale is False and bare.against is None
        scaled = build_parser().parse_args(
            ["bench", "--scale", "--against", "base.json"]
        )
        assert scaled.scale is True
        assert scaled.against == "base.json"

    def test_all_figures_registered(self):
        assert set(FIGURES) == {"3a", "3b", "4a", "4b", "5a", "6a", "6b"}

    def test_invalid_parallelism_reports_cleanly(self, capsys):
        # Configuration errors surface as one-line messages, not
        # tracebacks, on every subcommand.
        assert main(["fig", "4a", "--parallelism", "0"]) == 2
        assert "parallelism" in capsys.readouterr().err
        assert main(["bench", "--quick", "--parallelism", "0"]) == 2
        assert "parallelism" in capsys.readouterr().err


class TestFigureExecution:
    def test_fig4a_runs_quick(self, capsys):
        # 4a is the cheapest panel: a single auction round.
        assert main(["fig", "4a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "payment" in out


class TestBenchCommand:
    def test_bench_writes_payload(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.experiments import bench_engine
        from repro.workload.bidgen import MarketConfig

        monkeypatch.setattr(
            bench_engine,
            "default_cases",
            lambda *, quick=False: [
                bench_engine.EngineBenchCase(
                    name="tiny",
                    config=MarketConfig(n_sellers=8, n_buyers=3),
                    repeats=1,
                )
            ],
        )
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "engine bench" in printed and str(out) in printed
        payload = json.loads(out.read_text())
        assert payload["bench"] == "engine"
        assert payload["cases"][0]["equivalent"] is True


class TestMechanismCommands:
    def test_mechanisms_lists_the_registry(self, capsys):
        from repro.core.registry import list_mechanisms

        assert main(["mechanisms"]) == 0
        out = capsys.readouterr().out
        for name in list_mechanisms():
            assert name in out
        assert "critical-value" in out and "clarke-pivot" in out

    def test_run_default_is_ssam(self, capsys):
        assert main(["run"]) == 0
        out = capsys.readouterr().out
        assert "ssam on one paper-default round" in out
        assert "social cost" in out and "winners" in out

    def test_run_dispatches_a_baseline(self, capsys):
        assert main(["run", "--mechanism", "pay-as-bid"]) == 0
        out = capsys.readouterr().out
        assert "pay-as-bid" in out

    def test_run_online_mechanism_over_horizon(self, capsys):
        assert main(["run", "--mechanism", "msoa", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "msoa over 2 rounds" in out

    def test_run_horizon_benchmark(self, capsys):
        assert main(
            ["run", "--mechanism", "offline-greedy", "--rounds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "offline-greedy over 2 rounds" in out and "exact=" in out

    def test_run_writes_outcome_with_mechanism_tag(self, tmp_path, capsys):
        from repro.experiments.storage import load_outcome

        out_path = tmp_path / "vcg.json"
        assert main(
            ["run", "--mechanism", "vcg", "--out", str(out_path)]
        ) == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        assert load_outcome(out_path).mechanism == "vcg"

    def test_run_out_rejected_for_horizon_benchmarks(self, tmp_path, capsys):
        out_path = tmp_path / "offline.json"
        assert main(
            [
                "run", "--mechanism", "offline-greedy",
                "--rounds", "2", "--out", str(out_path),
            ]
        ) == 2
        assert "not supported" in capsys.readouterr().err
        assert not out_path.exists()

    def test_run_unknown_mechanism_reports_cleanly(self, capsys):
        assert main(["run", "--mechanism", "nope"]) == 2
        assert "unknown mechanism" in capsys.readouterr().err

    def test_fig_engine_flag_parsed(self):
        args = build_parser().parse_args(["fig", "4a", "--engine", "reference"])
        assert args.engine == "reference"
        assert build_parser().parse_args(["fig", "4a"]).engine == "fast"

    def test_fig_runs_on_reference_engine(self, capsys):
        assert main(["fig", "4a", "--quick", "--engine", "reference"]) == 0
        assert "Figure 4(a)" in capsys.readouterr().out


class TestExtraCommands:
    def test_compare_prints_mechanism_table(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "VCG" in out and "SSAM" in out and "posted@35" in out

    def test_trace_prints_sparklines(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "demand" in out and "cost" in out

    def test_explain_narrates_an_auction(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "winners cover" in out
        assert "truthfulness premium" in out


class TestVerifyCommand:
    def test_verify_minimal_invocation_exits_zero(self, capsys):
        assert main(["verify", "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "ssam" in out

    def test_verify_unknown_mechanism_reports_cleanly(self, capsys):
        assert main(["verify", "--mechanism", "nope", "--instances", "3"]) == 2
        assert "unknown mechanism" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_flags_parsed_on_all_instrumented_subcommands(self):
        for command in (["run"], ["fig", "4a"], ["bench"], ["verify"]):
            args = build_parser().parse_args(
                command + ["--trace", "t.jsonl", "--metrics", "m.json"]
            )
            assert args.trace == "t.jsonl"
            assert args.metrics == "m.json"
            defaults = build_parser().parse_args(command)
            assert defaults.trace is None and defaults.metrics is None

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import read_trace, summarize

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["run", "--trace", str(trace), "--metrics", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote trace {trace}" in out
        assert f"wrote metrics {metrics}" in out
        records = read_trace(trace)
        assert records[0]["kind"] == "header"
        summary = summarize(trace)
        assert summary.truncated is False
        assert len(summary.auctions) == 1
        import json

        payload = json.loads(metrics.read_text())
        assert payload["counters"]["ssam.runs"] == 1.0

    def test_run_online_trace_reconstructs_rounds(self, tmp_path, capsys):
        from repro.obs import summarize

        trace = tmp_path / "msoa.jsonl"
        assert main(
            [
                "run", "--mechanism", "msoa", "--rounds", "2",
                "--trace", str(trace),
            ]
        ) == 0
        summary = summarize(trace)
        assert [r.round_index for r in summary.rounds] == [0, 1]
        printed = capsys.readouterr().out
        assert f"social cost   {summary.social_cost:.2f}" in printed

    def test_unwritable_trace_path_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "t.jsonl"
        assert main(["run", "--trace", str(target)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot open trace" in err

    def test_unwritable_metrics_path_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "m.json"
        assert main(["run", "--metrics", str(target)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cannot write metrics" in err

    def test_flags_leave_observability_disabled_after_exit(self, tmp_path):
        from repro.obs import is_enabled

        assert main(["run", "--trace", str(tmp_path / "t.jsonl")]) == 0
        assert is_enabled() is False

    def test_trace_flag_never_changes_printed_results(self, tmp_path, capsys):
        assert main(["run", "--seed", "13"]) == 0
        untraced = capsys.readouterr().out
        assert main(
            ["run", "--seed", "13", "--trace", str(tmp_path / "t.jsonl")]
        ) == 0
        traced = capsys.readouterr().out
        assert traced.startswith(untraced.rsplit("\n", 1)[0].rstrip())
