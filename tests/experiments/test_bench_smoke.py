"""Benchmark smoke tier: every ``benchmarks/bench_*.py`` must stay runnable.

The benchmark harness lives outside the tier-1 testpaths, so an API change
could silently break it between nightly runs.  This module imports every
bench entry point and executes it once on a tiny sweep (one seed, the
smallest market axes) with stub fixtures replacing pytest-benchmark: the
timing loop collapses to a single call, and the result tables go nowhere.
Slow by marker — the quick signal skips it, CI runs it.
"""

import importlib.util
import inspect
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
BENCH_MODULES = sorted(BENCH_DIR.glob("bench_*.py"))

#: One seed, smallest axes: each bench runs its sweep once, end to end.
#: Both request levels stay — the figure-3b/6b panels assert the 200-level
#: series dominates the 100-level one.
TINY_SWEEP = ExperimentConfig(
    seeds=(11,),
    microservice_counts=(25,),
    request_levels=(100, 200),
    rounds_axis=(1, 3),
    bids_axis=(1, 2),
    horizon_rounds=2,
)

pytestmark = pytest.mark.slow


class _BenchmarkStub:
    """pytest-benchmark's callable protocol, minus the timing loop."""

    def __init__(self):
        self.extra_info = {}

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, **_ignored):
        return fn(*args, **(kwargs or {}))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"bench_smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_functions(module):
    return [
        fn
        for name, fn in sorted(vars(module).items())
        if name.startswith("test_") and callable(fn)
    ]


def test_bench_modules_discovered():
    # The glob must keep finding the harness; an empty discovery would
    # make the parametrized smoke test below vacuously green.
    assert len(BENCH_MODULES) >= 10


@pytest.mark.parametrize(
    "path", BENCH_MODULES, ids=[p.stem for p in BENCH_MODULES]
)
def test_bench_entry_point_runs_on_tiny_sweep(path, capsys):
    module = _load(path)
    functions = _bench_functions(module)
    assert functions, f"{path.name} defines no test_ entry point"
    fixtures = {
        "benchmark": _BenchmarkStub(),
        "sweep_config": TINY_SWEEP,
        "show": lambda table: None,
        "capsys": capsys,
    }
    for fn in functions:
        parameters = inspect.signature(fn).parameters
        unknown = set(parameters) - set(fixtures)
        assert not unknown, (
            f"{path.name}:{fn.__name__} requests fixtures the smoke tier "
            f"does not stub: {sorted(unknown)}"
        )
        fn(**{name: fixtures[name] for name in parameters})
