"""Unit tests for the columnar scale-bench tier and its regression gate."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.bench_scale import (
    MsoaScaleCase,
    ScaleBenchCase,
    ShardScaleCase,
    check_scale_regression,
    default_scale_cases,
    default_shard_case,
    load_scale_bench,
    render_scale_bench,
    run_scale_bench,
    write_scale_bench,
)
from repro.shard.streaming import StreamConfig
from repro.workload.bidgen import MarketConfig

TINY = ScaleBenchCase(
    name="tiny",
    config=MarketConfig(n_sellers=10, n_buyers=3),
    repeats=1,
)
TINY_NO_REF = ScaleBenchCase(
    name="tiny_no_ref",
    config=MarketConfig(n_sellers=10, n_buyers=3),
    repeats=1,
    time_reference=False,
)
TINY_MSOA = MsoaScaleCase(
    name="tiny_msoa",
    config=MarketConfig(n_sellers=10, n_buyers=3),
    rounds=3,
    repeats=1,
)
TINY_SHARD = ShardScaleCase(
    name="tiny_shard",
    config=StreamConfig(
        rounds=2,
        regions=2,
        buyers_per_region=4,
        sellers_per_region=12,
        demand_range=(1, 2),
        cross_region_fraction=0.0,
    ),
    repeats=1,
)

_BASE_PAYLOAD: dict = {}


def tiny_payload() -> dict:
    # The tiny bench is deterministic; run it once and hand each test
    # its own deep copy (tests mutate their payloads).
    if not _BASE_PAYLOAD:
        _BASE_PAYLOAD.update(
            run_scale_bench(
                cases=[TINY, TINY_NO_REF],
                msoa_case=TINY_MSOA,
                shard_case=TINY_SHARD,
            )
        )
    return json.loads(json.dumps(_BASE_PAYLOAD))


class TestCases:
    def test_quick_drops_only_the_largest_case(self):
        quick_cases, quick_msoa = default_scale_cases(quick=True)
        full_cases, full_msoa = default_scale_cases()
        assert {c.name for c in quick_cases} == {"scale_10k"}
        assert {c.name for c in full_cases} == {"scale_10k", "scale_100k"}
        # The shared cases must be configured identically so the CI
        # regression gate compares like with like.
        assert quick_cases[0] == full_cases[0]
        assert quick_msoa == full_msoa

    def test_full_tier_reaches_the_target_scales(self):
        full_cases, _ = default_scale_cases()
        by_name = {c.name: c for c in full_cases}
        ten_k = by_name["scale_10k"]
        hundred_k = by_name["scale_100k"]
        assert ten_k.config.n_sellers * ten_k.config.bids_per_seller == 10_000
        assert (
            hundred_k.config.n_sellers * hundred_k.config.bids_per_seller
            == 100_000
        )
        assert ten_k.time_reference and not hundred_k.time_reference

    def test_default_shard_case_hits_one_million_units(self):
        full = default_shard_case()
        assert full.name == "shard_1m"
        assert full.config.expected_demand_units == 1_000_000
        # The full tier skips the unsharded twin (it would double an
        # already long run); the quick tier keeps it for the CI
        # equivalence check.
        assert not full.compare_unsharded
        quick = default_shard_case(quick=True)
        assert quick.name == "shard_quick"
        assert quick.compare_unsharded

    def test_default_shard_case_forwards_overrides(self):
        case = default_shard_case(quick=True, shards=4, strategy="hash")
        assert case.shards == 4
        assert case.strategy == "hash"


class TestRun:
    def test_payload_schema_and_equivalence(self):
        payload = tiny_payload()
        assert payload["bench"] == "scale"
        ref_row, no_ref_row = payload["cases"]
        assert ref_row["equivalent"] is True
        assert ref_row["reference_ms"] > 0
        assert ref_row["speedup_columnar"] > 0
        assert ref_row["fast_payment_ms"] > 0
        assert ref_row["batched_payment_ms"] > 0
        assert no_ref_row["reference_ms"] is None
        assert no_ref_row["speedup_columnar"] is None
        assert no_ref_row["columnar_vs_fast"] > 0
        msoa = payload["msoa"]
        assert msoa["equivalent"] is True
        assert msoa["incremental_ms_per_round"] > 0
        assert msoa["cold_ms_per_round"] > 0
        assert msoa["rounds"] == 3

    def test_shard_payload_schema(self):
        shard = tiny_payload()["shard"]
        assert shard["case"] == "tiny_shard"
        assert shard["rounds"] == 2
        assert shard["shards"] == 2
        assert shard["strategy"] == "region"
        assert shard["demand_units"] > 0
        assert shard["auctions_per_sec"] > 0
        assert shard["p99_round_ms"] >= shard["mean_round_ms"] > 0
        assert shard["clamped_shards"] == 0
        # compare_unsharded=True: the twin ran and winner sets matched.
        assert shard["equivalent"] is True
        assert shard["sharded_speedup"] > 0

    def test_write_load_roundtrip_and_render(self, tmp_path):
        payload = tiny_payload()
        target = write_scale_bench(payload, tmp_path / "scale.json")
        assert load_scale_bench(target) == json.loads(json.dumps(payload))
        rendered = render_scale_bench(payload)
        assert "tiny" in rendered and "tiny_msoa" in rendered
        assert "tiny_shard" in rendered
        assert "auctions/sec" in rendered
        # The reference-free case renders a placeholder, not a crash.
        assert "-" in rendered

    def test_render_against_baseline_covers_every_case(self):
        # The comparison table must be the *union* of gated case names:
        # cases new to the payload are marked, retired baseline cases
        # still show up as absent — nothing is silently skipped.
        payload = tiny_payload()
        baseline = json.loads(json.dumps(payload))
        baseline["shard"]["case"] = "retired_shard"
        rendered = render_scale_bench(payload, baseline=baseline)
        assert "vs baseline" in rendered
        for name in ("tiny", "tiny_no_ref", "tiny_msoa"):
            assert name in rendered
        assert "tiny_shard" in rendered and "(new)" in rendered
        assert "retired_shard" in rendered and "absent" in rendered

    def test_render_without_baseline_has_no_comparison(self):
        rendered = render_scale_bench(tiny_payload())
        assert "vs baseline" not in rendered

    def test_load_rejects_non_scale_payloads(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"bench": "engine"}))
        with pytest.raises(ConfigurationError):
            load_scale_bench(path)
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_scale_bench(path)
        with pytest.raises(ConfigurationError):
            load_scale_bench(tmp_path / "missing.json")


class TestRegressionGate:
    def _payloads(self):
        payload = tiny_payload()
        baseline = json.loads(json.dumps(payload))
        return payload, baseline

    def test_identical_payloads_pass(self):
        payload, baseline = self._payloads()
        assert check_scale_regression(payload, baseline) == []

    def test_within_tolerance_passes(self):
        payload, baseline = self._payloads()
        row = payload["cases"][0]
        row["speedup_columnar"] = (
            baseline["cases"][0]["speedup_columnar"] * 0.85
        )
        assert check_scale_regression(payload, baseline) == []

    def test_speedup_regression_fails(self):
        payload, baseline = self._payloads()
        row = payload["cases"][0]
        row["speedup_columnar"] = (
            baseline["cases"][0]["speedup_columnar"] * 0.5
        )
        failures = check_scale_regression(payload, baseline)
        assert len(failures) == 1
        assert "speedup_columnar" in failures[0]

    def test_msoa_incrementality_regression_fails(self):
        payload, baseline = self._payloads()
        payload["msoa"]["incremental_speedup"] = (
            baseline["msoa"]["incremental_speedup"] * 0.5
        )
        failures = check_scale_regression(payload, baseline)
        assert len(failures) == 1
        assert "incremental_speedup" in failures[0]

    def test_divergence_fails_regardless_of_timing(self):
        payload, baseline = self._payloads()
        payload["cases"][0]["equivalent"] = False
        payload["msoa"]["equivalent"] = False
        failures = check_scale_regression(payload, baseline)
        assert any("diverged" in f for f in failures)
        assert any("cold-rebuild" in f for f in failures)

    def test_shard_divergence_fails(self):
        payload, baseline = self._payloads()
        payload["shard"]["equivalent"] = False
        failures = check_scale_regression(payload, baseline)
        assert any("sharded winners diverged" in f for f in failures)

    def test_shard_equivalence_none_is_not_a_failure(self):
        # The full tier doesn't run the unsharded twin: None means
        # "not compared", only an explicit False is a divergence.
        payload, baseline = self._payloads()
        payload["shard"]["equivalent"] = None
        assert check_scale_regression(payload, baseline) == []

    def test_shard_speedup_regression_fails(self):
        payload, baseline = self._payloads()
        payload["shard"]["sharded_speedup"] = (
            baseline["shard"]["sharded_speedup"] * 0.5
        )
        failures = check_scale_regression(payload, baseline)
        assert len(failures) == 1
        assert "sharded_speedup" in failures[0]

    def test_shard_case_rename_skips_the_ratio_gate(self):
        payload, baseline = self._payloads()
        baseline["shard"]["case"] = "some_retired_case"
        payload["shard"]["sharded_speedup"] = 0.001
        assert check_scale_regression(payload, baseline) == []

    def test_cases_missing_from_baseline_are_skipped(self):
        payload, baseline = self._payloads()
        baseline["cases"] = []
        baseline["msoa"] = None
        baseline.pop("shard")
        assert check_scale_regression(payload, baseline) == []

    def test_bad_tolerance_rejected(self):
        payload, baseline = self._payloads()
        with pytest.raises(ConfigurationError):
            check_scale_regression(payload, baseline, tolerance=1.5)


class TestSlowParallelFlag:
    def test_render_engine_bench_flags_sub_1x_parallel(self):
        from repro.experiments.bench_engine import render_engine_bench

        payload = {
            "parallelism": 8,
            "quick": True,
            "cases": [
                {
                    "case": "healthy",
                    "bids": 50,
                    "equivalent": True,
                    "reference_ms": 10.0,
                    "fast_ms": 2.0,
                    "fast_parallel_ms": 5.0,
                    "speedup_fast": 5.0,
                    "speedup_parallel": 2.0,
                },
                {
                    "case": "pool_overhead",
                    "bids": 50,
                    "equivalent": True,
                    "reference_ms": 10.0,
                    "fast_ms": 2.0,
                    "fast_parallel_ms": 25.0,
                    "speedup_fast": 5.0,
                    "speedup_parallel": 0.4,
                },
            ],
        }
        rendered = render_engine_bench(payload)
        assert "[SLOWER than reference]" in rendered
        assert "WARNING" in rendered and "pool_overhead" in rendered
        # The healthy row stays unflagged.
        healthy_line = next(
            line for line in rendered.splitlines() if "healthy" in line
        )
        assert "SLOWER" not in healthy_line
