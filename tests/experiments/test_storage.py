"""Unit tests for result-table persistence and diffing."""

import json

import numpy as np
import pytest

from repro.analysis.reporting import ResultTable
from repro.core.msoa import run_msoa
from repro.core.outcomes import AuctionOutcome, OnlineOutcome
from repro.core.ssam import run_ssam
from repro.errors import ConfigurationError
from repro.experiments.storage import (
    diff_tables,
    load_outcome,
    load_table,
    save_csv,
    save_outcome,
    save_table,
)
from repro.workload import MarketConfig, generate_horizon, generate_round


def make_table():
    table = ResultTable(
        title="Demo", columns=["name", "value", "flag"], precision=2
    )
    table.add_row(name="a", value=1.25, flag=True)
    table.add_row(name="b", value=2.5, flag=False)
    return table


class TestJsonRoundTrip:
    def test_lossless(self, tmp_path):
        table = make_table()
        path = tmp_path / "demo.json"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.title == table.title
        assert list(loaded.columns) == list(table.columns)
        assert loaded.precision == table.precision
        assert diff_tables(table, loaded) == []

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_table(tmp_path / "nope.json")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json{")
        with pytest.raises(ConfigurationError):
            load_table(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ConfigurationError):
            load_table(path)


class TestOutcomePersistence:
    def test_auction_outcome_round_trip(self, tmp_path):
        instance = generate_round(MarketConfig(), np.random.default_rng(7))
        outcome = run_ssam(instance)
        path = tmp_path / "auction.json"
        save_outcome(outcome, path)
        loaded = load_outcome(path)
        assert isinstance(loaded, AuctionOutcome)
        assert loaded.to_dict() == outcome.to_dict()

    def test_online_outcome_round_trip(self, tmp_path):
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=12, n_buyers=4),
            np.random.default_rng(7),
            rounds=3,
        )
        outcome = run_msoa(horizon, capacities)
        path = tmp_path / "online.json"
        save_outcome(outcome, path)
        loaded = load_outcome(path)
        assert isinstance(loaded, OnlineOutcome)
        assert loaded.to_dict() == outcome.to_dict()

    def test_missing_outcome_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_outcome(tmp_path / "nope.json")

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"kind": "spreadsheet"}))
        with pytest.raises(ConfigurationError):
            load_outcome(path)


class TestCsv:
    def test_header_and_rows(self, tmp_path):
        path = tmp_path / "demo.csv"
        save_csv(make_table(), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "name,value,flag"
        assert len(lines) == 3
        assert lines[1].startswith("a,1.25")


class TestDiff:
    def test_identical_tables_no_diff(self):
        assert diff_tables(make_table(), make_table()) == []

    def test_numeric_tolerance(self):
        a = make_table()
        b = make_table()
        b.rows[0]["value"] = 1.25 + 1e-12
        assert diff_tables(a, b) == []
        b.rows[0]["value"] = 1.30
        assert diff_tables(a, b)

    def test_structural_differences_reported_first(self):
        a = make_table()
        b = ResultTable(title="Demo", columns=["other"])
        problems = diff_tables(a, b)
        assert len(problems) == 1 and "columns differ" in problems[0]

    def test_row_count_mismatch(self):
        a = make_table()
        b = make_table()
        b.rows.pop()
        problems = diff_tables(a, b)
        assert problems == ["row counts differ: 2 vs 1"]

    def test_non_numeric_mismatch(self):
        a = make_table()
        b = make_table()
        b.rows[1]["name"] = "zzz"
        problems = diff_tables(a, b)
        assert "row 1" in problems[0] and "'name'" in problems[0]
