"""Unit tests for the engine perf-regression harness."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.bench_engine import (
    EngineBenchCase,
    default_cases,
    render_engine_bench,
    run_engine_bench,
    write_engine_bench,
)
from repro.workload.bidgen import MarketConfig

TINY = EngineBenchCase(
    name="tiny",
    config=MarketConfig(n_sellers=8, n_buyers=3),
    repeats=1,
)


class TestCases:
    def test_quick_is_a_subset_sweep(self):
        quick = {c.name for c in default_cases(quick=True)}
        full = {c.name for c in default_cases()}
        assert "stress_large_n" in quick and "stress_large_n" in full
        assert len(quick) < len(full)

    def test_stress_case_is_smaller_in_quick_mode(self):
        quick = next(
            c for c in default_cases(quick=True) if c.name == "stress_large_n"
        )
        full = next(c for c in default_cases() if c.name == "stress_large_n")
        assert quick.config.n_sellers < full.config.n_sellers


class TestRun:
    def test_payload_schema_and_equivalence(self):
        payload = run_engine_bench(cases=[TINY])
        assert payload["bench"] == "engine"
        assert payload["parallelism"] == 1
        (row,) = payload["cases"]
        assert row["case"] == "tiny"
        assert row["equivalent"] is True
        assert row["reference_ms"] > 0 and row["fast_ms"] > 0
        assert row["fast_parallel_ms"] == row["fast_ms"]  # serial: not re-timed
        assert row["winners"] >= 1 and row["bids"] >= 8

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ConfigurationError):
            run_engine_bench(parallelism=0, cases=[TINY])

    def test_unwritable_path_rejected(self, tmp_path):
        payload = run_engine_bench(cases=[TINY])
        with pytest.raises(ConfigurationError):
            write_engine_bench(payload, tmp_path / "missing" / "b.json")

    def test_write_and_render(self, tmp_path):
        payload = run_engine_bench(cases=[TINY])
        target = write_engine_bench(payload, tmp_path / "bench.json")
        reread = json.loads(target.read_text())
        assert reread == json.loads(json.dumps(payload))
        rendered = render_engine_bench(payload)
        assert "tiny" in rendered and "speedup" in rendered
