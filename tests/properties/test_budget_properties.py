"""Property-based tests for the budget-capped auction."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.budgeted import run_budgeted_ssam
from repro.core.ssam import run_ssam

from tests.properties.strategies import wsp_instances

#: Hypothesis sweeps are the repo's statistical tier; 'pytest -m
#: "not slow"' skips them for the quick signal, CI runs them in full.
pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@COMMON
@given(
    instance=wsp_instances(max_sellers=6, max_buyers=3),
    fraction=st.floats(0.0, 1.5),
)
def test_spend_never_exceeds_budget(instance, fraction):
    plain = run_ssam(instance)
    budget = plain.total_payment * fraction
    result = run_budgeted_ssam(instance, budget=budget)
    assert result.budget_spent <= budget + 1e-9


@COMMON
@given(instance=wsp_instances(max_sellers=6, max_buyers=3))
def test_admitted_winners_are_a_greedy_prefix(instance):
    plain = run_ssam(instance)
    half = run_budgeted_ssam(instance, budget=plain.total_payment / 2)
    plain_order = [
        w.bid.key for w in sorted(plain.winners, key=lambda w: w.iteration)
    ]
    admitted = [
        w.bid.key
        for w in sorted(half.outcome.winners, key=lambda w: w.iteration)
    ]
    assert admitted == plain_order[: len(admitted)]


@COMMON
@given(
    instance=wsp_instances(max_sellers=6, max_buyers=3),
    f1=st.floats(0.0, 1.2),
    f2=st.floats(0.0, 1.2),
)
def test_coverage_monotone_in_budget(instance, f1, f2):
    plain = run_ssam(instance)
    low, high = sorted((f1, f2))
    cover_low = run_budgeted_ssam(
        instance, budget=plain.total_payment * low
    ).coverage_fraction
    cover_high = run_budgeted_ssam(
        instance, budget=plain.total_payment * high
    ).coverage_fraction
    assert cover_high >= cover_low - 1e-12


@COMMON
@given(instance=wsp_instances(max_sellers=6, max_buyers=3))
def test_full_budget_recovers_plain_ssam(instance):
    plain = run_ssam(instance)
    result = run_budgeted_ssam(instance, budget=plain.total_payment + 1e-6)
    assert result.outcome.winner_keys == plain.winner_keys
    assert not result.truncated
    assert result.unserved_units == 0
