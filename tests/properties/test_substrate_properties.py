"""Property-based tests for the substrates (fair share, AHP, estimation,
market generation, reporting)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ssam import run_ssam
from repro.demand.ahp import ahp_weights
from repro.demand.estimator import NoisyOracleEstimator
from repro.edge.fair_share import max_min_fair_share
from repro.workload.bidgen import MarketConfig, generate_round

#: Hypothesis sweeps are the repo's statistical tier; 'pytest -m
#: "not slow"' skips them for the quick signal, CI runs them in full.
pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    capacity=st.floats(0.0, 1000.0),
    demands=st.dictionaries(
        st.integers(0, 20), st.floats(0.0, 100.0), min_size=1, max_size=10
    ),
)
def test_fair_share_invariants(capacity, demands):
    """Allocations are non-negative, demand-capped, and capacity-capped."""
    allocation = max_min_fair_share(capacity, demands)
    assert set(allocation) == set(demands)
    total = 0.0
    for claimant, amount in allocation.items():
        assert amount >= -1e-9
        assert amount <= demands[claimant] + 1e-9
        total += amount
    assert total <= capacity + 1e-6
    # Work-conserving: either capacity or every demand is exhausted.
    if sum(demands.values()) >= capacity:
        assert total >= capacity - 1e-6 or all(
            allocation[c] >= demands[c] - 1e-9 for c in demands
        )


@COMMON
@given(
    weights=st.lists(
        st.floats(0.1, 10.0), min_size=2, max_size=6
    )
)
def test_ahp_recovers_consistent_judgments(weights):
    """A perfectly consistent matrix yields its generating weights, CR≈0."""
    w = np.array(weights)
    w = w / w.sum()
    matrix = w[:, None] / w[None, :]
    result = ahp_weights(matrix)
    assert np.allclose(result.weights, w, atol=1e-6)
    assert result.consistency_ratio < 1e-6


@COMMON
@given(
    true_demand=st.dictionaries(
        st.integers(0, 50), st.integers(0, 8), min_size=1, max_size=10
    ),
    sigma=st.floats(0.0, 1.5),
    seed=st.integers(0, 2**31),
)
def test_conservative_estimator_dominates_truth(true_demand, sigma, seed):
    """Conservative estimates never fall below true demand (when capped)."""
    estimator = NoisyOracleEstimator(
        rng=np.random.default_rng(seed), sigma=sigma, max_units=100
    )
    estimate = estimator.estimate(true_demand)
    for buyer, units in true_demand.items():
        if units > 0:
            assert estimate[buyer] >= units
        else:
            assert buyer not in estimate


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**31),
    n_sellers=st.integers(3, 12),
    n_buyers=st.integers(1, 5),
    bids_per_seller=st.integers(1, 3),
)
def test_generated_markets_always_clear(seed, n_sellers, n_buyers, bids_per_seller):
    """Every generated market is feasible and SSAM clears it."""
    config = MarketConfig(
        n_sellers=n_sellers,
        n_buyers=n_buyers,
        bids_per_seller=bids_per_seller,
        demand_units_range=(1, min(3, n_sellers)),
        coverage_range=(1, min(3, n_buyers)),
    )
    instance = generate_round(config, np.random.default_rng(seed))
    instance.check_feasible()
    outcome = run_ssam(instance)
    outcome.verify()
    # Prices remain in the configured band.
    for bid in instance.bids:
        low, high = config.price_range
        assert low <= bid.price <= high
