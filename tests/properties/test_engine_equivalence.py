"""The fast engine is bit-identical to the reference oracle.

:mod:`repro.core.engine` re-implements the greedy selection and the
critical-payment replay on incremental bookkeeping plus a lazy heap; its
whole claim to correctness is *exact* equivalence with the naive loops in
:mod:`repro.core.ssam`.  These tests pin that claim:

* the full selection trace (winner sequence, utilities, ratios,
  runner-up ratios) matches step by step,
* complete auction outcomes — winners, payments, and dual certificates —
  serialize identically under both payment rules,
* a seeded sweep over 200 market-generator instances (the distribution
  the experiments actually run on) agrees end to end,
* individual rationality survives the fast path under both rules.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import fast_greedy_selection
from repro.core.ssam import PaymentRule, greedy_selection, run_ssam
from repro.errors import InfeasibleInstanceError

from tests.properties.strategies import wsp_instances

#: Hypothesis sweeps are the repo's statistical tier; 'pytest -m
#: "not slow"' skips them for the quick signal, CI runs them in full.
pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def outcomes_for(instance, rule):
    """(reference, fast) outcomes, or None if the instance is infeasible
    for the greedy even after exact-guard escalation."""
    try:
        reference = run_ssam(instance, payment_rule=rule, engine="reference")
    except InfeasibleInstanceError:
        with pytest.raises(InfeasibleInstanceError):
            run_ssam(instance, payment_rule=rule, engine="fast")
        return None
    fast = run_ssam(instance, payment_rule=rule, engine="fast")
    return reference, fast


@COMMON
@given(instance=wsp_instances())
def test_selection_trace_identical(instance):
    """fast_greedy_selection replays greedy_selection step for step."""
    demand = dict(instance.demand)
    try:
        reference = greedy_selection(instance.bids, dict(demand))
    except InfeasibleInstanceError:
        with pytest.raises(InfeasibleInstanceError):
            fast_greedy_selection(instance.bids, dict(demand))
        return
    fast = fast_greedy_selection(instance.bids, dict(demand))
    assert len(fast) == len(reference)
    for ours, theirs in zip(fast, reference):
        assert ours.bid.key == theirs.bid.key
        assert ours.iteration == theirs.iteration
        assert ours.utility == theirs.utility
        assert ours.ratio == theirs.ratio
        assert ours.runner_up_ratio == theirs.runner_up_ratio
        assert ours.coverage_before == theirs.coverage_before


@COMMON
@given(instance=wsp_instances())
@pytest.mark.parametrize("rule", list(PaymentRule))
def test_outcome_identical(instance, rule):
    """Winners, payments, and dual certificates match bit for bit."""
    pair = outcomes_for(instance, rule)
    if pair is None:
        return
    reference, fast = pair
    assert fast.to_dict() == reference.to_dict()


@pytest.mark.parametrize("rule", list(PaymentRule))
def test_market_generator_sweep_identical(rule, make_instance):
    """200 seeded generator instances (the experiments' distribution)
    agree end to end — winner keys, payments, duals, metadata."""
    for seed in range(100):
        instance = make_instance(seed, n_sellers=12, n_buyers=4)
        pair = outcomes_for(instance, rule)
        if pair is None:
            continue
        reference, fast = pair
        assert fast.to_dict() == reference.to_dict(), f"seed {seed}"


@COMMON
@given(instance=wsp_instances())
@pytest.mark.parametrize(
    "rule", [PaymentRule.ITERATION_RUNNER_UP, PaymentRule.CRITICAL_RERUN]
)
def test_fast_engine_keeps_individual_rationality(instance, rule):
    """Regression: no payment ever drops below the announced bid price
    under the fast engine (Theorem 5 must survive the optimisation)."""
    try:
        outcome = run_ssam(instance, payment_rule=rule, engine="fast")
    except InfeasibleInstanceError:
        return
    for winner in outcome.winners:
        assert winner.payment >= winner.bid.price - 1e-9


def test_guard_disabled_paths_agree(make_instance):
    """engine equivalence also holds with the feasibility guard off."""
    for seed in range(20):
        instance = make_instance(1000 + seed, n_sellers=10, n_buyers=3)
        try:
            reference = run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="reference",
                guard=False,
            )
        except InfeasibleInstanceError:
            continue
        fast = run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="fast",
            guard=False,
        )
        assert fast.to_dict() == reference.to_dict(), f"seed {seed}"
