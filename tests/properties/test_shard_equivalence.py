"""Cross-shard equivalence certification for the sharded MSOA.

The contract ``docs/scaling.md`` documents, stated as properties:

* **1-shard identity** — a sharded auctioneer with one shard (or one
  *active* shard) is bit-identical to the unsharded MSOA: same winners,
  same payments, same duals, same ψ trajectory, for every engine and
  under seeded fault plans.  This is structural (the single-shard fast
  path calls the plain clearing on the original instance), and these
  sweeps certify the structure never regresses.
* **shard decomposition** — when no bid spans shards, the merged
  sharded outcome is exactly the union of independent per-shard runs,
  concatenated in shard order.
* **invariants under sharding** — whatever the shard count, capacity
  safety and per-round primal feasibility still hold.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.msoa import run_msoa
from repro.core.ssam import run_ssam
from repro.faults import BidDropout, FaultPlan, SellerDefault
from repro.shard import run_sharded_msoa
from repro.shard.plan import LocalityShardPlan, partition_round
from repro.shard.ssam import run_sharded_ssam
from repro.workload.bidgen import MarketConfig, generate_horizon

from tests.properties.strategies import sharded_horizons, wsp_instances

pytestmark = [pytest.mark.property, pytest.mark.slow, pytest.mark.shard]

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

ENGINES = ("fast", "reference", "columnar")

FAULTS = FaultPlan(
    seed=23,
    seller_defaults=(SellerDefault(probability=0.2),),
    bid_dropouts=(BidDropout(probability=0.15),),
)


@COMMON
@given(data=sharded_horizons())
@pytest.mark.parametrize("engine", ENGINES)
def test_one_shard_is_bit_identical_to_unsharded(data, engine):
    """shards=1 ≡ run_msoa, bitwise, on every engine."""
    rounds, capacities, _ = data
    sharded = run_sharded_msoa(
        rounds,
        capacities,
        shards=1,
        engine=engine,
        on_infeasible="best_effort",
    )
    plain = run_msoa(
        rounds, capacities, engine=engine, on_infeasible="best_effort"
    )
    assert sharded.to_dict() == plain.to_dict()


@COMMON
@given(data=sharded_horizons())
def test_one_shard_identity_survives_fault_injection(data):
    """Seeded faults hit both runs identically: identity still bitwise."""
    rounds, capacities, _ = data
    sharded = run_sharded_msoa(
        rounds,
        capacities,
        shards=1,
        faults=FAULTS,
        on_infeasible="best_effort",
    )
    plain = run_msoa(
        rounds, capacities, faults=FAULTS, on_infeasible="best_effort"
    )
    assert sharded.to_dict() == plain.to_dict()


@COMMON
@given(instance=wsp_instances(), n_shards=st.integers(1, 4))
def test_no_cross_sharding_is_union_of_per_shard_runs(instance, n_shards):
    """Locality plans cut along co-coverage seams: zero cross bids, and
    the merged outcome is the per-shard union in shard order."""
    plan = LocalityShardPlan(n_shards=n_shards)
    partition = partition_round(instance, plan)
    if partition.cross_bids:
        return  # locality plans never produce these; guard regardless
    result = run_sharded_ssam(instance, plan)
    expected = []
    for shard in partition.active_shards:
        sub = partition.sub_instance(shard)
        outcome = run_ssam(sub)
        expected.extend(
            (w.bid.key, w.payment, w.marginal_utility)
            for w in outcome.winners
        )
    assert [
        (w.bid.key, w.payment, w.marginal_utility)
        for w in result.outcome.winners
    ] == expected


@COMMON
@given(data=sharded_horizons())
def test_sharded_runs_keep_msoa_invariants(data):
    """Capacity safety + primal feasibility hold for any shard count."""
    rounds, capacities, n_shards = data
    outcome = run_sharded_msoa(
        rounds, capacities, shards=n_shards, on_infeasible="best_effort"
    )
    outcome.verify_capacities()
    for round_result in outcome.rounds:
        round_result.outcome.verify()


SWEEP_CONFIG = MarketConfig(n_sellers=8, n_buyers=4, bids_per_seller=2)


@pytest.mark.parametrize("engine", ENGINES)
def test_hundred_seed_generator_sweep(engine):
    """100 seeded markets from the workload generator: 1-shard identity
    holds on every one (the statistical tier behind the hypothesis
    draws — denser, generator-shaped instances)."""
    for seed in range(100):
        rounds, capacities = generate_horizon(
            SWEEP_CONFIG, np.random.default_rng(seed), rounds=3
        )
        sharded = run_sharded_msoa(
            rounds,
            capacities,
            shards=1,
            engine=engine,
            on_infeasible="best_effort",
        )
        plain = run_msoa(
            rounds, capacities, engine=engine, on_infeasible="best_effort"
        )
        assert sharded.to_dict() == plain.to_dict(), f"seed {seed}"
