"""Shared hypothesis strategies generating random auction instances.

Instances are built to be feasible by construction (mirroring the market
generator's repair): random bids are drawn, then each buyer's demand is
clamped to the number of distinct sellers whose *first* bid covers it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance

__all__ = [
    "wsp_instances",
    "single_bid_instances",
    "horizons",
    "sharded_horizons",
]


@st.composite
def wsp_instances(
    draw,
    max_sellers: int = 8,
    max_buyers: int = 4,
    max_bids_per_seller: int = 2,
    max_demand: int = 3,
    min_price: float = 1.0,
    max_price: float = 50.0,
):
    """A feasible random WSP instance."""
    n_sellers = draw(st.integers(2, max_sellers))
    n_buyers = draw(st.integers(1, max_buyers))
    buyers = list(range(n_buyers))
    sellers = list(range(100, 100 + n_sellers))
    bids = []
    bid0_cover: dict[int, set[int]] = {b: set() for b in buyers}
    for seller in sellers:
        n_bids = draw(st.integers(1, max_bids_per_seller))
        for index in range(n_bids):
            covered = draw(
                st.sets(
                    st.sampled_from(buyers), min_size=1, max_size=n_buyers
                )
            )
            price = draw(
                st.floats(
                    min_price,
                    max_price,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            bids.append(
                Bid(
                    seller=seller,
                    index=index,
                    covered=frozenset(covered),
                    price=price,
                )
            )
            if index == 0:
                for buyer in covered:
                    bid0_cover[buyer].add(seller)
    # Buyers with no bid-0 coverage keep zero demand (they are named by
    # some bids, so they must stay in the demand map for validation).
    demand = {buyer: 0 for buyer in buyers}
    for buyer in buyers:
        available = len(bid0_cover[buyer])
        if available > 0:
            demand[buyer] = draw(st.integers(1, min(max_demand, available)))
    if all(units == 0 for units in demand.values()):
        # Guarantee at least one unit of demand somewhere coverable.
        buyer = buyers[0]
        bids.append(
            Bid(
                seller=sellers[0],
                index=max_bids_per_seller,
                covered=frozenset({buyer}),
                price=draw(st.floats(min_price, max_price)),
            )
        )
        demand[buyer] = 1
    return WSPInstance.from_bids(bids, demand, price_ceiling=max_price * 2)


def single_bid_instances(**kwargs):
    """Instances where every seller submits exactly one bid (J = 1).

    This is the "typical scenario" of Theorem 3 for which the classical
    H(n) approximation and exact Myerson truthfulness hold without the
    multi-minded caveats.
    """
    kwargs.setdefault("max_bids_per_seller", 1)
    return wsp_instances(**kwargs)


@st.composite
def horizons(
    draw,
    max_rounds: int = 4,
    *,
    max_sellers: int = 6,
    max_buyers: int = 3,
    max_demand: int = 2,
):
    """A short online horizon over one instance family + ample capacities.

    Capacities are drawn generously (each seller can win most rounds) so
    the offline problem is feasible by construction; tighter-capacity
    behaviour is exercised by the unit tests.
    """
    rounds = [
        draw(
            wsp_instances(
                max_sellers=max_sellers,
                max_buyers=max_buyers,
                max_demand=max_demand,
            )
        )
        for _ in range(draw(st.integers(1, max_rounds)))
    ]
    sellers = {bid.seller for instance in rounds for bid in instance.bids}
    max_size = max(
        (bid.size for instance in rounds for bid in instance.bids), default=1
    )
    capacities = {
        seller: draw(
            st.integers(max_size * len(rounds), max_size * len(rounds) + 10)
        )
        for seller in sellers
    }
    return rounds, capacities


@st.composite
def sharded_horizons(draw, max_rounds: int = 3, max_shards: int = 4):
    """A :func:`horizons` draw labelled with a shard count.

    The shard equivalence suite feeds these to
    :func:`repro.shard.run_sharded_msoa`: one shard must be bit-identical
    to unsharded MSOA, and any count must preserve the ψ/χ invariants.
    """
    rounds, capacities = draw(horizons(max_rounds=max_rounds))
    n_shards = draw(st.integers(1, max_shards))
    return rounds, capacities, n_shards
