"""Property-based verification of SSAM's theorems (1–5).

Each test is a direct empirical check of a claim from the paper on
randomized feasible instances:

* primal feasibility (Theorem 2),
* dual feasibility of the fitted certificate (Lemma 1),
* the W·Ξ approximation bound against the exact optimum (Theorem 3;
  tested at J = 1 where the classical constrained-multicover analysis is
  airtight),
* allocation monotonicity (Lemma 2),
* critical payments / truthfulness (Lemma 3, Theorem 4; J = 1 single-
  parameter setting),
* individual rationality (Theorem 5; all payment rules, all J).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.ratios import harmonic
from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal

from tests.properties.strategies import single_bid_instances, wsp_instances

#: Hypothesis sweeps are the repo's statistical tier; 'pytest -m
#: "not slow"' skips them for the quick signal, CI runs them in full.
pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@COMMON
@given(instance=wsp_instances())
def test_primal_feasibility(instance):
    """Theorem 2: SSAM's winner set always satisfies constraints 13–15."""
    outcome = run_ssam(instance)
    outcome.verify()


@COMMON
@given(instance=wsp_instances())
def test_dual_certificate_feasible_and_bounding(instance):
    """Lemma 1: the fitted duals satisfy constraint (17) and lower-bound
    the exact optimum."""
    outcome = run_ssam(instance)
    duals, objective = outcome.duals.fitted()
    for bid in instance.bids:
        load = sum(duals.get(b, 0.0) for b in bid.covered)
        assert load <= bid.price * (1 + 1e-9) + 1e-12
    optimum = solve_wsp_optimal(instance).objective
    assert objective <= optimum + 1e-6


@COMMON
@given(instance=single_bid_instances())
def test_approximation_bound_single_bid(instance):
    """Theorem 3 (typical scenario): cost ≤ H(total demand) × optimum."""
    outcome = run_ssam(instance)
    optimum = solve_wsp_optimal(instance).objective
    bound = harmonic(max(1, instance.total_demand))
    assert outcome.social_cost <= bound * optimum + 1e-6


@COMMON
@given(instance=wsp_instances())
def test_cost_at_least_optimum(instance):
    """Sanity: no mechanism beats the exact optimum."""
    outcome = run_ssam(instance)
    optimum = solve_wsp_optimal(instance).objective
    assert outcome.social_cost >= optimum - 1e-6


@COMMON
@given(instance=wsp_instances())
@pytest.mark.parametrize("rule", list(PaymentRule))
def test_individual_rationality(instance, rule):
    """Theorem 5: every winner's payment covers its announced price."""
    outcome = run_ssam(instance, payment_rule=rule)
    for winner in outcome.winners:
        assert winner.payment >= winner.bid.price - 1e-9


@COMMON
@given(instance=single_bid_instances())
def test_monotonicity_winners_stay_with_lower_price(instance):
    """Lemma 2: halving a winner's price never makes it lose."""
    outcome = run_ssam(instance)
    for winner in list(outcome.winners)[:3]:
        cheaper = winner.bid.with_price(winner.bid.price * 0.5)
        again = run_ssam(instance.replace_bid(cheaper))
        assert cheaper.key in again.winner_keys


@COMMON
@given(instance=single_bid_instances())
def test_critical_payment_is_threshold(instance):
    """Lemma 3: bidding below the payment wins; above it loses (J = 1)."""
    outcome = run_ssam(instance, payment_rule=PaymentRule.CRITICAL_RERUN)
    ceiling = instance.effective_ceiling
    for winner in list(outcome.winners)[:2]:
        payment = winner.payment
        below = winner.bid.with_price(payment * 0.95)
        try:
            outcome_below = run_ssam(instance.replace_bid(below))
        except InfeasibleInstanceError:
            continue
        assert below.key in outcome_below.winner_keys
        if payment * 1.05 >= ceiling:
            # A payment in the ceiling region marks a (possibly pivotal)
            # winner whose threshold was policy-capped; it can win at any
            # admissible price, so there is nothing above it to probe.
            continue
        above = winner.bid.with_price(payment * 1.05)
        try:
            outcome_above = run_ssam(instance.replace_bid(above))
        except InfeasibleInstanceError:
            continue
        assert above.key not in outcome_above.winner_keys


@COMMON
@given(instance=single_bid_instances())
def test_truthfulness_no_profitable_deviation(instance):
    """Theorem 4 (J = 1): unilateral price deviations never raise utility."""
    truthful = run_ssam(instance, payment_rule=PaymentRule.CRITICAL_RERUN)
    for bid in instance.bids[:4]:
        honest_utility = truthful.utility_of(bid.seller)
        for factor in (0.4, 0.8, 1.3, 2.5):
            deviated = instance.replace_bid(bid.with_price(bid.cost * factor))
            try:
                outcome = run_ssam(
                    deviated, payment_rule=PaymentRule.CRITICAL_RERUN
                )
            except InfeasibleInstanceError:
                continue
            assert outcome.utility_of(bid.seller) <= honest_utility + 1e-7
