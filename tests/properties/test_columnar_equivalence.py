"""The columnar engine is bit-identical to the fast and reference engines.

:mod:`repro.core.columnar` re-implements the greedy selection and the
critical-payment replay on numpy column arrays, batching every winner's
replay through one shared greedy prefix; its whole claim to correctness
is *exact* equivalence with both scalar engines.  These tests pin that
claim across every layer that can select an engine:

* the full selection trace (winner sequence, utilities, ratios,
  runner-up ratios, coverage snapshots) matches the reference oracle
  step by step,
* complete auction outcomes — winners, payments, and dual certificates —
  serialize identically across all three engines under both payment
  rules, over a 300-instance seeded generator sweep plus hypothesis
  draws, with and without the feasibility guard,
* MSOA horizons agree across engines, with and without seeded
  :class:`~repro.faults.FaultPlan` injection, and the incremental
  layout carry produces bit-identical outcomes to a cold per-round
  rebuild (the incrementality contract) while actually hitting its
  cache on structurally stable rounds,
* the full platform loop — MSOA, pay-as-bid, and VCG mechanisms —
  yields identical round reports and ledger totals under every engine.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.columnar import columnar_greedy_selection
from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule, greedy_selection, run_ssam
from repro.errors import InfeasibleInstanceError
from repro.faults import FaultPlan, SellerDefault

from tests.properties.strategies import wsp_instances

pytestmark = pytest.mark.property

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

RULES = [PaymentRule.CRITICAL_RERUN, PaymentRule.ITERATION_RUNNER_UP]


def outcomes_for(instance, rule, *, engines=("reference", "fast", "columnar")):
    """One outcome per engine, or None if the instance is infeasible —
    in which case every engine must agree on the infeasibility too."""
    outcomes = {}
    try:
        outcomes[engines[0]] = run_ssam(
            instance, payment_rule=rule, engine=engines[0]
        )
    except InfeasibleInstanceError:
        for engine in engines[1:]:
            with pytest.raises(InfeasibleInstanceError):
                run_ssam(instance, payment_rule=rule, engine=engine)
        return None
    for engine in engines[1:]:
        outcomes[engine] = run_ssam(instance, payment_rule=rule, engine=engine)
    return outcomes


@pytest.mark.slow
@COMMON
@given(instance=wsp_instances())
def test_selection_trace_identical(instance):
    """columnar_greedy_selection replays greedy_selection step for step."""
    demand = dict(instance.demand)
    try:
        reference = greedy_selection(instance.bids, dict(demand))
    except InfeasibleInstanceError:
        with pytest.raises(InfeasibleInstanceError):
            columnar_greedy_selection(instance.bids, dict(demand))
        return
    columnar = columnar_greedy_selection(instance.bids, dict(demand))
    assert len(columnar) == len(reference)
    for ours, theirs in zip(columnar, reference):
        assert ours.bid is theirs.bid or ours.bid.key == theirs.bid.key
        assert ours.iteration == theirs.iteration
        assert ours.utility == theirs.utility
        assert ours.ratio == theirs.ratio
        assert ours.runner_up_ratio == theirs.runner_up_ratio
        assert ours.coverage_before == theirs.coverage_before


@pytest.mark.slow
@COMMON
@given(instance=wsp_instances())
@pytest.mark.parametrize("rule", list(PaymentRule))
def test_outcome_identical_three_engines(instance, rule):
    """Winners, payments, and dual certificates match bit for bit."""
    outcomes = outcomes_for(instance, rule)
    if outcomes is None:
        return
    reference = outcomes["reference"].to_dict()
    assert outcomes["fast"].to_dict() == reference
    assert outcomes["columnar"].to_dict() == reference


@pytest.mark.parametrize("rule", RULES)
def test_market_generator_sweep_identical(rule, make_instance):
    """300 seeded generator instances (150 per payment rule, disjoint
    seed ranges) agree across all three engines end to end — winner
    keys, payments, duals, metadata."""
    offset = 0 if rule is PaymentRule.CRITICAL_RERUN else 150
    for seed in range(offset, offset + 150):
        instance = make_instance(seed, n_sellers=12, n_buyers=4)
        outcomes = outcomes_for(instance, rule)
        if outcomes is None:
            continue
        reference = outcomes["reference"].to_dict()
        assert outcomes["fast"].to_dict() == reference, f"seed {seed}"
        assert outcomes["columnar"].to_dict() == reference, f"seed {seed}"


def test_guard_disabled_paths_agree(make_instance):
    """Engine equivalence also holds with the feasibility guard off."""
    for seed in range(20):
        instance = make_instance(1000 + seed, n_sellers=10, n_buyers=3)
        try:
            fast = run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="fast",
                guard=False,
            )
        except InfeasibleInstanceError:
            with pytest.raises(InfeasibleInstanceError):
                run_ssam(
                    instance,
                    payment_rule=PaymentRule.CRITICAL_RERUN,
                    engine="columnar",
                    guard=False,
                )
            continue
        columnar = run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="columnar",
            guard=False,
        )
        assert columnar.to_dict() == fast.to_dict(), f"seed {seed}"


class TestMsoaEquivalence:
    def test_horizons_identical_across_engines(self, make_horizon):
        for seed in (11, 23, 37, 53):
            rounds, capacities = make_horizon(seed, rounds=4)
            fast = run_msoa(rounds, capacities, engine="fast")
            columnar = run_msoa(rounds, capacities, engine="columnar")
            assert columnar.to_dict() == fast.to_dict(), f"seed {seed}"

    def test_reference_agrees_too(self, make_horizon):
        rounds, capacities = make_horizon(11, rounds=3)
        reference = run_msoa(rounds, capacities, engine="reference")
        columnar = run_msoa(rounds, capacities, engine="columnar")
        assert columnar.to_dict() == reference.to_dict()

    @pytest.mark.parametrize("plan_seed", [3, 9])
    def test_faulted_horizons_identical(self, make_horizon, plan_seed):
        plan = FaultPlan(
            seed=plan_seed,
            seller_defaults=(SellerDefault(probability=0.4),),
        )
        for seed in (11, 23):
            rounds, capacities = make_horizon(seed, rounds=4)
            fast = run_msoa(rounds, capacities, engine="fast", faults=plan)
            columnar = run_msoa(
                rounds, capacities, engine="columnar", faults=plan
            )
            assert columnar.to_dict() == fast.to_dict(), f"seed {seed}"
            assert fast.fault_events == columnar.fault_events


class TestMsoaIncrementality:
    """Carried columnar state must equal a cold rebuild every round."""

    def test_redrawn_horizons_carry_equals_cold(self, make_horizon):
        # Redrawn demand/bids miss the structural cache each round, so
        # this pins the carry logic's miss path (rebuild) too.
        for seed in (11, 23, 37):
            rounds, capacities = make_horizon(seed, rounds=4)
            carried = run_msoa(
                rounds, capacities, engine="columnar",
                columnar_incremental=True,
            )
            cold = run_msoa(
                rounds, capacities, engine="columnar",
                columnar_incremental=False,
            )
            assert carried.to_dict() == cold.to_dict(), f"seed {seed}"

    def test_faulted_horizons_carry_equals_cold(self, make_horizon):
        plan = FaultPlan(
            seed=3, seller_defaults=(SellerDefault(probability=0.4),)
        )
        rounds, capacities = make_horizon(11, rounds=4)
        carried = run_msoa(
            rounds, capacities, engine="columnar", faults=plan,
            columnar_incremental=True,
        )
        cold = run_msoa(
            rounds, capacities, engine="columnar", faults=plan,
            columnar_incremental=False,
        )
        assert carried.to_dict() == cold.to_dict()

    def test_stable_structure_hits_cache_and_stays_identical(
        self, make_instance
    ):
        # One instance replayed for T rounds under ample capacity keeps
        # the round structure fixed (ψ only moves prices), so the carry
        # must degrade to price-column refreshes: exactly one build,
        # T - 1 cache hits — and still the cold-rebuild outcome.
        from repro.obs.runtime import STATE, _reset_for_tests, configure

        instance = make_instance(7, n_sellers=12, n_buyers=4)
        rounds = [instance] * 5
        sellers = {bid.seller for bid in instance.bids}
        capacities = {s: 10 * instance.total_demand for s in sellers}
        cold = run_msoa(
            rounds, capacities, engine="columnar",
            columnar_incremental=False,
        )
        _reset_for_tests()
        try:
            configure()
            carried = run_msoa(
                rounds, capacities, engine="columnar",
                columnar_incremental=True,
            )
            metrics = STATE.metrics
            assert metrics.counter("engine.columnar.cache_hits").value == 4
            assert metrics.counter("engine.columnar.cache_misses").value == 1
            assert metrics.counter("engine.columnar.builds").value == 1
            assert (
                metrics.counter("engine.columnar.price_refreshes").value == 4
            )
        finally:
            _reset_for_tests()
        assert carried.to_dict() == cold.to_dict()


class TestPlatformLedgerEquivalence:
    """The full Figure-2 loop (clearing + transfers + ledger) is
    engine-independent, mechanism by mechanism."""

    def _run(self, engine, mechanism, faults=None):
        from repro.dist.agents import AgentStreamPolicy
        from repro.dist.scenario import DistScenario

        scenario = DistScenario(
            seed=5,
            horizon_rounds=3,
            mechanism=mechanism,
            engine=engine,
            faults=faults,
        )
        platform = scenario.build_platform(
            bidding_policy=AgentStreamPolicy(
                scenario.seed, scenario.policy_factory()
            )
        )
        reports = platform.run(3)
        return reports, platform.ledger

    @pytest.mark.parametrize("mechanism", [None, "pay-as-bid", "vcg"])
    def test_reports_and_ledger_identical(self, mechanism):
        fast_reports, fast_ledger = self._run("fast", mechanism)
        col_reports, col_ledger = self._run("columnar", mechanism)
        assert len(fast_reports) == len(col_reports)
        for fast_report, col_report in zip(fast_reports, col_reports):
            assert (fast_report.auction is None) == (
                col_report.auction is None
            )
            if fast_report.auction is not None:
                assert (
                    col_report.auction.outcome.to_dict()
                    == fast_report.auction.outcome.to_dict()
                )
        assert col_ledger.total_paid == fast_ledger.total_paid
        assert col_ledger.total_charged == fast_ledger.total_charged

    def test_faulted_platform_identical(self):
        plan = FaultPlan(
            seed=3, seller_defaults=(SellerDefault(probability=0.4),)
        )
        fast_reports, fast_ledger = self._run("fast", None, faults=plan)
        col_reports, col_ledger = self._run("columnar", None, faults=plan)
        for fast_report, col_report in zip(fast_reports, col_reports):
            if fast_report.auction is not None:
                assert (
                    col_report.auction.outcome.to_dict()
                    == fast_report.auction.outcome.to_dict()
                )
        assert col_ledger.total_paid == fast_ledger.total_paid
