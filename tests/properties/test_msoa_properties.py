"""Property-based verification of MSOA's theorems (6–8) and the solvers.

* capacity safety: no seller ever exceeds Θᵢ (constraint 11),
* per-round primal feasibility (Theorem 6),
* the αβ/(β−1) competitive bound against the clairvoyant optimum
  (Theorem 7),
* individual rationality through the scaled prices (Theorem 8),
* exact solver cross-validation (MILP ≡ branch-and-bound),
* monotone ψ trajectories (the scarcity price never decreases).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule
from repro.errors import InfeasibleInstanceError
from repro.solvers.branch_bound import solve_wsp_branch_bound
from repro.solvers.milp import solve_horizon_optimal, solve_wsp_optimal

from tests.properties.strategies import horizons, wsp_instances

#: Hypothesis sweeps are the repo's statistical tier; 'pytest -m
#: "not slow"' skips them for the quick signal, CI runs them in full.
pytestmark = [pytest.mark.property, pytest.mark.slow]

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@COMMON
@given(data=horizons())
def test_capacity_safety_and_feasibility(data):
    """Theorem 6: every round primal feasible, χᵢ ≤ Θᵢ throughout."""
    rounds, capacities = data
    outcome = run_msoa(rounds, capacities, on_infeasible="best_effort")
    outcome.verify_capacities()
    for round_result in outcome.rounds:
        round_result.outcome.verify()


@COMMON
@given(data=horizons())
def test_competitive_bound(data):
    """Theorem 7: online cost ≤ (αβ/(β−1)) × offline optimum."""
    rounds, capacities = data
    try:
        outcome = run_msoa(rounds, capacities, on_infeasible="raise")
        offline = solve_horizon_optimal(rounds, capacities)
    except InfeasibleInstanceError:
        return
    if offline.objective <= 0:
        return
    bound = outcome.competitive_bound
    if math.isinf(bound):
        return
    assert outcome.social_cost <= bound * offline.objective + 1e-6


@COMMON
@given(data=horizons())
def test_online_ir_through_scaling(data):
    """Theorem 8: payments cover announced prices despite price scaling."""
    rounds, capacities = data
    outcome = run_msoa(rounds, capacities, on_infeasible="best_effort")
    for round_result in outcome.rounds:
        for winner in round_result.outcome.winners:
            original = round_result.original_bids[winner.bid.key]
            assert winner.payment >= original.price - 1e-9


@COMMON
@given(data=horizons())
def test_psi_monotone_nondecreasing(data):
    """The scarcity prices ψᵢ never decrease across rounds."""
    rounds, capacities = data
    outcome = run_msoa(rounds, capacities, on_infeasible="best_effort")
    previous = {seller: 0.0 for seller in capacities}
    for round_result in outcome.rounds:
        for seller, psi in round_result.psi_after.items():
            assert psi >= previous.get(seller, 0.0) - 1e-12
        previous = dict(round_result.psi_after)


@COMMON
@given(data=horizons(max_rounds=2))
def test_scaled_cost_dominates_announced_cost(data):
    """Selection (scaled) cost is never below the announced social cost."""
    rounds, capacities = data
    outcome = run_msoa(
        rounds, capacities,
        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        on_infeasible="best_effort",
    )
    for round_result in outcome.rounds:
        assert (
            round_result.outcome.selection_cost
            >= round_result.social_cost - 1e-9
        )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(instance=wsp_instances(max_sellers=6, max_buyers=3))
def test_exact_solvers_agree(instance):
    """The HiGHS MILP and the pure-Python B&B find the same optimum."""
    milp = solve_wsp_optimal(instance)
    bb = solve_wsp_branch_bound(instance)
    assert abs(milp.objective - bb.objective) <= 1e-6
