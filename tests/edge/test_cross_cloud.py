"""Unit tests for the cross-cloud sharing extension."""

import numpy as np
import pytest

from repro.core.ssam import run_ssam
from repro.edge.cross_cloud import CrossCloudConfig, build_cross_cloud_market
from repro.edge.network import build_backhaul
from repro.errors import ConfigurationError, InfeasibleInstanceError


@pytest.fixture
def network():
    return build_backhaul(np.random.default_rng(1), n_clouds=4)


def build(network, config, seed=2, **overrides):
    defaults = dict(
        seller_clouds={100: 0, 101: 0, 102: 1, 103: 2},
        seller_costs={100: 10.0, 101: 12.0, 102: 8.0, 103: 9.0},
        buyer_clouds={1: 0, 2: 1},
        demand={1: 1, 2: 1},
    )
    defaults.update(overrides)
    return build_cross_cloud_market(
        defaults["seller_clouds"],
        defaults["seller_costs"],
        defaults["buyer_clouds"],
        defaults["demand"],
        network,
        config,
        np.random.default_rng(seed),
        price_ceiling=200.0,
    )


class TestConfig:
    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCloudConfig(latency_penalty=-1.0)

    def test_non_positive_max_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossCloudConfig(max_latency=0.0)


class TestMarketConstruction:
    def test_local_only_restricts_coverage(self, network):
        instance = build(network, CrossCloudConfig(local_only=True))
        for bid in instance.bids:
            seller_cloud = {100: 0, 101: 0, 102: 1, 103: 2}[bid.seller]
            buyer_cloud = {1: 0, 2: 1}
            for buyer in bid.covered:
                assert buyer_cloud[buyer] == seller_cloud

    def test_cross_cloud_expands_supply(self, network):
        local = build(network, CrossCloudConfig(local_only=True))
        remote = build(network, CrossCloudConfig(latency_penalty=0.5))
        assert len(remote.bids) >= len(local.bids)
        remote_pairs = {
            (bid.seller, buyer)
            for bid in remote.bids
            for buyer in bid.covered
        }
        # Seller 103 (cloud 2, no local buyers) only exists remotely.
        assert any(seller == 103 for seller, _ in remote_pairs)

    def test_remote_coverage_costs_surcharge(self, network):
        config = CrossCloudConfig(latency_penalty=2.0)
        instance = build(network, config)
        seller_clouds = {100: 0, 101: 0, 102: 1, 103: 2}
        buyer_clouds = {1: 0, 2: 1}
        for bid in instance.bids:
            base = {100: 10.0, 101: 12.0, 102: 8.0, 103: 9.0}[bid.seller]
            expected = base * bid.size + 2.0 * sum(
                network.latency(seller_clouds[bid.seller], buyer_clouds[b])
                for b in bid.covered
            )
            assert bid.price == pytest.approx(expected)

    def test_max_latency_prunes_remote_pairs(self, network):
        tight = CrossCloudConfig(max_latency=1e-6)
        instance = build(network, tight)
        # Effectively local-only: no seller covers a remote buyer.
        seller_clouds = {100: 0, 101: 0, 102: 1, 103: 2}
        buyer_clouds = {1: 0, 2: 1}
        for bid in instance.bids:
            for buyer in bid.covered:
                assert buyer_clouds[buyer] == seller_clouds[bid.seller]

    def test_missing_cost_rejected(self, network):
        with pytest.raises(ConfigurationError):
            build(
                network,
                CrossCloudConfig(),
                seller_costs={100: 10.0},  # others missing
            )


class TestCrossCloudEconomics:
    def test_cross_cloud_never_raises_social_cost_with_zero_penalty(self, network):
        # With a free backhaul, extra supply can only help the optimum.
        from repro.solvers.milp import solve_wsp_optimal

        local = build(network, CrossCloudConfig(local_only=True), seed=5)
        remote = build(network, CrossCloudConfig(latency_penalty=0.0), seed=5)
        try:
            local_cost = solve_wsp_optimal(local).objective
        except InfeasibleInstanceError:
            return  # thin local market: nothing to compare
        remote_cost = solve_wsp_optimal(remote).objective
        assert remote_cost <= local_cost + 1e-9

    def test_ssam_clears_cross_cloud_markets(self, network):
        instance = build(network, CrossCloudConfig(latency_penalty=1.0), seed=7)
        outcome = run_ssam(instance)
        outcome.verify()
        for winner in outcome.winners:
            assert winner.payment >= winner.bid.price - 1e-9
