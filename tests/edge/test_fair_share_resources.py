"""Unit tests for fair sharing and resource vectors."""

import pytest

from repro.edge.fair_share import max_min_fair_share
from repro.edge.resources import ResourceVector
from repro.errors import ConfigurationError


class TestMaxMinFairShare:
    def test_equal_split_when_demands_exceed_capacity(self):
        allocation = max_min_fair_share(9.0, {1: 10.0, 2: 10.0, 3: 10.0})
        assert all(v == pytest.approx(3.0) for v in allocation.values())

    def test_small_demands_fully_met(self):
        allocation = max_min_fair_share(10.0, {1: 1.0, 2: 2.0, 3: 20.0})
        assert allocation[1] == pytest.approx(1.0)
        assert allocation[2] == pytest.approx(2.0)
        assert allocation[3] == pytest.approx(7.0)

    def test_total_never_exceeds_capacity(self):
        allocation = max_min_fair_share(5.0, {1: 4.0, 2: 4.0})
        assert sum(allocation.values()) <= 5.0 + 1e-9

    def test_weighted_shares(self):
        allocation = max_min_fair_share(
            6.0, {1: 100.0, 2: 100.0}, weights={1: 2.0, 2: 1.0}
        )
        assert allocation[1] == pytest.approx(4.0)
        assert allocation[2] == pytest.approx(2.0)

    def test_zero_demand_gets_nothing(self):
        allocation = max_min_fair_share(10.0, {1: 0.0, 2: 5.0})
        assert allocation[1] == 0.0
        assert allocation[2] == pytest.approx(5.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            max_min_fair_share(-1.0, {1: 1.0})

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            max_min_fair_share(1.0, {1: -1.0})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            max_min_fair_share(1.0, {1: 1.0}, weights={1: 0.0})

    def test_empty_demands(self):
        assert max_min_fair_share(5.0, {}) == {}

    def test_never_exceeds_individual_demand(self):
        allocation = max_min_fair_share(100.0, {1: 3.0, 2: 4.0})
        assert allocation[1] <= 3.0 + 1e-9
        assert allocation[2] <= 4.0 + 1e-9


class TestResourceVector:
    def test_addition_and_subtraction(self):
        a = ResourceVector(1.0, 2.0, 3.0)
        b = ResourceVector(0.5, 0.5, 0.5)
        assert (a + b).cpu == 1.5
        assert (a - b).memory == 1.5

    def test_subtraction_floors_at_zero(self):
        a = ResourceVector(1.0, 0.0, 0.0)
        b = ResourceVector(2.0, 0.0, 0.0)
        assert (a - b).cpu == 0.0

    def test_scaling(self):
        assert (2 * ResourceVector(1.0, 2.0, 3.0)).bandwidth == 6.0
        with pytest.raises(ConfigurationError):
            ResourceVector(1.0, 1.0, 1.0) * -1.0

    def test_dominance(self):
        big = ResourceVector(2.0, 2.0, 2.0)
        small = ResourceVector(1.0, 1.0, 1.0)
        assert big.dominates(small)
        assert small.fits_within(big)
        assert not small.dominates(big)

    def test_scalar_is_bottleneck_dimension(self):
        assert ResourceVector(1.0, 5.0, 2.0).scalar() == 5.0

    def test_uniform_and_zero(self):
        assert ResourceVector.uniform(3.0).cpu == 3.0
        assert ResourceVector().is_zero

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector(cpu=-1.0)
