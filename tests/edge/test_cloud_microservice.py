"""Unit tests for edge clouds, microservices, users, and the backhaul."""

import numpy as np
import pytest

from repro.edge.cloud import EdgeCloud
from repro.edge.microservice import DelayClass, Microservice
from repro.edge.network import build_backhaul
from repro.edge.users import build_user_population
from repro.errors import CapacityExceededError, ConfigurationError


def make_service(service_id=1, **kwargs):
    defaults = dict(allocation=4.0, base_demand=2.0)
    defaults.update(kwargs)
    return Microservice(service_id=service_id, **defaults)


class TestMicroservice:
    def test_spare_is_allocation_above_base(self):
        assert make_service().spare == pytest.approx(2.0)

    def test_no_spare_when_underallocated(self):
        assert make_service(allocation=1.0, base_demand=2.0).spare == 0.0

    def test_share_capacity_accounting(self):
        service = make_service(share_capacity=3)
        service.record_shared(2)
        assert service.remaining_share_capacity == 1
        with pytest.raises(CapacityExceededError):
            service.record_shared(2)

    def test_unconstrained_sharing(self):
        service = make_service()
        assert service.remaining_share_capacity is None
        service.record_shared(100)  # never raises

    def test_grant_and_reclaim(self):
        service = make_service(allocation=4.0)
        service.grant(2.0)
        assert service.allocation == 6.0
        service.reclaim(5.0)
        assert service.allocation == pytest.approx(1.0)
        with pytest.raises(CapacityExceededError):
            service.reclaim(5.0)

    def test_delay_class_priority(self):
        assert DelayClass.DELAY_SENSITIVE.priority < DelayClass.DELAY_TOLERANT.priority

    def test_potential_seller_requires_spare_and_capacity(self):
        assert make_service(share_capacity=2).is_potential_seller
        depleted = make_service(share_capacity=2)
        depleted.record_shared(2)
        assert not depleted.is_potential_seller


class TestEdgeCloud:
    def test_hosting_and_lookup(self):
        cloud = EdgeCloud(cloud_id=0, capacity=10.0)
        service = make_service()
        cloud.host(service)
        assert service.service_id in cloud
        assert cloud.get(1) is service
        assert len(cloud) == 1

    def test_double_hosting_rejected(self):
        cloud = EdgeCloud(cloud_id=0, capacity=10.0)
        cloud.host(make_service())
        with pytest.raises(ConfigurationError):
            cloud.host(make_service())

    def test_evict(self):
        cloud = EdgeCloud(cloud_id=0, capacity=10.0)
        cloud.host(make_service())
        evicted = cloud.evict(1)
        assert evicted.service_id == 1
        assert 1 not in cloud

    def test_free_capacity(self):
        cloud = EdgeCloud(cloud_id=0, capacity=10.0)
        cloud.host(make_service(allocation=4.0))
        assert cloud.free_capacity == pytest.approx(6.0)

    def test_fair_share_fills_capacity_and_respects_priority(self):
        cloud = EdgeCloud(cloud_id=0, capacity=9.0)
        sensitive = make_service(
            1, delay_class=DelayClass.DELAY_SENSITIVE, base_demand=10.0
        )
        tolerant = make_service(
            2, delay_class=DelayClass.DELAY_TOLERANT, base_demand=10.0
        )
        cloud.host(sensitive)
        cloud.host(tolerant)
        allocation = cloud.apply_fair_share()
        assert allocation[1] == pytest.approx(6.0)  # double weight
        assert allocation[2] == pytest.approx(3.0)

    def test_fair_share_unknown_service_rejected(self):
        cloud = EdgeCloud(cloud_id=0, capacity=9.0)
        cloud.host(make_service())
        with pytest.raises(ConfigurationError):
            cloud.apply_fair_share({99: 1.0})

    def test_transfer_moves_resources(self):
        cloud = EdgeCloud(cloud_id=0, capacity=20.0)
        seller = make_service(1, allocation=6.0, base_demand=2.0)
        buyer_a = make_service(2, allocation=1.0)
        buyer_b = make_service(3, allocation=1.0)
        for s in (seller, buyer_a, buyer_b):
            cloud.host(s)
        cloud.transfer(1, [2, 3], per_buyer=1.0)
        assert seller.allocation == pytest.approx(4.0)
        assert buyer_a.allocation == pytest.approx(2.0)
        assert buyer_b.allocation == pytest.approx(2.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeCloud(cloud_id=0, capacity=0.0)


class TestBackhaul:
    def test_connected_with_positive_latencies(self):
        network = build_backhaul(np.random.default_rng(1), n_clouds=10)
        assert len(network.clouds) == 10
        assert network.latency(0, 5) > 0
        assert network.latency(3, 3) == 0.0

    def test_triangle_inequality_of_shortest_paths(self):
        network = build_backhaul(np.random.default_rng(2), n_clouds=8)
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert (
                        network.latency(a, c)
                        <= network.latency(a, b) + network.latency(b, c) + 1e-9
                    )

    def test_nearest_candidate(self):
        network = build_backhaul(np.random.default_rng(3), n_clouds=6)
        nearest = network.nearest(0, (2, 3, 4))
        assert nearest in (2, 3, 4)
        assert network.latency(0, nearest) == min(
            network.latency(0, c) for c in (2, 3, 4)
        )

    def test_single_cloud_network(self):
        network = build_backhaul(np.random.default_rng(4), n_clouds=1)
        assert network.clouds == (0,)
        assert network.latency(0, 0) == 0.0

    def test_unknown_cloud_rejected(self):
        network = build_backhaul(np.random.default_rng(5), n_clouds=3)
        with pytest.raises(ConfigurationError):
            network.neighbours(99)


class TestUsers:
    def test_population_shape(self):
        users = build_user_population(
            np.random.default_rng(1),
            n_users=300,
            access_points=10,
            services=(1, 2, 3),
        )
        assert len(users) == 300
        assert all(0 <= u.access_point < 10 for u in users)
        assert all(u.target_service in (1, 2, 3) for u in users)

    def test_rates_match_delay_classes(self):
        users = build_user_population(
            np.random.default_rng(2),
            n_users=100,
            access_points=5,
            services=(1,),
            sensitive_rate=5.0,
            tolerant_rate=10.0,
        )
        for user in users:
            if user.delay_class is DelayClass.DELAY_SENSITIVE:
                assert user.request_rate == 5.0
            else:
                assert user.request_rate == 10.0

    def test_requires_services(self):
        with pytest.raises(ConfigurationError):
            build_user_population(np.random.default_rng(3), services=())
