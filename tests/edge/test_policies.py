"""Unit tests for the strategic bidding policies."""

import numpy as np
import pytest

from repro.edge.platform import TruthfulCostPolicy
from repro.edge.policies import MarkupPolicy, OpportunisticPolicy, RandomizedPolicy
from repro.errors import ConfigurationError

BUYERS = [1, 2, 3, 4]


class TestTruthfulCostPolicy:
    def test_prices_equal_cost_times_size(self):
        policy = TruthfulCostPolicy(unit_cost_range=(10.0, 35.0))
        rng = np.random.default_rng(1)
        bids = policy.make_bids(100, BUYERS, max_units=3, rng=rng)
        cost = policy.unit_cost(100, rng)
        for bid in bids:
            assert bid.price == pytest.approx(cost * bid.size)
            assert bid.true_cost == pytest.approx(bid.price)

    def test_persistent_private_cost(self):
        policy = TruthfulCostPolicy()
        rng = np.random.default_rng(2)
        first = policy.unit_cost(7, rng)
        assert policy.unit_cost(7, rng) == first

    def test_no_buyers_no_bids(self):
        policy = TruthfulCostPolicy()
        assert policy.make_bids(100, [], 3, np.random.default_rng(3)) == []
        assert policy.make_bids(100, BUYERS, 0, np.random.default_rng(3)) == []

    def test_coverage_within_buyers_and_units(self):
        policy = TruthfulCostPolicy(bids_per_seller=3)
        bids = policy.make_bids(100, BUYERS, 2, np.random.default_rng(4))
        for bid in bids:
            assert bid.size <= 2
            assert bid.covered <= set(BUYERS)


class TestMarkupPolicy:
    def test_announced_price_is_marked_up_cost(self):
        policy = MarkupPolicy(markup=1.5)
        bids = policy.make_bids(100, BUYERS, 3, np.random.default_rng(5))
        for bid in bids:
            assert bid.price == pytest.approx(bid.cost * 1.5)
            assert bid.cost < bid.price

    def test_below_cost_markup_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkupPolicy(markup=0.9)

    def test_markup_one_is_truthful(self):
        policy = MarkupPolicy(markup=1.0)
        bids = policy.make_bids(100, BUYERS, 3, np.random.default_rng(6))
        for bid in bids:
            assert bid.price == pytest.approx(bid.cost)


class TestOpportunisticPolicy:
    def test_markup_grows_with_local_demand(self):
        policy = OpportunisticPolicy(
            base_markup=1.1, monopoly_markup=2.0, crowd_reference=4
        )
        assert policy.current_markup(0) == pytest.approx(1.1)
        assert policy.current_markup(2) == pytest.approx(1.55)
        assert policy.current_markup(4) == pytest.approx(2.0)
        assert policy.current_markup(40) == pytest.approx(2.0)  # saturates

    def test_bids_use_current_markup(self):
        policy = OpportunisticPolicy(
            base_markup=1.2, monopoly_markup=1.2, crowd_reference=4
        )
        bids = policy.make_bids(100, BUYERS, 3, np.random.default_rng(7))
        for bid in bids:
            assert bid.price == pytest.approx(bid.cost * 1.2)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            OpportunisticPolicy(base_markup=2.0, monopoly_markup=1.5)


class TestRandomizedPolicy:
    def test_never_below_cost(self):
        policy = RandomizedPolicy(sigma=1.0)
        rng = np.random.default_rng(8)
        for _ in range(10):
            for bid in policy.make_bids(100, BUYERS, 3, rng):
                assert bid.price >= bid.cost - 1e-12

    def test_sigma_zero_is_truthful(self):
        policy = RandomizedPolicy(sigma=0.0)
        bids = policy.make_bids(100, BUYERS, 3, np.random.default_rng(9))
        for bid in bids:
            assert bid.price == pytest.approx(bid.cost)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomizedPolicy(sigma=-0.1)
