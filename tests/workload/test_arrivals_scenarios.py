"""Unit tests for arrival processes, scenario presets, and traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.scenarios import (
    PAPER_DEFAULTS,
    PaperScenario,
    bids_sweep,
    microservice_sweep,
    rounds_sweep,
)
from repro.workload.traces import DiurnalTraceConfig, generate_demand_trace


class TestPoissonArrivals:
    def test_mean_count_close_to_rate_times_horizon(self):
        rng = np.random.default_rng(1)
        process = PoissonArrivals(rate=5.0)
        counts = [len(process.sample(100.0, rng)) for _ in range(50)]
        assert np.mean(counts) == pytest.approx(500, rel=0.1)

    def test_sorted_within_horizon(self):
        rng = np.random.default_rng(2)
        times = PoissonArrivals(rate=10.0).sample(20.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times < 20.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=1.0).sample(0.0, np.random.default_rng(3))


class TestDeterministicArrivals:
    def test_even_spacing(self):
        times = DeterministicArrivals(rate=2.0).sample(
            5.0, np.random.default_rng(0)
        )
        assert np.allclose(np.diff(times), 0.5)
        assert len(times) == 9  # 0.5, 1.0, ..., 4.5


class TestMMPPArrivals:
    def test_burst_phase_raises_rate(self):
        rng = np.random.default_rng(4)
        quiet = PoissonArrivals(rate=2.0)
        bursty = MMPPArrivals(
            quiet_rate=2.0, burst_rate=50.0, mean_quiet=2.0, mean_burst=2.0
        )
        horizon = 200.0
        quiet_count = len(quiet.sample(horizon, np.random.default_rng(4)))
        bursty_count = len(bursty.sample(horizon, rng))
        assert bursty_count > quiet_count

    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(5)
        times = MMPPArrivals(quiet_rate=1.0, burst_rate=10.0).sample(30.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times <= 30.0))

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(quiet_rate=0.0, burst_rate=1.0)


class TestScenarios:
    def test_paper_defaults_match_section_va(self):
        assert PAPER_DEFAULTS.n_users == 300
        assert PAPER_DEFAULTS.n_base_stations == 10
        assert PAPER_DEFAULTS.rounds == 10
        assert PAPER_DEFAULTS.n_microservices == 25
        assert PAPER_DEFAULTS.bids_per_seller == 2
        assert PAPER_DEFAULTS.price_range == (10.0, 35.0)

    def test_market_config_buyers_scale_with_requests(self):
        low = PaperScenario(n_requests=100).market_config()
        high = PaperScenario(n_requests=200).market_config()
        assert high.n_buyers > low.n_buyers

    def test_sweeps_vary_one_axis(self):
        counts = [s.n_microservices for s in microservice_sweep()]
        assert counts == [25, 35, 45, 55, 65, 75]
        rounds = [s.rounds for s in rounds_sweep()]
        assert rounds[0] == 1 and rounds[-1] == 15
        bids = [s.bids_per_seller for s in bids_sweep()]
        assert bids == [1, 2, 3, 4]

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperScenario(n_microservices=1)
        with pytest.raises(ConfigurationError):
            PaperScenario(rounds=0)


class TestTraces:
    def test_positive_and_right_length(self):
        trace = generate_demand_trace(
            DiurnalTraceConfig(), 500, np.random.default_rng(1)
        )
        assert len(trace) == 500
        assert np.all(trace > 0)

    def test_diurnal_cycle_visible_without_noise(self):
        config = DiurnalTraceConfig(
            amplitude=0.5, noise_sigma=0.0, flash_probability=0.0, period=100.0
        )
        trace = generate_demand_trace(config, 100, np.random.default_rng(2))
        assert trace.max() == pytest.approx(15.0, rel=0.05)
        assert trace.min() == pytest.approx(5.0, rel=0.05)

    def test_phase_shifts_peak(self):
        config = DiurnalTraceConfig(
            amplitude=0.5, noise_sigma=0.0, flash_probability=0.0, period=100.0
        )
        base = generate_demand_trace(config, 100, np.random.default_rng(3))
        shifted = generate_demand_trace(
            config, 100, np.random.default_rng(3), phase=50.0
        )
        assert int(np.argmax(base)) != int(np.argmax(shifted))

    def test_flash_crowds_add_spikes(self):
        calm = DiurnalTraceConfig(noise_sigma=0.0, flash_probability=0.0)
        spiky = DiurnalTraceConfig(
            noise_sigma=0.0, flash_probability=0.5, flash_multiplier=5.0
        )
        rng = np.random.default_rng(4)
        calm_trace = generate_demand_trace(calm, 200, np.random.default_rng(4))
        spiky_trace = generate_demand_trace(spiky, 200, rng)
        assert spiky_trace.max() > calm_trace.max() * 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalTraceConfig(amplitude=1.0)
        with pytest.raises(ConfigurationError):
            generate_demand_trace(
                DiurnalTraceConfig(), 0, np.random.default_rng(5)
            )
