"""Unit tests for the trace-driven horizon generator."""

import numpy as np
import pytest

from repro.core.msoa import run_msoa
from repro.errors import ConfigurationError
from repro.solvers.milp import solve_horizon_optimal
from repro.workload.trace_driven import (
    TraceDrivenConfig,
    generate_trace_driven_horizon,
)


class TestConfig:
    def test_defaults_valid(self):
        TraceDrivenConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_microservices": 2},
            {"rounds": 0},
            {"needy_quantile": 0.4},
            {"needy_quantile": 1.0},
            {"max_units": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TraceDrivenConfig(**kwargs)


class TestGeneration:
    def test_rounds_are_valid_instances(self):
        rng = np.random.default_rng(5)
        rounds, capacities = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=12, rounds=6), rng
        )
        assert len(rounds) == 6
        for instance in rounds:
            if instance.total_demand > 0:
                instance.check_feasible()

    def test_offline_feasible_with_repaired_capacities(self):
        rng = np.random.default_rng(6)
        rounds, capacities = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=12, rounds=5), rng
        )
        solve_horizon_optimal(rounds, capacities)  # must not raise

    def test_buyer_seller_roles_rotate(self):
        # With staggered diurnal phases, at least one microservice should
        # appear as a buyer in some round and a seller in another.
        rng = np.random.default_rng(7)
        rounds, _ = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=16, rounds=10), rng
        )
        buyer_rounds: dict[int, set[int]] = {}
        seller_rounds: dict[int, set[int]] = {}
        for t, instance in enumerate(rounds):
            for b in instance.buyers:
                buyer_rounds.setdefault(b, set()).add(t)
            for s in instance.sellers:
                seller_rounds.setdefault(s, set()).add(t)
        both = set(buyer_rounds) & set(seller_rounds)
        assert both, "expected role rotation across the horizon"

    def test_msoa_runs_on_trace_horizon(self):
        rng = np.random.default_rng(8)
        rounds, capacities = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=12, rounds=5), rng
        )
        outcome = run_msoa(rounds, capacities, on_infeasible="best_effort")
        outcome.verify_capacities()
        for result in outcome.rounds:
            result.outcome.verify()

    def test_deterministic_under_seed(self):
        a, ca = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=10, rounds=4),
            np.random.default_rng(11),
        )
        b, cb = generate_trace_driven_horizon(
            TraceDrivenConfig(n_microservices=10, rounds=4),
            np.random.default_rng(11),
        )
        assert ca == cb
        for ra, rb in zip(a, b):
            assert ra.bids == rb.bids
            assert dict(ra.demand) == dict(rb.demand)
