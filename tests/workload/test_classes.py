"""Unit tests for the request-class profiles."""

import numpy as np
import pytest

from repro.edge.microservice import DelayClass
from repro.errors import ConfigurationError
from repro.workload.classes import (
    PAPER_CLASSES,
    RequestClassProfile,
    WorkDistribution,
)


class TestProfiles:
    def test_paper_classes_match_section_va(self):
        sensitive = PAPER_CLASSES[DelayClass.DELAY_SENSITIVE]
        tolerant = PAPER_CLASSES[DelayClass.DELAY_TOLERANT]
        assert sensitive.arrival_rate == 5.0
        assert tolerant.arrival_rate == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": 0.0},
            {"work_mean": 0.0},
            {"pareto_shape": 1.0},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        defaults = dict(
            delay_class=DelayClass.DELAY_TOLERANT, arrival_rate=1.0
        )
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            RequestClassProfile(**defaults)


class TestSampling:
    def profile(self, distribution, **kwargs):
        return RequestClassProfile(
            delay_class=DelayClass.DELAY_TOLERANT,
            arrival_rate=1.0,
            work_mean=2.0,
            distribution=distribution,
            **kwargs,
        )

    def test_deterministic_is_constant(self):
        samples = self.profile(WorkDistribution.DETERMINISTIC).sample_work(
            np.random.default_rng(1), size=10
        )
        assert np.allclose(samples, 2.0)

    def test_exponential_mean(self):
        samples = self.profile(WorkDistribution.EXPONENTIAL).sample_work(
            np.random.default_rng(2), size=20000
        )
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_pareto_mean_and_tail(self):
        profile = self.profile(WorkDistribution.PARETO, pareto_shape=2.5)
        samples = profile.sample_work(np.random.default_rng(3), size=50000)
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)
        # Heavy tail: the max dwarfs the mean far more than exponential's.
        assert np.max(samples) > 10 * np.mean(samples)

    def test_all_samples_positive(self):
        for dist in WorkDistribution:
            samples = self.profile(dist).sample_work(
                np.random.default_rng(4), size=100
            )
            assert np.all(samples > 0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            self.profile(WorkDistribution.EXPONENTIAL).sample_work(
                np.random.default_rng(5), size=0
            )


class TestVariability:
    def test_coefficient_of_variation_ordering(self):
        det = RequestClassProfile(
            delay_class=DelayClass.DELAY_TOLERANT,
            arrival_rate=1.0,
            distribution=WorkDistribution.DETERMINISTIC,
        )
        expo = RequestClassProfile(
            delay_class=DelayClass.DELAY_TOLERANT,
            arrival_rate=1.0,
            distribution=WorkDistribution.EXPONENTIAL,
        )
        heavy = RequestClassProfile(
            delay_class=DelayClass.DELAY_TOLERANT,
            arrival_rate=1.0,
            distribution=WorkDistribution.PARETO,
            pareto_shape=1.5,
        )
        assert det.coefficient_of_variation == 0.0
        assert expo.coefficient_of_variation == 1.0
        assert heavy.coefficient_of_variation == float("inf")

    def test_pareto_cv_finite_above_shape_two(self):
        profile = RequestClassProfile(
            delay_class=DelayClass.DELAY_TOLERANT,
            arrival_rate=1.0,
            distribution=WorkDistribution.PARETO,
            pareto_shape=3.0,
        )
        cv = profile.coefficient_of_variation
        assert 0.0 < cv < float("inf")
