"""Unit tests for the synthetic market generators."""

import numpy as np
import pytest

from repro.core.msoa import run_msoa
from repro.errors import ConfigurationError
from repro.solvers.milp import solve_horizon_optimal
from repro.workload.bidgen import (
    MarketConfig,
    ensure_online_feasible,
    generate_capacities,
    generate_horizon,
    generate_round,
    repair_horizon_capacities,
)


class TestMarketConfig:
    def test_defaults_valid(self):
        MarketConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sellers": 0},
            {"bids_per_seller": 0},
            {"price_range": (0.0, 5.0)},
            {"price_range": (10.0, 5.0)},
            {"demand_units_range": (0, 2)},
            {"coverage_range": (0, 1)},
            {"coverage_slack": -1},
            {"n_sellers": 2, "demand_units_range": (1, 5)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MarketConfig(**kwargs)


class TestGenerateRound:
    def test_instance_is_always_feasible(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            instance = generate_round(
                MarketConfig(n_sellers=12, n_buyers=6), rng
            )
            instance.check_feasible()

    def test_prices_within_declared_range(self):
        rng = np.random.default_rng(12)
        config = MarketConfig(price_range=(10.0, 35.0))
        instance = generate_round(config, rng)
        for bid in instance.bids:
            assert 10.0 <= bid.price <= 35.0

    def test_demand_within_declared_range(self):
        rng = np.random.default_rng(13)
        config = MarketConfig(demand_units_range=(2, 3))
        instance = generate_round(config, rng)
        assert all(2 <= u <= 3 for u in instance.demand.values())

    def test_bid_count_bounded_by_alternatives(self):
        rng = np.random.default_rng(14)
        config = MarketConfig(n_sellers=10, bids_per_seller=2)
        instance = generate_round(config, rng)
        assert len(instance.bids) <= 20
        assert len(instance.sellers) == 10

    def test_deterministic_under_same_seed(self):
        a = generate_round(MarketConfig(), np.random.default_rng(7))
        b = generate_round(MarketConfig(), np.random.default_rng(7))
        assert a.bids == b.bids
        assert dict(a.demand) == dict(b.demand)

    def test_buyers_and_sellers_disjoint(self):
        instance = generate_round(MarketConfig(), np.random.default_rng(8))
        assert not set(instance.buyers) & set(instance.sellers)


class TestCapacitiesAndHorizon:
    def test_capacities_within_range(self):
        config = MarketConfig()
        capacities = generate_capacities(
            config, np.random.default_rng(1), capacity_range=(10, 40)
        )
        assert all(10 <= c <= 40 for c in capacities.values())
        assert len(capacities) == config.n_sellers

    def test_horizon_offline_feasible(self):
        rng = np.random.default_rng(2)
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=10, n_buyers=5), rng, rounds=5
        )
        solve_horizon_optimal(horizon, capacities)  # must not raise

    def test_horizon_round_count(self):
        horizon, _ = generate_horizon(
            MarketConfig(), np.random.default_rng(3), rounds=4
        )
        assert len(horizon) == 4

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_horizon(MarketConfig(), np.random.default_rng(4), rounds=0)

    def test_repair_preserves_or_inflates(self):
        rng = np.random.default_rng(5)
        horizon, _ = generate_horizon(
            MarketConfig(n_sellers=8, n_buyers=4), rng, rounds=3,
            ensure_feasible=False,
        )
        drawn = generate_capacities(MarketConfig(n_sellers=8, n_buyers=4), rng)
        repaired = repair_horizon_capacities(horizon, drawn)
        for seller, cap in repaired.items():
            assert cap >= drawn[seller]

    def test_ensure_online_feasible_allows_full_msoa_run(self):
        rng = np.random.default_rng(6)
        horizon, capacities = generate_horizon(
            MarketConfig(n_sellers=10, n_buyers=5), rng, rounds=5
        )
        capacities = ensure_online_feasible(horizon, capacities)
        outcome = run_msoa(horizon, capacities, on_infeasible="raise")
        for round_result in outcome.rounds:
            round_result.outcome.verify()
