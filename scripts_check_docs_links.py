"""Check every Markdown link in docs/ and the top-level Markdown pages.

Self-contained (stdlib only), so CI and contributors run the exact same
gate::

    python scripts_check_docs_links.py

For each inline ``[text](target)`` link, reference definition
``[label]: target``, and reference usage ``[text][label]`` in the
checked files:

* relative file targets must exist on disk (checked against the linking
  file's directory);
* ``#fragment`` anchors — standalone or attached to a relative Markdown
  target — must match an anchor in the target file: a heading under
  GitHub's slugification (lowercase, punctuation stripped, spaces to
  dashes, duplicate headings numbered ``slug-1``, ``slug-2``, …) or an
  explicit ``<a id="...">`` / ``<a name="...">`` tag;
* reference usages must have a matching ``[label]:`` definition in the
  same file (labels are case-insensitive, per CommonMark);
* absolute URLs (``http(s)://``, ``mailto:``) are *not* fetched — this
  gate is for repo-internal rot, not for the network — but their syntax
  is validated (a scheme and a host).

Fenced code blocks and inline code spans are ignored throughout.

Exit code 0 iff no broken links; each offender is printed as
``file:line: message``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent
CHECKED = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "ROADMAP.md",
    *sorted((ROOT / "docs").glob("*.md")),
]

#: Inline links, excluding images' size-hint false positives: capture the
#: target of ``[...](...)`` while tolerating one level of parentheses.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)?)\)")
#: Reference definition: ``[label]: target`` at (up to 3-space indented)
#: line start.
REF_DEF = re.compile(r"^ {0,3}\[([^\]^][^\]]*)\]:\s*(\S+)")
#: Reference usage: ``[text][label]`` (full) or ``[text][]`` (collapsed,
#: where the text doubles as the label).
REF_USE = re.compile(r"(?<!\!)\[([^\]]+)\]\[([^\]]*)\]")
CODE_FENCE = re.compile(r"^(```|~~~)")
CODE_SPAN = re.compile(r"`[^`]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
HTML_ANCHOR = re.compile(r"""<a\s+(?:id|name)\s*=\s*["']([^"']+)["']""", re.I)
ABSOLUTE = re.compile(r"^[a-z][a-z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (before duplicate numbering)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return re.sub(r" ", "-", text)


def _markdown_lines(path: pathlib.Path):
    """Lines of ``path`` outside fenced code blocks, inline code blanked."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield lineno, line


def anchors_of(path: pathlib.Path) -> set[str]:
    """Every anchor GitHub would render for ``path``.

    Headings slugify as in :func:`github_slug`; the *n*-th duplicate of a
    slug gets ``-n`` appended (GitHub's disambiguation). Explicit
    ``<a id=...>`` / ``<a name=...>`` tags anchor verbatim.
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for _, line in _markdown_lines(path):
        for tag in HTML_ANCHOR.finditer(line):
            anchors.add(tag.group(1))
        match = HEADING.match(line)
        if match:
            slug = github_slug(match.group(1))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def iter_links(path: pathlib.Path):
    """``(lineno, target)`` for every inline link and reference definition."""
    for lineno, line in _markdown_lines(path):
        stripped = CODE_SPAN.sub("", line)
        definition = REF_DEF.match(stripped)
        if definition:
            yield lineno, definition.group(2)
            continue
        for match in LINK.finditer(stripped):
            yield lineno, match.group(1)


def iter_reference_uses(path: pathlib.Path):
    """``(lineno, label)`` for every ``[text][label]`` reference usage."""
    for lineno, line in _markdown_lines(path):
        stripped = CODE_SPAN.sub("", line)
        if REF_DEF.match(stripped):
            continue
        for match in REF_USE.finditer(stripped):
            yield lineno, match.group(2) or match.group(1)


def reference_labels(path: pathlib.Path) -> set[str]:
    """Lower-cased labels with a ``[label]: target`` definition in ``path``."""
    labels: set[str] = set()
    for _, line in _markdown_lines(path):
        definition = REF_DEF.match(CODE_SPAN.sub("", line))
        if definition:
            labels.add(definition.group(1).strip().lower())
    return labels


def check_file(path: pathlib.Path) -> list[str]:
    problems: list[str] = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(ROOT)}:{lineno}"
        if ABSOLUTE.match(target):
            if target.startswith(("http://", "https://")):
                if not re.match(r"^https?://[\w.-]+", target):
                    problems.append(f"{where}: malformed URL {target!r}")
            elif not target.startswith("mailto:"):
                problems.append(f"{where}: unknown scheme in {target!r}")
            continue
        base, _, fragment = target.partition("#")
        resolved = (
            path if not base else (path.parent / base).resolve()
        )
        if base and not resolved.exists():
            problems.append(f"{where}: broken link target {target!r}")
            continue
        if fragment:
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets: no contract
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{where}: no heading for anchor "
                    f"#{fragment} in {resolved.relative_to(ROOT)}"
                )
    defined = reference_labels(path)
    for lineno, label in iter_reference_uses(path):
        if label.strip().lower() not in defined:
            problems.append(
                f"{path.relative_to(ROOT)}:{lineno}: "
                f"reference link [{label}] has no definition"
            )
    return problems


def main() -> int:
    missing = [p for p in CHECKED if not p.exists()]
    if missing:
        for path in missing:
            print(f"checked file is gone: {path}", file=sys.stderr)
        return 1
    problems = [issue for path in CHECKED for issue in check_file(path)]
    for issue in problems:
        print(issue, file=sys.stderr)
    print(
        f"checked {len(CHECKED)} files: "
        + (f"{len(problems)} broken links" if problems else "all links OK")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
