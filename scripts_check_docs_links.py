"""Check every Markdown link in docs/ and README.md.

Self-contained (stdlib only), so CI and contributors run the exact same
gate::

    python scripts_check_docs_links.py

For each ``[text](target)`` link in the checked files:

* relative file targets must exist on disk (checked against the linking
  file's directory);
* ``#fragment`` anchors — standalone or attached to a relative Markdown
  target — must match a heading in the target file, using GitHub's
  slugification (lowercase, punctuation stripped, spaces to dashes);
* absolute URLs (``http(s)://``, ``mailto:``) are *not* fetched — this
  gate is for repo-internal rot, not for the network — but their syntax
  is validated (a scheme and a host).

Exit code 0 iff no broken links; each offender is printed as
``file:line: message``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent
CHECKED = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

#: Inline links, excluding images' size-hint false positives: capture the
#: target of ``[...](...)`` while tolerating one level of parentheses.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)?)\)")
CODE_FENCE = re.compile(r"^(```|~~~)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
ABSOLUTE = re.compile(r"^[a-z][a-z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return re.sub(r" ", "-", text)


def anchors_of(path: pathlib.Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(1)))
    return anchors


def iter_links(path: pathlib.Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: pathlib.Path) -> list[str]:
    problems: list[str] = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(ROOT)}:{lineno}"
        if ABSOLUTE.match(target):
            if target.startswith(("http://", "https://")):
                if not re.match(r"^https?://[\w.-]+", target):
                    problems.append(f"{where}: malformed URL {target!r}")
            elif not target.startswith("mailto:"):
                problems.append(f"{where}: unknown scheme in {target!r}")
            continue
        base, _, fragment = target.partition("#")
        resolved = (
            path if not base else (path.parent / base).resolve()
        )
        if base and not resolved.exists():
            problems.append(f"{where}: broken link target {target!r}")
            continue
        if fragment:
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets: no contract
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{where}: no heading for anchor "
                    f"#{fragment} in {resolved.relative_to(ROOT)}"
                )
    return problems


def main() -> int:
    missing = [p for p in CHECKED if not p.exists()]
    if missing:
        for path in missing:
            print(f"checked file is gone: {path}", file=sys.stderr)
        return 1
    problems = [issue for path in CHECKED for issue in check_file(path)]
    for issue in problems:
        print(issue, file=sys.stderr)
    print(
        f"checked {len(CHECKED)} files: "
        + (f"{len(problems)} broken links" if problems else "all links OK")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
