"""Embed results/*.txt tables into EXPERIMENTS.md.

EXPERIMENTS.md carries ``<!-- RESULTS:figNN -->`` markers; this script
replaces each marker (and any previously embedded block following it)
with the corresponding table from ``results/figNN.txt``, wrapped in a
fenced code block.  Idempotent: re-running after a new sweep refreshes
the numbers in place.
"""

from __future__ import annotations

import pathlib
import re

MARKER = re.compile(
    r"<!-- RESULTS:(?P<panel>fig\w+) -->(?:\n```\n.*?\n```)?",
    re.DOTALL,
)


def embed(experiments_path="EXPERIMENTS.md", results_dir="results") -> int:
    path = pathlib.Path(experiments_path)
    text = path.read_text()
    results = pathlib.Path(results_dir)
    replaced = 0

    def replacement(match: re.Match) -> str:
        nonlocal replaced
        panel = match.group("panel")
        table_file = results / f"{panel}.txt"
        if not table_file.exists():
            return match.group(0)  # keep the marker; table not produced yet
        table = table_file.read_text().strip()
        replaced += 1
        return f"<!-- RESULTS:{panel} -->\n```\n{table}\n```"

    path.write_text(MARKER.sub(replacement, text))
    return replaced


if __name__ == "__main__":
    count = embed()
    print(f"embedded {count} result tables into EXPERIMENTS.md")
