#!/usr/bin/env python3
"""Distributed serving: message-driven auction rounds, verified determinism.

Serves a seeded two-cloud deployment through the asynchronous platform
(`repro.dist`): each microservice runs as an independent seller agent
with its own cost policy and private RNG stream, the round orchestrator
collects bids over an in-memory transport within a grace window, and the
rounds clear through the exact same mechanism code as the classic
synchronous loop — which is why the script can end by replaying the same
scenario synchronously and asserting the outcomes are bit-identical.

The same session can run over real sockets with the seller fleet in
separate OS processes (``TcpTransport`` + ``spawn_agents`` — see
docs/serving.md); pass ``--tcp`` for that variant.

Run with::

    python examples/distributed_serving.py          # in-memory transport
    python examples/distributed_serving.py --tcp    # loopback TCP, 2 workers

The core of the in-memory variant, as a checked example:

>>> from repro.api import DistScenario, replay_scenario, serve
>>> scenario = DistScenario(seed=7, horizon_rounds=2)
>>> service = serve(scenario)
>>> reports = service.run()
>>> len(reports)
2
>>> service.ledger.is_budget_balanced
True
>>> [r.auction.outcome.to_dict() if r.auction else None
...  for r in reports] == [
...     r.auction.outcome.to_dict() if r.auction else None
...     for r in replay_scenario(scenario)]
True
"""

import sys

from repro.api import AuctionService, DistScenario, replay_scenario, serve


def main() -> None:
    scenario = DistScenario(seed=7, horizon_rounds=6)
    service = serve(scenario)
    reports = service.run()

    print(f"served {len(reports)} rounds over the in-memory transport "
          f"(grace window {service.orchestrator.grace_window})")
    print(f"agents: {len(service.sellers)} sellers "
          f"({', '.join(agent.handle.endpoint for agent in service.sellers.values())})\n")

    for report in reports:
        demand = sum(report.demand_units.values())
        if report.auction is None:
            print(f"  round {report.round_index}: no demand, no auction")
            continue
        winners = report.auction.outcome.winners
        print(f"  round {report.round_index}: demand {demand} units, "
              f"{len(winners)} winning bids, "
              f"social cost {report.auction.social_cost:7.2f}")

    ledger = service.ledger
    print(f"\nledger: paid {ledger.total_paid:.2f} to sellers, "
          f"charged {ledger.total_charged:.2f} to buyers "
          f"(budget balanced: {ledger.is_budget_balanced})")

    earnings = {
        sid: sum(agent.earnings.values())
        for sid, agent in sorted(service.sellers.items())
        if agent.earnings
    }
    print("per-agent earnings (from OutcomeNotice broadcasts): "
          + ", ".join(f"seller {sid}: {total:.2f}"
                      for sid, total in earnings.items()))

    # The determinism contract: the async run must be bit-identical to a
    # synchronous replay of the same scenario (same seed, same per-seller
    # RNG streams, same clearing path).
    sync_reports = replay_scenario(scenario)
    async_outcomes = [
        r.auction.outcome.to_dict() if r.auction else None for r in reports
    ]
    sync_outcomes = [
        r.auction.outcome.to_dict() if r.auction else None
        for r in sync_reports
    ]
    assert async_outcomes == sync_outcomes, "determinism contract violated"
    assert sum(len(agent.earnings) for agent in service.sellers.values()) > 0
    assert ledger.is_budget_balanced
    print("\ndeterminism check: async outcomes bit-identical to the "
          "synchronous replay")


def main_tcp() -> None:
    """The same session over loopback TCP with multi-process agents."""
    scenario = DistScenario(seed=7, horizon_rounds=6)
    service = AuctionService(
        scenario,
        listen=("127.0.0.1", 0),   # ephemeral port; printed once bound
        agent_processes=2,         # seller fleet split across 2 OS processes
    )
    service.on_listening = lambda addr: print(
        f"listening on {addr[0]}:{addr[1]}, waiting for agent workers"
    )
    reports = service.run()

    print(f"served {len(reports)} rounds over TCP "
          f"({len(scenario.seller_ids())} sellers in worker processes)")

    # Same contract as in memory: under the virtual clock, crossing
    # process and socket boundaries changes nothing about outcomes.
    sync_reports = replay_scenario(scenario)
    async_outcomes = [
        r.auction.outcome.to_dict() if r.auction else None for r in reports
    ]
    sync_outcomes = [
        r.auction.outcome.to_dict() if r.auction else None
        for r in sync_reports
    ]
    assert async_outcomes == sync_outcomes, "determinism contract violated"
    assert service.ledger.is_budget_balanced
    print("determinism check: TCP outcomes bit-identical to the "
          "synchronous replay")


if __name__ == "__main__":
    main_tcp() if "--tcp" in sys.argv[1:] else main()
