#!/usr/bin/env python3
"""Why lie? — an empirical demonstration of truthfulness (Theorem 4).

Takes one seller in a random market and sweeps its announced price from
0.3× to 3× its true cost, re-running the auction each time.  The printed
utility curve shows the Myerson structure: under-bidding still wins but
cannot raise the (critical-value) payment; over-bidding eventually loses
the auction and drops utility to zero.  Truth-telling is on the utility
plateau — there is never a strictly better announcement.

Also contrasts the pay-as-bid baseline, where the same sweep *does* show
a profitable lie (the reason naive payments break incentive
compatibility).

Run with::

    python examples/truthfulness_demo.py
"""

import numpy as np

from repro import MarketConfig, generate_round, run_ssam
from repro.baselines.pay_as_bid import run_pay_as_bid


def utility_curve(market, bid, factors):
    """Seller utility under SSAM and pay-as-bid for each price factor."""
    rows = []
    for factor in factors:
        announced = bid.with_price(bid.cost * factor)
        deviated = market.replace_bid(announced)
        ssam = run_ssam(deviated)
        ssam_utility = ssam.utility_of(bid.seller)
        pab = run_pay_as_bid(deviated)
        pab_utility = 0.0
        for winner in pab.winners:
            if winner.seller == bid.seller:
                pab_utility = winner.price - bid.cost
        rows.append((factor, ssam_utility, pab_utility))
    return rows


def main() -> None:
    rng = np.random.default_rng(99)
    market = generate_round(
        MarketConfig(n_sellers=12, n_buyers=4, bids_per_seller=1), rng
    )
    truthful = run_ssam(market)
    # Pick a winning seller so the sweep crosses the win/lose boundary.
    target = truthful.winners[0].bid
    print(f"target: seller {target.seller}, covers {sorted(target.covered)}, "
          f"true cost {target.cost:.2f}\n")

    factors = [0.3, 0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.6, 2.0, 2.5, 3.0]
    rows = utility_curve(market, target, factors)

    print("price-factor  announced  SSAM-utility  pay-as-bid-utility")
    truthful_utility = dict((f, u) for f, u, _ in rows)[1.0]
    for factor, ssam_utility, pab_utility in rows:
        marker = "  <- truth" if factor == 1.0 else ""
        print(f"{factor:12.1f}  {target.cost * factor:9.2f}  "
              f"{ssam_utility:12.2f}  {pab_utility:18.2f}{marker}")

    best = max(u for _, u, _ in rows)
    print(f"\nSSAM: best achievable utility {best:.2f} vs truthful "
          f"{truthful_utility:.2f} -> lying never helps")
    best_pab = max(u for _, _, u in rows)
    pab_truth = dict((f, u) for f, _, u in rows)[1.0]
    if best_pab > pab_truth + 1e-9:
        print(f"pay-as-bid: over-asking lifts utility from {pab_truth:.2f} "
              f"to {best_pab:.2f} -> naive payments invite manipulation")
    assert best <= truthful_utility + 1e-7


if __name__ == "__main__":
    main()
