#!/usr/bin/env python3
"""Full edge-platform simulation: the closed loop of the paper's Figure 2.

Builds the system of Section II — edge clouds co-located with base
stations, microservices with delay classes, end users issuing Poisson
requests — then runs the platform loop: the discrete-event simulator
measures waiting/execution/utilization per round, the Section-III
estimator turns them into demand units, spare microservices bid, MSOA
selects and pays winners, and the reclaimed resources are re-allocated.

Watch the feedback loop: once the overloaded microservices receive extra
resources, their backlog (and hence their demand) drops in later rounds.

Run with::

    python examples/edge_platform_sim.py
"""

import numpy as np

from repro.demand.estimator import DemandEstimator, DemandWeights
from repro.demand.indicators import RequestRateIndicator
from repro.edge import (
    DelayClass,
    EdgeCloud,
    EdgePlatform,
    Microservice,
    PlatformConfig,
    build_backhaul,
    build_user_population,
)


def build_deployment(seed: int = 5):
    rng = np.random.default_rng(seed)
    clouds = [EdgeCloud(0, capacity=60.0), EdgeCloud(1, capacity=60.0)]
    overloaded = {1, 2}
    for sid in range(1, 9):
        service = Microservice(
            service_id=sid,
            delay_class=(
                DelayClass.DELAY_SENSITIVE if sid in overloaded
                else DelayClass.DELAY_TOLERANT
            ),
            allocation=1.0 if sid in overloaded else 6.0,
            base_demand=1.0 if sid in overloaded else 2.0,
            share_capacity=None if sid in overloaded else 12,
        )
        clouds[(sid - 1) % 2].host(service)
    network = build_backhaul(rng, n_clouds=2)
    users = build_user_population(
        rng,
        n_users=60,
        access_points=2,
        services=tuple(range(1, 9)),
        sensitive_rate=0.25,
        tolerant_rate=0.5,
    )
    estimator = DemandEstimator(
        weights=DemandWeights(waiting=2.0, processing=1.0, request_rate=1.0),
        request_rate=RequestRateIndicator(delta=0.5, neighbour_density=8.0),
        max_units=3,
    )
    return EdgePlatform(
        clouds,
        network,
        users,
        estimator,
        config=PlatformConfig(round_length=8.0, work_mean=0.5),
        rng=rng,
        horizon_rounds=6,
    )


def main() -> None:
    platform = build_deployment()
    print("round  needy-services          winners  round-cost  payments")
    for _ in range(6):
        report = platform.run_round()
        needy = ",".join(str(s) for s in sorted(report.demand_units)) or "-"
        winners = (
            len(report.auction.outcome.winners) if report.auction else 0
        )
        payments = report.auction.total_payment if report.auction else 0.0
        print(f"{report.round_index:5d}  {needy:22s}  {winners:7d}  "
              f"{report.social_cost:10.2f}  {payments:8.2f}")

    print(f"\ntotal social cost : {platform.total_social_cost:9.2f}")
    print(f"platform paid     : {platform.ledger.total_paid:9.2f}")
    print(f"buyers charged    : {platform.ledger.total_charged:9.2f} "
          f"(budget balanced: {platform.ledger.is_budget_balanced})")

    online = platform.finalize()
    online.verify_capacities()
    print("\nfinal allocations after resource sharing:")
    for cloud in platform.clouds.values():
        for service in cloud.services:
            shared = service.shared_so_far
            print(f"  cloud {cloud.cloud_id} service {service.service_id}: "
                  f"{service.allocation:5.2f} units"
                  + (f" (shared {shared})" if shared else ""))


if __name__ == "__main__":
    main()
