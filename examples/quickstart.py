#!/usr/bin/env python3
"""Quickstart: one auction round, end to end, in ~40 lines.

Builds a small resource-sharing market (5 needy microservices, 25 helper
microservices bidding at the paper's U[10, 35] prices), runs the
single-stage truthful auction (SSAM), and compares the result with the
exact optimum and the VCG gold standard.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.api import MarketConfig, generate_round, run_ssam, solve_wsp_optimal
from repro.baselines.vcg import run_vcg


def main() -> None:
    rng = np.random.default_rng(2019)  # the paper's year, for luck
    market = generate_round(MarketConfig(n_sellers=25, n_buyers=5), rng)
    print(f"market: {len(market.bids)} bids from {len(market.sellers)} "
          f"sellers, {market.total_demand} demand units across "
          f"{len(market.buyers)} needy microservices\n")

    outcome = run_ssam(market)
    print("SSAM (Algorithm 1) winners:")
    for winner in outcome.winners:
        print(f"  seller {winner.bid.seller:4d} covers "
              f"{sorted(winner.bid.covered)} "
              f"price {winner.bid.price:6.2f} -> paid {winner.payment:6.2f}")
    print(f"\nsocial cost     : {outcome.social_cost:8.2f}")
    print(f"total payment   : {outcome.total_payment:8.2f} "
          "(critical values: truthfulness premium)")

    optimum = solve_wsp_optimal(market)
    ratio = outcome.social_cost / optimum.objective
    print(f"exact optimum   : {optimum.objective:8.2f} "
          f"(SSAM ratio {ratio:.3f}, Theorem-3 bound {outcome.ratio_bound:.2f})")

    vcg = run_vcg(market)
    print(f"VCG reference   : cost {vcg.social_cost:8.2f}, "
          f"payments {vcg.total_payment:8.2f}")

    assert outcome.total_payment >= outcome.social_cost  # IR in aggregate
    assert ratio <= outcome.ratio_bound + 1e-9
    print("\nall mechanism invariants hold — see tests/properties for more")


if __name__ == "__main__":
    main()
