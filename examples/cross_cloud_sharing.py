#!/usr/bin/env python3
"""Cross-cloud sharing: when is remote supply worth the backhaul?

The paper restricts resource sharing to microservices on the same edge
cloud.  This example relaxes that restriction on a 4-site metro
deployment and sweeps the latency surcharge from "free backhaul" to
"prohibitive", showing the transition: with a cheap backhaul the auction
happily imports remote supply and the social cost drops; as the
surcharge grows, the market converges to the paper's local-only outcome.

Run with::

    python examples/cross_cloud_sharing.py
"""

import numpy as np

from repro.analysis.visualize import bar_chart
from repro.edge.cross_cloud import CrossCloudConfig, build_cross_cloud_market
from repro.edge.network import build_backhaul
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal


def deployment(rng):
    """Four clouds; cloud 3 has cheap sellers, cloud 0 hungry buyers."""
    seller_clouds, seller_costs = {}, {}
    sid = 100
    for cloud in range(4):
        for _ in range(3):
            seller_clouds[sid] = cloud
            # Remote cloud 3 is the discount site.
            low, high = (8.0, 14.0) if cloud == 3 else (20.0, 35.0)
            seller_costs[sid] = float(rng.uniform(low, high))
            sid += 1
    buyer_clouds = {0: 0, 1: 0, 2: 1}
    demand = {0: 2, 1: 1, 2: 1}
    return seller_clouds, seller_costs, buyer_clouds, demand


def main() -> None:
    network = build_backhaul(np.random.default_rng(3), n_clouds=4)
    parts = deployment(np.random.default_rng(4))

    results = {}
    for label, config in [
        ("free backhaul", CrossCloudConfig(latency_penalty=0.0)),
        ("surcharge 1/ms", CrossCloudConfig(latency_penalty=1.0)),
        ("surcharge 4/ms", CrossCloudConfig(latency_penalty=4.0)),
        ("surcharge 16/ms", CrossCloudConfig(latency_penalty=16.0)),
        ("local-only (paper)", CrossCloudConfig(local_only=True)),
    ]:
        instance = build_cross_cloud_market(
            *parts, network, config, np.random.default_rng(5),
            bids_per_seller=2, price_ceiling=900.0,
        )
        try:
            results[label] = solve_wsp_optimal(instance).objective
        except InfeasibleInstanceError:
            results[label] = float("nan")
            print(f"{label}: infeasible (local supply too thin)")

    print("optimal social cost by market rule:\n")
    print(bar_chart({k: v for k, v in results.items() if v == v}, width=36))

    cheap = results["free backhaul"]
    local = results.get("local-only (paper)", float("nan"))
    if local == local:
        saving = (local - cheap) / local * 100
        print(f"\nfree backhaul saves {saving:.1f}% over local-only; the "
              "surcharge sweep shows the market converging back to the "
              "paper's rule as the network gets expensive")
    assert cheap <= min(v for v in results.values() if v == v) + 1e-9


if __name__ == "__main__":
    main()
