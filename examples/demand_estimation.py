#!/usr/bin/env python3
"""Inside the Section-III demand estimator.

Walks through the full estimation pipeline on a single simulated
microservice: run the DES server under three load levels, inspect the
three indicators (waiting-time backlog, processing-rate gap, request-rate
intensity), derive the blend weights with AHP from pairwise judgments,
and show how the final integer demand units react to load.

Run with::

    python examples/demand_estimation.py
"""

import numpy as np

from repro.demand import (
    DemandEstimator,
    DemandWeights,
    ProcessingRateIndicator,
    RequestRateIndicator,
    WaitingTimeIndicator,
)
from repro.sim import ArrivalProcess, EventKind, RequestServer, SimulationEngine


def simulate(rate: float, allocation: float, seed: int = 3, horizon: float = 120.0):
    """Run one microservice at the given load; return its round snapshot."""
    engine = SimulationEngine()
    server = RequestServer(microservice=1, allocation=allocation)
    engine.register(EventKind.ARRIVAL, server.handle_arrival)
    engine.register(EventKind.DEPARTURE, server.handle_departure)
    process = ArrivalProcess(
        microservice=1,
        rate=rate,
        horizon=horizon,
        rng=np.random.default_rng(seed),
        work_mean=1.0,
    )
    engine.register(EventKind.ARRIVAL, process.on_arrival)
    process.start(engine)
    engine.run_until(horizon)
    return server.stats.snapshot(0, 0.0, horizon, arrival_rate_hint=rate)


def main() -> None:
    # AHP: waiting-time backlog matters twice as much as the processing
    # gap, request-rate intensity sits between them (Saaty 1-9 scale).
    weights, ahp = DemandWeights.from_ahp_judgments(
        waiting_vs_processing=2.0,
        waiting_vs_request=1.0,
        processing_vs_request=0.5,
    )
    print("AHP-derived weights (consistency ratio "
          f"{ahp.consistency_ratio:.4f}, consistent={ahp.is_consistent}):")
    print(f"  waiting={weights.waiting:.3f}  processing="
          f"{weights.processing:.3f}  request_rate={weights.request_rate:.3f}\n")

    estimator = DemandEstimator(
        weights=weights,
        waiting=WaitingTimeIndicator(zeta=2.0),
        processing=ProcessingRateIndicator(),
        request_rate=RequestRateIndicator(delta=0.5, neighbour_density=4.0),
        max_units=6,
    )

    print("load level     served/recv  util   gamma  R-gap  T-rate  -> units")
    scenarios = [
        ("underloaded", 2.0, 8.0),
        ("balanced", 6.0, 8.0),
        ("overloaded", 14.0, 4.0),
        ("saturated", 24.0, 2.0),
    ]
    units_by_level = []
    for name, rate, allocation in scenarios:
        snap = simulate(rate, allocation)
        gamma = estimator.waiting(snap)
        r_gap = estimator.processing(snap)
        t_rate = estimator.request_rate(snap, a_max=8.0)
        units = estimator.estimate_units(snap, a_max=8.0)
        units_by_level.append(units)
        print(f"{name:12s}  {snap.served:4d}/{snap.received:4d}  "
              f"{snap.utilization:5.2f}  {gamma:5.2f}  {r_gap:5.2f}  "
              f"{t_rate:6.2f}  -> {units}")

    assert units_by_level == sorted(units_by_level), (
        "demand units must be monotone in load"
    )
    print("\ndemand grows monotonically with load — the estimator orders "
          "microservices correctly for the auction")


if __name__ == "__main__":
    main()
