#!/usr/bin/env python3
"""Online resource sharing over a 10-round horizon (MSOA, Algorithm 2).

Simulates the paper's online setting: each round brings fresh demands and
bids; sellers have long-run sharing capacities Θᵢ drawn from the paper's
[10, 40] range; the multi-stage online auction decides on the fly while a
clairvoyant MILP solves the whole horizon in hindsight.  Prints the
per-round ledger and the empirical competitive ratio against its
Theorem-7 bound — and shows the scarcity prices ψᵢ rising as capacity is
consumed.

Run with::

    python examples/online_horizon.py
"""

import numpy as np

from repro import MarketConfig, generate_horizon, run_msoa
from repro.baselines.offline import run_offline_optimal
from repro.workload.bidgen import ensure_online_feasible


def main() -> None:
    rng = np.random.default_rng(7)
    config = MarketConfig(n_sellers=20, n_buyers=6)
    horizon, capacities = generate_horizon(config, rng, rounds=10)
    capacities = ensure_online_feasible(horizon, capacities)

    outcome = run_msoa(horizon, capacities)

    print("round  demand  winners  social-cost  payments   max-psi")
    for result in outcome.rounds:
        instance = horizon[result.round_index]
        max_psi = max(result.psi_after.values(), default=0.0)
        print(f"{result.round_index:5d}  {instance.total_demand:6d}  "
              f"{len(result.outcome.winners):7d}  "
              f"{result.social_cost:11.2f}  "
              f"{result.total_payment:8.2f}  {max_psi:8.4f}")

    offline = run_offline_optimal(horizon, capacities)
    ratio = outcome.social_cost / offline.social_cost
    print(f"\nonline social cost : {outcome.social_cost:10.2f}")
    print(f"offline optimum    : {offline.social_cost:10.2f}")
    print(f"competitive ratio  : {ratio:10.3f} "
          f"(Theorem-7 bound {outcome.competitive_bound:.2f}, "
          f"alpha={outcome.alpha:.2f}, beta={outcome.beta:.2f})")

    used = outcome.capacity_used
    busiest = sorted(used, key=used.get, reverse=True)[:5]
    print("\nbusiest sellers (units shared / capacity):")
    for seller in busiest:
        print(f"  seller {seller}: {used[seller]:3d} / {capacities[seller]}")

    outcome.verify_capacities()
    assert ratio <= outcome.competitive_bound + 1e-6
    print("\ncapacity constraints and the competitive bound hold")


if __name__ == "__main__":
    main()
