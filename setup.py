"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` also works on offline machines whose
setuptools cannot build PEP-517 editable wheels (the legacy
``setup.py develop`` path needs no ``wheel`` package).
"""

from setuptools import setup

setup()
