"""A pure-Python exact branch-and-bound for the single-round WSP.

This solver exists for two reasons: it cross-checks the HiGHS MILP
(:mod:`repro.solvers.milp`) in the property-based test suite, and it keeps
the library usable on installations where SciPy's ``milp`` is unavailable.
It is exact but exponential, so callers should keep instances to roughly
``≤ 25`` bids; the tests do.

The search branches on bids ordered by ascending average price, prunes by
(1) a greedy-completion upper bound (initial incumbent), (2) a fractional
lower bound obtained from the cheapest remaining unit prices, and (3)
infeasibility of the remaining supply.
"""

from __future__ import annotations

import math

from repro.core.bids import Bid
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import ExactSolution

__all__ = ["solve_wsp_branch_bound"]


def _lower_bound(
    remaining: list[Bid], coverage: CoverageState
) -> float:
    """A cheap admissible lower bound on the cost to finish coverage.

    Sorts remaining bids by average price against the current coverage and
    greedily fills the unmet demand *fractionally* (allowing partial bids),
    which can only underestimate the true integral completion cost.
    """
    unmet = coverage.unmet
    if unmet == 0:
        return 0.0
    rates: list[tuple[float, int]] = []
    for bid in remaining:
        utility = coverage.utility_of(bid)
        if utility > 0:
            rates.append((bid.price / utility, utility))
    rates.sort()
    bound = 0.0
    for rate, utility in rates:
        take = min(utility, unmet)
        bound += rate * take
        unmet -= take
        if unmet == 0:
            return bound
    return math.inf  # cannot finish: signals infeasible branch


def solve_wsp_branch_bound(
    instance: WSPInstance, *, node_limit: int = 2_000_000
) -> ExactSolution:
    """Solve the single-round ILP (12)–(15) exactly by branch-and-bound.

    Raises :class:`~repro.errors.InfeasibleInstanceError` if the demand
    cannot be met, and :class:`RuntimeError` if ``node_limit`` nodes are
    expanded without closing the search (instance too large).
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    if not demand:
        return ExactSolution(objective=0.0, chosen=())
    bids = sorted(
        instance.bids, key=lambda bid: (bid.price / bid.size, bid.seller, bid.index)
    )

    best_cost = math.inf
    best_set: tuple[Bid, ...] = ()
    nodes = 0

    def search(idx: int, coverage: CoverageState, cost: float, chosen: list[Bid]) -> None:
        nonlocal best_cost, best_set, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"branch-and-bound exceeded {node_limit} nodes; "
                "use the MILP solver for instances this large"
            )
        if coverage.satisfied:
            if cost < best_cost:
                best_cost = cost
                best_set = tuple(chosen)
            return
        if idx == len(bids):
            return
        remaining = [
            bid
            for bid in bids[idx:]
            if all(c.seller != bid.seller for c in chosen)
        ]
        bound = _lower_bound(remaining, coverage)
        if cost + bound >= best_cost:
            return
        bid = bids[idx]
        taken_seller = any(c.seller == bid.seller for c in chosen)
        # Branch 1: include this bid (if its seller hasn't won yet and it
        # contributes something).
        if not taken_seller and coverage.utility_of(bid) > 0:
            next_coverage = coverage.copy()
            next_coverage.apply(bid)
            chosen.append(bid)
            search(idx + 1, next_coverage, cost + bid.price, chosen)
            chosen.pop()
        # Branch 2: skip it.
        search(idx + 1, coverage, cost, chosen)

    search(0, CoverageState(demand=demand), 0.0, [])
    if math.isinf(best_cost):
        raise InfeasibleInstanceError(
            "branch-and-bound found no feasible winner set"
        )
    instance.verify_solution(best_set)
    return ExactSolution(objective=float(best_cost), chosen=best_set)
