"""Fast lower bounds for the winner-selection problem.

Large sweeps sometimes need a cheap optimum proxy when even HiGHS is too
slow to call thousands of times.  Two bounds are provided, both valid
lower bounds on the ILP optimum:

* :func:`fractional_unit_bound` — fill demand units with the cheapest
  average-price fractions (ignores the one-bid-per-seller constraint).
* :func:`lp_bound` — the LP-relaxation optimum (tighter, slower).

The experiment harness prefers the exact MILP and falls back to these only
when a sweep's instance count makes that impractical; the bound used is
always recorded in the emitted table.
"""

from __future__ import annotations

from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.lp_relax import solve_lp_relaxation

__all__ = ["fractional_unit_bound", "lp_bound"]


def fractional_unit_bound(instance: WSPInstance) -> float:
    """A lower bound from fractional cheapest-unit filling.

    Every feasible solution pays at least the sum of the cheapest
    per-unit rates needed to assemble ``total_demand`` units, because each
    selected bid delivers its units at its own average price and fractions
    can only be cheaper than integral selections.
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    if not demand:
        return 0.0
    coverage = CoverageState(demand=demand)
    rates: list[tuple[float, int]] = []
    for bid in instance.bids:
        utility = coverage.utility_of(bid)
        if utility > 0:
            rates.append((bid.price / utility, utility))
    rates.sort()
    unmet = instance.total_demand
    bound = 0.0
    for rate, units in rates:
        take = min(units, unmet)
        bound += rate * take
        unmet -= take
        if unmet == 0:
            return bound
    raise InfeasibleInstanceError(
        f"{unmet} demand units cannot be covered even fractionally"
    )


def lp_bound(instance: WSPInstance) -> float:
    """The LP-relaxation optimum — the tightest polynomial lower bound."""
    return solve_lp_relaxation(instance).objective
