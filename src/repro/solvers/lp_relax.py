"""The LP relaxation of the winner-selection problem and its dual (16).

Relaxing ``xᵗᵢⱼ ∈ {0,1}`` to ``0 ≤ xᵗᵢⱼ ≤ 1`` yields a linear program whose
optimum lower-bounds the ILP optimum; its dual is the program the paper's
dual-fitting analysis targets (Eq. 16–18).  This module solves the
relaxation with HiGHS and extracts both the primal fractional solution and
the dual prices, so tests can verify weak duality and the mechanism's
dual-fitting certificate against the *true* LP dual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError, SolverError

__all__ = ["LPRelaxation", "solve_lp_relaxation"]


@dataclass(frozen=True)
class LPRelaxation:
    """Solution of the LP relaxation of a single-round WSP.

    Attributes
    ----------
    objective:
        The optimal fractional social cost (a lower bound on the ILP).
    x:
        Fractional selection per bid, in instance bid order.
    buyer_duals:
        Dual prices ``gᵇ`` of the coverage constraints (≥ 0).
    seller_duals:
        Dual prices ``βᵢ`` of the one-bid-per-seller constraints (≥ 0).
    bound_duals:
        Dual prices ``hᵢⱼ`` of the ``x ≤ 1`` bounds, per bid in instance
        order (≥ 0).
    """

    objective: float
    x: np.ndarray
    buyer_duals: dict[int, float]
    seller_duals: dict[int, float]
    bound_duals: np.ndarray

    def dual_objective(self, instance: WSPInstance) -> float:
        """``Σ_b demand[b]·g_b − Σ_i βᵢ − Σ hᵢⱼ`` — the dual of (16).

        By strong LP duality this equals :attr:`objective` up to solver
        tolerance, which the test suite verifies.
        """
        gain = sum(
            instance.demand[b] * self.buyer_duals.get(b, 0.0)
            for b in instance.buyers
        )
        loss = sum(self.seller_duals.values()) + float(np.sum(self.bound_duals))
        return float(gain - loss)


def solve_lp_relaxation(instance: WSPInstance) -> LPRelaxation:
    """Solve the LP relaxation of ILP (12)–(15) and return primal + duals."""
    if instance.total_demand == 0:
        return LPRelaxation(
            objective=0.0,
            x=np.zeros(len(instance.bids)),
            buyer_duals={},
            seller_duals={},
            bound_duals=np.zeros(len(instance.bids)),
        )
    if not instance.bids:
        raise InfeasibleInstanceError("no bids but positive demand")
    c, a_cover, b_cover, a_seller, b_seller = instance.constraint_matrices()
    n = len(instance.bids)
    # linprog uses A_ub @ x <= b_ub; coverage is >=, so negate.
    a_ub = np.vstack([-a_cover, a_seller])
    b_ub = np.concatenate([-b_cover, b_seller])
    result = linprog(
        c=c,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleInstanceError("LP relaxation infeasible")
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    marginals = result.ineqlin.marginals  # one per row of A_ub, <= 0
    buyers = instance.buyers
    sellers = instance.sellers
    buyer_duals = {
        b: float(-marginals[r]) for r, b in enumerate(buyers)
    }
    seller_duals = {
        s: float(-marginals[len(buyers) + r]) for r, s in enumerate(sellers)
    }
    bound_duals = np.maximum(0.0, -np.asarray(result.upper.marginals))
    return LPRelaxation(
        objective=float(result.fun),
        x=np.asarray(result.x),
        buyer_duals=buyer_duals,
        seller_duals=seller_duals,
        bound_duals=bound_duals,
    )
