"""Exact and bounding solvers for the winner-selection problem.

* :mod:`repro.solvers.milp` — exact optima via SciPy's HiGHS MILP, for
  single rounds and whole horizons (the figures' ratio denominators).
* :mod:`repro.solvers.branch_bound` — pure-Python exact cross-check.
* :mod:`repro.solvers.lp_relax` — LP relaxation with dual extraction.
* :mod:`repro.solvers.greedy_lb` — fast lower bounds for large sweeps.
"""

from repro.solvers.branch_bound import solve_wsp_branch_bound
from repro.solvers.greedy_lb import fractional_unit_bound, lp_bound
from repro.solvers.lp_relax import LPRelaxation, solve_lp_relaxation
from repro.solvers.milp import ExactSolution, solve_horizon_optimal, solve_wsp_optimal

__all__ = [
    "solve_wsp_branch_bound",
    "fractional_unit_bound",
    "lp_bound",
    "LPRelaxation",
    "solve_lp_relaxation",
    "ExactSolution",
    "solve_horizon_optimal",
    "solve_wsp_optimal",
]
