"""Exact winner-selection optima via mixed-integer programming (HiGHS).

The paper's performance-ratio figures divide mechanism social cost by the
*optimal* objective of ILP (12) (single round) or ILP (7) (whole horizon
with capacity constraints).  This module builds those programs and solves
them with :func:`scipy.optimize.milp` (the bundled HiGHS solver), which is
exact at the instance scales of the paper (tens of microservices, a few
bids each).

A pure-Python branch-and-bound (:mod:`repro.solvers.branch_bound`)
cross-checks these results in the test suite.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError, SolverError

__all__ = ["ExactSolution", "solve_wsp_optimal", "solve_horizon_optimal"]


@dataclass(frozen=True)
class ExactSolution:
    """An exact optimum of a winner-selection (sub)problem.

    ``chosen`` lists the selected bids; for horizon problems the parallel
    ``rounds`` tuple gives each chosen bid's round index.
    """

    objective: float
    chosen: tuple[Bid, ...]
    rounds: tuple[int, ...] = ()

    @property
    def chosen_keys(self) -> frozenset[tuple[int, int]]:
        """Keys of selected bids (single-round problems)."""
        return frozenset(bid.key for bid in self.chosen)


def _solve(
    c: np.ndarray,
    constraints: list[LinearConstraint],
    n: int,
    *,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> np.ndarray:
    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = mip_rel_gap
    result = milp(
        c=c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(lb=np.zeros(n), ub=np.ones(n)),
        options=options or None,
    )
    if result.status == 2:  # HiGHS: infeasible
        raise InfeasibleInstanceError("MILP reports the instance infeasible")
    if result.x is not None:
        # Optimal, or an incumbent within the configured gap/time budget —
        # either way a feasible solution the caller can use.
        return np.asarray(result.x)
    if result.status == 1:
        raise SolverError(
            f"MILP hit its time limit ({time_limit}s) without an incumbent"
        )
    raise SolverError(f"MILP failed: {result.message}")


def solve_wsp_optimal(instance: WSPInstance) -> ExactSolution:
    """Solve the single-round ILP (12)–(15) exactly.

    Returns the minimum social cost and one optimal winner set.  Raises
    :class:`~repro.errors.InfeasibleInstanceError` when no selection can
    cover the demand.
    """
    if instance.total_demand == 0:
        return ExactSolution(objective=0.0, chosen=())
    if not instance.bids:
        raise InfeasibleInstanceError("no bids but positive demand")
    c, a_cover, b_cover, a_seller, b_seller = instance.constraint_matrices()
    n = len(instance.bids)
    constraints = [
        LinearConstraint(a_cover, lb=b_cover, ub=np.inf),
        LinearConstraint(a_seller, lb=-np.inf, ub=b_seller),
    ]
    x = _solve(c, constraints, n)
    chosen = tuple(
        bid for bid, flag in zip(instance.bids, x) if flag > 0.5
    )
    instance.verify_solution(chosen)
    return ExactSolution(
        objective=float(instance.solution_cost(chosen)), chosen=chosen
    )


def solve_horizon_optimal(
    rounds: Sequence[WSPInstance],
    capacities: Mapping[int, int] | None = None,
    *,
    feasibility_only: bool = False,
    time_limit: float = 120.0,
    mip_rel_gap: float = 0.01,
) -> ExactSolution:
    """Solve the clairvoyant offline ILP (7)–(11) over a whole horizon.

    Variables span every (round, bid) pair; in addition to each round's
    coverage and one-bid-per-seller constraints, the long-run capacity
    constraint (11) limits each seller's total committed coverage units
    ``Σ_t |Sᵗᵢⱼ|·xᵗᵢⱼ ≤ Θᵢ``.  This optimum is the denominator of the
    competitive-ratio figures (5a, 6a, 6b).

    Horizon ILPs can be brutally hard when demands sit on the coverage
    boundary (branch-and-bound has nothing to prune), so the solve runs
    with a relative MIP gap (default 1%) and a time budget — the returned
    objective is within ``mip_rel_gap`` of the true optimum, which is far
    below the seed noise of any ratio figure.  ``feasibility_only`` zeroes
    the objective for the capacity-repair probes that only ask *whether* a
    schedule exists (HiGHS finds feasible points orders of magnitude
    faster than it proves optimality).
    """
    variables: list[tuple[int, Bid]] = []
    for t, instance in enumerate(rounds):
        for bid in instance.bids:
            variables.append((t, bid))
    n = len(variables)
    total_demand = sum(inst.total_demand for inst in rounds)
    if total_demand == 0:
        return ExactSolution(objective=0.0, chosen=(), rounds=())
    if n == 0:
        raise InfeasibleInstanceError("no bids across the horizon")
    if feasibility_only:
        c = np.zeros(n)
    else:
        c = np.array([bid.price for _, bid in variables], dtype=float)

    constraints: list[LinearConstraint] = []
    # Per-round coverage (constraint 10/13).
    for t, instance in enumerate(rounds):
        buyers = instance.buyers
        if not buyers:
            continue
        rows = np.zeros((len(buyers), n))
        buyer_row = {b: r for r, b in enumerate(buyers)}
        for col, (tt, bid) in enumerate(variables):
            if tt != t:
                continue
            for buyer in bid.covered:
                row = buyer_row.get(buyer)
                if row is not None:
                    rows[row, col] = 1.0
        lb = np.array([instance.demand[b] for b in buyers], dtype=float)
        constraints.append(LinearConstraint(rows, lb=lb, ub=np.inf))
    # Per-round one-bid-per-seller (constraint 9/14).
    for t, instance in enumerate(rounds):
        sellers = instance.sellers
        if not sellers:
            continue
        rows = np.zeros((len(sellers), n))
        seller_row = {s: r for r, s in enumerate(sellers)}
        for col, (tt, bid) in enumerate(variables):
            if tt == t:
                rows[seller_row[bid.seller], col] = 1.0
        constraints.append(
            LinearConstraint(rows, lb=-np.inf, ub=np.ones(len(sellers)))
        )
    # Long-run capacity (constraint 11).
    if capacities:
        sellers = sorted(capacities)
        rows = np.zeros((len(sellers), n))
        seller_row = {s: r for r, s in enumerate(sellers)}
        for col, (_, bid) in enumerate(variables):
            row = seller_row.get(bid.seller)
            if row is not None:
                rows[row, col] = bid.size
        ub = np.array([capacities[s] for s in sellers], dtype=float)
        constraints.append(LinearConstraint(rows, lb=-np.inf, ub=ub))

    x = _solve(
        c,
        constraints,
        n,
        time_limit=time_limit,
        mip_rel_gap=None if feasibility_only else mip_rel_gap,
    )
    chosen_pairs = [
        (t, bid) for (t, bid), flag in zip(variables, x) if flag > 0.5
    ]
    return ExactSolution(
        objective=float(sum(bid.price for _, bid in chosen_pairs)),
        chosen=tuple(bid for _, bid in chosen_pairs),
        rounds=tuple(t for t, _ in chosen_pairs),
    )
