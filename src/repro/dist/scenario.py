"""Reproducible serving scenarios and the synchronous determinism oracle.

A :class:`DistScenario` is a frozen, seed-complete description of a
deployment (clouds, services, users, estimator, platform config) from
which a fresh :class:`~repro.edge.platform.EdgePlatform` core can be
built any number of times — which is exactly what the determinism
contract needs: :func:`repro.api.serve` builds one copy and serves it
over a transport, :func:`replay_scenario` builds an identical copy and
runs it through the classic synchronous loop with the same per-seller
RNG streams (:class:`~repro.dist.agents.AgentStreamPolicy`), and the two
must produce bit-identical outcomes.

The default geometry matches the repository's integration-test
deployment: two clouds, a couple of overloaded delay-sensitive services,
and a well-provisioned majority with spare capacity to sell.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.demand.estimator import DemandEstimator, DemandWeights
from repro.demand.indicators import RequestRateIndicator
from repro.dist.agents import AgentStreamPolicy, default_policy_factory
from repro.edge.cloud import EdgeCloud
from repro.edge.microservice import DelayClass, Microservice
from repro.edge.network import build_backhaul
from repro.edge.platform import (
    BiddingPolicy,
    EdgePlatform,
    PlatformConfig,
    PlatformRoundReport,
)
from repro.edge.users import build_user_population
from repro.errors import ConfigurationError

__all__ = ["DistScenario", "replay_scenario"]


@dataclass(frozen=True)
class DistScenario:
    """A seed-complete, repeatable serving deployment.

    Everything the platform core depends on is derived from the fields
    below — two :meth:`build_platform` calls with the same scenario
    produce independent but statistically *identical* platforms (same
    topology, same arrival processes, same demand), because every random
    choice flows from ``seed``.

    ``mechanism`` takes a registry name (``"pay-as-bid"``, ``"vcg"``,
    ...) or ``None`` for the paper's MSOA; ``faults``/``resilience``
    are forwarded to the mechanism exactly as in the synchronous
    platform (they are frozen plans, so sharing one across replays is
    safe).  ``engine`` selects the clearing engine (``"fast"``,
    ``"reference"`` or ``"columnar"``) for mechanisms that accept one —
    outcomes are engine-independent, so the determinism contract holds
    for every choice.
    """

    seed: int = 5
    n_clouds: int = 2
    cloud_capacity: float = 60.0
    n_services: int = 8
    overloaded: tuple[int, ...] = (1, 2)
    n_users: int = 60
    horizon_rounds: int = 10
    round_length: float = 8.0
    work_mean: float = 0.5
    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    mechanism: str | None = None
    engine: str = "fast"
    shards: int = 1
    shard_strategy: str = "hash"
    faults: object | None = None
    resilience: object | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference", "columnar"):
            raise ConfigurationError(
                "engine must be 'fast', 'reference' or 'columnar', "
                f"got {self.engine!r}"
            )
        if self.n_clouds < 1:
            raise ConfigurationError("n_clouds must be at least 1")
        if self.n_services < 1:
            raise ConfigurationError("n_services must be at least 1")
        if self.horizon_rounds < 1:
            raise ConfigurationError("horizon_rounds must be at least 1")
        if self.shards > 1 and self.mechanism is not None:
            raise ConfigurationError(
                "sharded clearing is an MSOA decomposition; shards > 1 "
                "requires mechanism=None"
            )

    def platform_config(self) -> PlatformConfig:
        """The :class:`PlatformConfig` every build of this scenario uses."""
        return PlatformConfig(
            round_length=self.round_length,
            work_mean=self.work_mean,
            bids_per_seller=self.bids_per_seller,
            unit_cost_range=self.unit_cost_range,
            engine=self.engine,
            shards=self.shards,
            shard_strategy=self.shard_strategy,
        )

    def policy_factory(self) -> Callable[[], BiddingPolicy]:
        """One truthful policy per seller, priced over this scenario's range."""
        return default_policy_factory(self.platform_config())

    def build_platform(
        self, *, bidding_policy: BiddingPolicy | None = None
    ) -> EdgePlatform:
        """Construct a fresh platform core for this scenario.

        Used by the serving facade (no deprecation warning — this *is*
        the facade's construction path).  ``bidding_policy`` is only
        relevant for synchronous replays; the distributed orchestrator
        never consults it.
        """
        rng = np.random.default_rng(self.seed)
        clouds = [
            EdgeCloud(cid, capacity=self.cloud_capacity)
            for cid in range(self.n_clouds)
        ]
        for sid in range(1, self.n_services + 1):
            overloaded = sid in self.overloaded
            service = Microservice(
                service_id=sid,
                delay_class=(
                    DelayClass.DELAY_SENSITIVE
                    if overloaded
                    else DelayClass.DELAY_TOLERANT
                ),
                allocation=1.0 if overloaded else 6.0,
                base_demand=1.0 if overloaded else 2.0,
                share_capacity=None if overloaded else 12,
            )
            clouds[(sid - 1) % self.n_clouds].host(service)
        network = build_backhaul(rng, n_clouds=self.n_clouds)
        users = build_user_population(
            rng,
            n_users=self.n_users,
            access_points=self.n_clouds,
            services=tuple(range(1, self.n_services + 1)),
            sensitive_rate=0.25,
            tolerant_rate=0.5,
        )
        estimator = DemandEstimator(
            weights=DemandWeights(waiting=2.0, processing=1.0, request_rate=1.0),
            request_rate=RequestRateIndicator(delta=0.5, neighbour_density=8.0),
            max_units=3,
        )
        return EdgePlatform._create(
            clouds,
            network,
            users,
            estimator,
            config=self.platform_config(),
            bidding_policy=bidding_policy,
            rng=rng,
            horizon_rounds=self.horizon_rounds,
            mechanism=self.mechanism,
            faults=self.faults,
            resilience=self.resilience,
        )

    def seller_ids(self) -> tuple[int, ...]:
        """Every service id (any of them may sell in some round)."""
        return tuple(range(1, self.n_services + 1))


def replay_scenario(
    scenario: DistScenario, rounds: int | None = None
) -> list[PlatformRoundReport]:
    """Run a scenario through the classic synchronous loop — the oracle.

    Builds a fresh platform whose bidding policy replays the per-seller
    RNG streams the distributed agents would use
    (:class:`~repro.dist.agents.AgentStreamPolicy`), then runs it for
    ``rounds`` (default: the scenario horizon).  A seeded
    :func:`repro.api.serve` session over the in-memory transport must
    produce bit-identical :class:`~repro.core.outcomes.AuctionOutcome`\\ s
    to this replay — that equivalence is the determinism contract, and
    the dist test suite asserts it mechanism by mechanism.
    """
    platform = scenario.build_platform(
        bidding_policy=AgentStreamPolicy(
            scenario.seed, scenario.policy_factory()
        )
    )
    return platform.run(rounds)
