"""Independent auction agents and the deterministic RNG-stream scheme.

In the distributed platform a seller is no longer an object the loop
calls into — it is a coroutine (:class:`SellerAgent`) that owns its
private cost, its private randomness, and its own mailbox, and interacts
with the platform purely through messages.  :class:`AgentHandle` is the
thin client every agent (including hand-written ones in tests or
notebooks) uses to receive messages and submit bids.

Determinism contract
--------------------
The synchronous :class:`~repro.edge.platform.EdgePlatform` draws every
seller's bid randomness from the *platform's* generator, in seller-id
order — an ordering a set of independent agents cannot reproduce.  The
distributed platform therefore gives each seller a **private stream**
derived from the scenario seed and its own id (:func:`seller_stream`):
the draws no longer depend on who bid before, so any arrival order yields
the same bids.  :class:`AgentStreamPolicy` is the synchronous mirror — a
:class:`~repro.edge.platform.BiddingPolicy` that replays exactly those
per-seller streams inside the classic loop — which is what makes a
seeded async run bit-identical to its synchronous replay
(:func:`repro.dist.replay_scenario`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.bids import Bid
from repro.dist.messages import (
    BidSubmission,
    Envelope,
    OutcomeNotice,
    RoundOpen,
    Shutdown,
)
from repro.dist.transport import Mailbox, Transport
from repro.edge.platform import BiddingPolicy, PlatformConfig, TruthfulCostPolicy

__all__ = [
    "ORCHESTRATOR_ENDPOINT",
    "seller_endpoint",
    "seller_stream",
    "default_policy_factory",
    "AgentStreamPolicy",
    "AgentHandle",
    "SellerAgent",
    "BuyerAgent",
]

ORCHESTRATOR_ENDPOINT = "orchestrator"
"""The well-known endpoint name the platform listens on."""

_STREAM_TAG = 0xD157
"""Domain-separation tag so seller streams never collide with the
platform's simulation generator for the same seed."""


def seller_endpoint(seller_id: int) -> str:
    """Canonical endpoint name for a seller agent."""
    return f"seller-{seller_id}"


def seller_stream(seed: int, seller_id: int) -> np.random.Generator:
    """The private bid-randomness stream of one seller.

    Seeded from ``(tag, scenario seed, seller id)`` via NumPy's
    ``SeedSequence`` spawning, so distinct sellers get independent
    streams and the same ``(seed, seller_id)`` always reproduces the
    same draws — on any host, in any arrival order.
    """
    return np.random.default_rng([_STREAM_TAG, int(seed), int(seller_id)])


def default_policy_factory(
    config: PlatformConfig | None = None,
) -> Callable[[], BiddingPolicy]:
    """A factory producing one fresh truthful policy per seller agent.

    Every agent needs its *own* policy instance (the policy caches the
    seller's private cost); the factory captures the platform config so
    agents price over the same ``unit_cost_range`` the synchronous
    default would.
    """
    cfg = config or PlatformConfig()
    return lambda: TruthfulCostPolicy(
        bids_per_seller=cfg.bids_per_seller,
        unit_cost_range=cfg.unit_cost_range,
    )


class AgentStreamPolicy(BiddingPolicy):
    """Synchronous replay of the distributed agents' private RNG streams.

    Plugged into :class:`~repro.edge.platform.EdgePlatform` as its
    ``bidding_policy``, this produces — seller by seller — exactly the
    bids the :class:`SellerAgent` fleet produces over a transport for the
    same ``seed``: one policy instance and one :func:`seller_stream` per
    seller, with the platform's own generator deliberately ignored so it
    is consumed identically (i.e. only by the simulation) in both modes.
    """

    def __init__(
        self,
        seed: int,
        policy_factory: Callable[[], BiddingPolicy] | None = None,
    ) -> None:
        self.seed = int(seed)
        self._factory = policy_factory or default_policy_factory()
        self._policies: dict[int, BiddingPolicy] = {}
        self._streams: dict[int, np.random.Generator] = {}

    def _for_seller(
        self, seller_id: int
    ) -> tuple[BiddingPolicy, np.random.Generator]:
        if seller_id not in self._policies:
            self._policies[seller_id] = self._factory()
            self._streams[seller_id] = seller_stream(self.seed, seller_id)
        return self._policies[seller_id], self._streams[seller_id]

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        policy, stream = self._for_seller(seller_id)
        # ``rng`` (the platform generator) is intentionally unused: the
        # whole point is that bid randomness comes from private streams.
        return policy.make_bids(seller_id, local_buyers, max_units, stream)


class AgentHandle:
    """A connected agent's client handle onto the auction service.

    Wraps the agent's mailbox and the transport so agent code never
    touches either directly: ``await handle.next_message()`` to receive,
    :meth:`submit_bid` to answer a :class:`RoundOpen`.  Handles are
    created by :meth:`repro.dist.AuctionService.connect` (or directly
    from a transport when wiring things by hand in tests).
    """

    def __init__(
        self,
        transport: Transport,
        endpoint: str,
        *,
        seller_id: int | None = None,
        mailbox: Mailbox | None = None,
    ) -> None:
        self.transport = transport
        self.endpoint = endpoint
        self.seller_id = seller_id
        self.mailbox = mailbox if mailbox is not None else transport.register(endpoint)

    async def next_message(self) -> Envelope:
        """Wait for the next envelope addressed to this agent."""
        return await self.mailbox.get()

    def submit_bid(
        self,
        round_open: RoundOpen,
        bids: Sequence[Bid] = (),
        *,
        delay: float = 0.0,
    ) -> Envelope:
        """Answer a round announcement with this agent's bids.

        An empty ``bids`` sequence is an explicit decline (it releases
        the orchestrator's round barrier immediately instead of running
        out the wall-clock guard).  ``delay`` is virtual-clock latency:
        a submission whose delivery time lands past the round's
        ``deadline`` is genuinely late and will be rejected.
        """
        seller_id = (
            self.seller_id if self.seller_id is not None else round_open.seller_id
        )
        submission = BidSubmission(
            round_index=round_open.round_index,
            seller_id=seller_id,
            bids=tuple(bids),
        )
        return self.transport.send(
            ORCHESTRATOR_ENDPOINT,
            submission,
            sender=self.endpoint,
            delay=delay,
        )


class SellerAgent:
    """An autonomous seller: private cost, private randomness, own inbox.

    The agent's :meth:`run` coroutine loops on its mailbox — bidding on
    every :class:`RoundOpen`, recording its earnings from every
    :class:`OutcomeNotice`, exiting on :class:`Shutdown`.  A non-zero
    ``submission_delay`` models a slow seller on the virtual clock
    (useful to exercise the grace window; it breaks sync/async parity by
    design, since the synchronous loop has no notion of lateness).
    """

    def __init__(
        self,
        handle: AgentHandle,
        *,
        policy: BiddingPolicy,
        rng: np.random.Generator,
        submission_delay: float = 0.0,
    ) -> None:
        if handle.seller_id is None:
            raise ValueError("a SellerAgent's handle must carry its seller_id")
        self.handle = handle
        self.seller_id = handle.seller_id
        self.policy = policy
        self.rng = rng
        self.submission_delay = submission_delay
        self.earnings: dict[int, float] = {}
        self.rounds_bid = 0

    async def run(self) -> None:
        """Serve rounds until the platform says shutdown."""
        while True:
            envelope = await self.handle.next_message()
            message = envelope.message
            if isinstance(message, Shutdown):
                return
            if isinstance(message, RoundOpen):
                bids = self.policy.make_bids(
                    self.seller_id,
                    list(message.local_buyers),
                    message.max_units,
                    self.rng,
                )
                self.handle.submit_bid(
                    message, bids, delay=self.submission_delay
                )
                self.rounds_bid += 1
            elif isinstance(message, OutcomeNotice):
                earned = message.payment_to(self.seller_id)
                if earned:
                    self.earnings[message.round_index] = earned


class BuyerAgent:
    """A passive buyer observer: tallies the units it was granted.

    Buyers do not act in the paper's mechanism (the platform bids on
    their behalf from estimated demand), so the agent only watches
    :class:`OutcomeNotice` broadcasts — but it is a real endpoint, which
    is what a future buyer-side strategy would extend.
    """

    def __init__(self, handle: AgentHandle, buyer_id: int) -> None:
        self.handle = handle
        self.buyer_id = buyer_id
        self.units_received: dict[int, int] = {}

    async def run(self) -> None:
        """Observe outcomes until the platform says shutdown."""
        while True:
            envelope = await self.handle.next_message()
            message = envelope.message
            if isinstance(message, Shutdown):
                return
            if isinstance(message, OutcomeNotice):
                units = message.units_to(self.buyer_id)
                if units:
                    self.units_received[message.round_index] = units
