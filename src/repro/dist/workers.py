"""Multi-process agent placement for TCP serving sessions.

One orchestrator process listens on a :class:`~repro.dist.tcp.
TcpTransport` router; seller agents live in separate OS processes, each
running :func:`agent_worker` — dial the router, register one endpoint per
assigned seller, then serve :class:`~repro.dist.agents.SellerAgent`
loops until the platform broadcasts shutdown (or the connection dies,
which the client transport converts into a synthetic shutdown so the
worker exits cleanly).

The determinism contract survives the process boundary because bid
randomness never leaves the seller: each worker rebuilds its sellers'
private streams from ``(scenario.seed, seller_id)`` alone
(:func:`~repro.dist.agents.seller_stream`), and policies are rebuilt
from the scenario's frozen config — so *which* process a seller lands in
(and the round-robin partition below) cannot change a single draw.

Workers are started with the ``spawn`` start method — a fork would
duplicate the parent's event loop and observability state.  ``spawn``
re-imports :mod:`repro` in the child, so :func:`spawn_agents` makes the
package importable there by prepending its source directory to the
child's ``PYTHONPATH``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from pathlib import Path

import repro
from repro.dist.agents import (
    AgentHandle,
    SellerAgent,
    seller_endpoint,
    seller_stream,
)
from repro.dist.scenario import DistScenario
from repro.dist.tcp import TcpTransport
from repro.errors import ConfigurationError

__all__ = ["spawn_agents", "run_agent_worker", "agent_worker"]


async def agent_worker(
    host: str,
    port: int,
    seller_ids: tuple[int, ...],
    scenario: DistScenario,
    *,
    connect_timeout: float = 30.0,
) -> None:
    """Serve one process's share of the seller fleet over TCP.

    Dials the router at ``host:port`` (retrying until
    ``connect_timeout``), registers the canonical endpoint of every
    assigned seller, and runs their agent loops concurrently until
    shutdown.  Raises :class:`~repro.errors.TransportError` if the
    router cannot be reached or rejects a registration (e.g. a seller
    already served elsewhere).
    """
    # Clients never stamp envelopes authoritatively (the router does),
    # so a worker's own clock mode is immaterial; the default is fine.
    transport = TcpTransport()
    await transport.dial(host, port, timeout=connect_timeout)
    try:
        factory = scenario.policy_factory()
        agents = []
        for sid in seller_ids:
            handle = AgentHandle(
                transport, seller_endpoint(sid), seller_id=sid
            )
            await transport.wait_registered(
                handle.endpoint, timeout=connect_timeout
            )
            agents.append(
                SellerAgent(
                    handle,
                    policy=factory(),
                    rng=seller_stream(scenario.seed, sid),
                )
            )
        await asyncio.gather(*(agent.run() for agent in agents))
    finally:
        transport.close()


def run_agent_worker(
    host: str,
    port: int,
    seller_ids: tuple[int, ...],
    scenario: DistScenario,
    *,
    connect_timeout: float = 30.0,
) -> None:
    """Synchronous process entrypoint: run :func:`agent_worker` to completion."""
    asyncio.run(
        agent_worker(
            host,
            port,
            tuple(seller_ids),
            scenario,
            connect_timeout=connect_timeout,
        )
    )


def spawn_agents(
    scenario: DistScenario,
    host: str,
    port: int,
    *,
    processes: int = 2,
    sellers: tuple[int, ...] | None = None,
    mp_context: str = "spawn",
) -> list[multiprocessing.Process]:
    """Start worker processes serving the scenario's sellers over TCP.

    The seller ids (default: all of ``scenario.seller_ids()``) are
    partitioned round-robin across ``processes`` workers; each worker is
    a daemon :class:`multiprocessing.Process` running
    :func:`run_agent_worker` against the router at ``host:port``.
    Returns the started (already-running) processes; the caller joins
    them after the serving session ends.
    """
    if processes < 1:
        raise ConfigurationError(
            f"processes must be at least 1, got {processes}"
        )
    ids = tuple(sellers) if sellers is not None else scenario.seller_ids()
    groups = [ids[i::processes] for i in range(processes)]
    groups = [group for group in groups if group]
    ctx = multiprocessing.get_context(mp_context)
    # ``spawn`` children import ``repro`` afresh; make sure they can.
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    old_path = os.environ.get("PYTHONPATH")
    parts = [src_dir] + ([old_path] if old_path else [])
    os.environ["PYTHONPATH"] = os.pathsep.join(parts)
    try:
        workers = []
        for group in groups:
            process = ctx.Process(
                target=run_agent_worker,
                args=(host, port, group, scenario),
                daemon=True,
            )
            process.start()
            workers.append(process)
    finally:
        if old_path is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = old_path
    return workers
