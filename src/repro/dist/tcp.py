"""TCP socket transport: length-prefixed JSON frames over asyncio streams.

:class:`TcpTransport` is the wire implementation of the
:class:`~repro.dist.transport.Transport` interface.  One transport plays
one of two roles, fixed by the first call:

* **router** (:meth:`TcpTransport.listen`) — the orchestrator side.  It
  owns the authoritative envelope sequence and clock; every frame from
  every peer passes through it and is stamped on arrival, so
  per-recipient FIFO order and the monotone ``seq`` hold exactly as they
  do in-memory.  Local endpoints (the orchestrator's own mailbox) and
  remote endpoints (agents on other connections — typically other OS
  processes, see :mod:`repro.dist.workers`) are addressed identically.
* **client** (:meth:`TcpTransport.dial`) — an agent side.  ``register``
  performs a named-endpoint handshake with the router
  (:meth:`wait_registered` confirms it; a duplicate name is rejected
  with a :class:`~repro.errors.TransportError`), and delivered envelopes
  land in local mailboxes exactly as over the in-memory transport.

Wire format: each frame is a 4-byte big-endian length prefix followed by
one UTF-8 JSON object with an ``op`` field (``register``, ``registered``,
``register_error``, ``send``, ``deliver``, ``clock``, ``error``).
Messages travel as their versioned ``to_dict`` forms
(:func:`~repro.dist.messages.message_to_dict`), envelopes as
:func:`~repro.dist.messages.envelope_to_dict` — nothing pickled, nothing
host-specific.  A frame that is oversized (``max_frame_bytes``, default
1 MiB), undecodable, or semantically malformed is rejected: the router
counts ``transport.frames_rejected``, answers a best-effort ``error``
frame, and drops the offending connection.

Error surfaces: sends to an endpoint whose connection died raise
:class:`~repro.errors.TransportError`; a client whose router connection
is lost fails subsequent sends the same way, and synthesizes a
:class:`~repro.dist.messages.Shutdown` delivery into each of its
mailboxes so agent loops exit instead of hanging.  Disconnects and
re-registrations are counted (``transport.disconnects``,
``transport.reconnects``).

Clock modes: under ``clock="virtual"`` the router's clock advances only
via :meth:`advance_to` (broadcast to clients as ``clock`` frames), and a
seeded serving run is bit-identical to the synchronous replay oracle —
arrival order across connections may vary, but stamps, bid content
(per-seller RNG streams), and the orchestrator's canonical ordering make
the outcome order-independent.  Under ``clock="wall"`` stamps are real
elapsed seconds on the router's monotonic clock and the determinism
contract is explicitly relaxed: late is *really* late (see
``docs/serving.md``).

Writes are buffered (``StreamWriter.write`` without ``drain``): the
protocol's frames are small and round-paced, so backpressure never
accumulates beyond a round's fan-out.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from collections.abc import Iterable

from repro.dist.messages import (
    Envelope,
    Shutdown,
    envelope_from_dict,
    envelope_to_dict,
    message_from_dict,
    message_to_dict,
)
from repro.dist.transport import CLOCK_MODES, Mailbox, Transport
from repro.errors import ConfigurationError, TransportError
from repro.obs.runtime import STATE as _OBS

__all__ = ["TcpTransport", "MAX_FRAME_BYTES", "read_frame", "write_frame"]

MAX_FRAME_BYTES = 1 << 20
"""Default per-frame size limit (1 MiB); oversized frames are rejected."""

_HEADER = struct.Struct(">I")


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict:
    """Read one length-prefixed JSON frame; raise ``TransportError`` if bad.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame (the
    ordinary disconnect path) and :class:`~repro.errors.TransportError`
    for frames that are oversized, undecodable, or not an object with an
    ``op`` field.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise TransportError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    body = await reader.readexactly(length)
    try:
        frame = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"malformed frame: {error}") from None
    if not isinstance(frame, dict) or "op" not in frame:
        raise TransportError(
            "malformed frame: expected a JSON object with an 'op' field"
        )
    return frame


def write_frame(
    writer: asyncio.StreamWriter,
    frame: dict,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Serialize and buffer one frame onto ``writer`` (no drain)."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise TransportError(
            f"frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    writer.write(_HEADER.pack(len(body)) + body)


class _Peer:
    """Router-side bookkeeping for one accepted connection."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.endpoints: set[str] = set()

    @property
    def alive(self) -> bool:
        return not self.writer.is_closing()


class TcpTransport(Transport):
    """The socket transport (see the module docstring for the protocol).

    Construct, then fix the role inside a running event loop with
    ``await transport.listen(host, port)`` (router) or
    ``await transport.dial(host, port)`` (client).  ``register`` may be
    called before the role is fixed only on the router-to-be (the
    orchestrator registers its mailbox at construction time); a client
    must dial first.
    """

    def __init__(
        self,
        *,
        clock: str = "virtual",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if clock not in CLOCK_MODES:
            raise ConfigurationError(
                f"clock must be one of {CLOCK_MODES}, got {clock!r}"
            )
        self.clock = clock
        self.max_frame_bytes = int(max_frame_bytes)
        self.address: tuple[str, int] | None = None
        self._role: str | None = None  # "router" | "client"
        self._mailboxes: dict[str, Mailbox] = {}
        self._seq = 0
        self._vnow = 0.0
        self._t0 = time.monotonic()
        self._closed = False
        # router state
        self._server: asyncio.AbstractServer | None = None
        self._peers: dict[str, _Peer] = {}
        self._connections: set[_Peer] = set()
        self._seen_endpoints: set[str] = set()
        self._endpoint_event = asyncio.Event()
        # client state
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._broken = False

    # ------------------------------------------------------------------
    # role selection
    # ------------------------------------------------------------------
    async def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind as the router; returns the bound ``(host, port)``."""
        if self._role is not None:
            raise ConfigurationError(
                f"transport already acts as a {self._role}"
            )
        if self._closed:
            raise TransportError("transport is closed")
        self._role = "router"
        self._server = await asyncio.start_server(self._accept, host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def dial(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        retry_interval: float = 0.05,
    ) -> tuple[str, int]:
        """Connect as a client, retrying until ``timeout`` real seconds.

        The retry loop absorbs the startup race of a worker process that
        comes up before the router has bound its socket.
        """
        if self._role is not None:
            raise ConfigurationError(
                f"transport already acts as a {self._role}"
            )
        if self._closed:
            raise TransportError("transport is closed")
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    host, port
                )
                break
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"could not connect to {host}:{port} within "
                        f"{timeout}s: {error}"
                    ) from None
                await asyncio.sleep(retry_interval)
        self._role = "client"
        self.address = (host, port)
        for endpoint in self._mailboxes:
            # registered before dial (unusual but allowed): handshake now
            self._queue_registration(endpoint)
        self._reader_task = asyncio.create_task(self._client_loop())
        return self.address

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def register(self, endpoint: str) -> Mailbox:
        if self._closed:
            raise TransportError("transport is closed")
        if not endpoint:
            raise ConfigurationError("endpoint name must be non-empty")
        if endpoint in self._mailboxes or endpoint in self._peers:
            raise ConfigurationError(
                f"endpoint {endpoint!r} is already registered"
            )
        mailbox = Mailbox(endpoint)
        self._mailboxes[endpoint] = mailbox
        if self._role == "client":
            self._queue_registration(endpoint)
        return mailbox

    def _queue_registration(self, endpoint: str) -> None:
        """Start the client-side handshake for one endpoint name."""
        if endpoint not in self._pending:
            self._pending[endpoint] = (
                asyncio.get_event_loop().create_future()
            )
        self._client_frame({"op": "register", "endpoint": endpoint})

    async def wait_registered(
        self, endpoint: str, *, timeout: float = 10.0
    ) -> None:
        """Await the router's acknowledgement of a client registration.

        Raises :class:`~repro.errors.TransportError` if the router
        rejected the name (already taken by another peer) or the
        connection was lost before the acknowledgement arrived.
        """
        future = self._pending.get(endpoint)
        if future is None:
            raise ConfigurationError(
                f"endpoint {endpoint!r} was not registered on this client"
            )
        error = await asyncio.wait_for(asyncio.shield(future), timeout)
        if error is not None:
            raise TransportError(
                f"registration of {endpoint!r} rejected: {error}"
            )

    async def wait_for_endpoints(
        self, endpoints: Iterable[str], *, timeout: float = 30.0
    ) -> None:
        """Router-side: block until every named endpoint has registered."""
        needed = set(endpoints)
        deadline = time.monotonic() + timeout
        while True:
            present = set(self._mailboxes) | set(self._peers)
            if needed <= present:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                missing = ", ".join(sorted(needed - present))
                raise TransportError(
                    f"timed out waiting for endpoints: {missing}"
                )
            self._endpoint_event.clear()
            try:
                await asyncio.wait_for(
                    self._endpoint_event.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                continue  # loop re-checks and raises with the missing set

    def endpoints(self) -> tuple[str, ...]:
        return tuple(self._mailboxes) + tuple(self._peers)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self, recipient: str, message, *, sender: str = "", delay: float = 0.0
    ) -> Envelope:
        if self._closed:
            raise TransportError("transport is closed")
        if delay < 0:
            raise ConfigurationError(
                f"delay must be non-negative, got {delay}"
            )
        if self._role == "client":
            return self._client_send(
                recipient, message, sender=sender, delay=delay
            )
        return self._route(recipient, message, sender=sender, delay=delay)

    def broadcast(
        self, message, *, sender: str = "", exclude: tuple[str, ...] = ()
    ) -> list[Envelope]:
        """Send ``message`` to every registered endpoint (minus ``exclude``).

        Dead peers are skipped rather than raised on — a broadcast (e.g.
        shutdown) must reach the healthy fleet even when one agent
        already vanished; the disconnect was counted when it happened.
        """
        envelopes = []
        for endpoint in self.endpoints():
            if endpoint in exclude or endpoint == sender:
                continue
            try:
                envelopes.append(
                    self.send(endpoint, message, sender=sender)
                )
            except TransportError:
                continue
        return envelopes

    def _route(
        self, recipient: str, message, *, sender: str, delay: float
    ) -> Envelope:
        """Router-side delivery: stamp, then hand to mailbox or peer."""
        mailbox = self._mailboxes.get(recipient)
        peer = self._peers.get(recipient)
        if mailbox is None and peer is None:
            raise TransportError(
                f"no endpoint {recipient!r} is registered on this transport"
            )
        if peer is not None and not peer.alive:
            raise TransportError(
                f"peer serving endpoint {recipient!r} has disconnected"
            )
        self._seq += 1
        now = self.now
        envelope = Envelope(
            seq=self._seq,
            sender=sender,
            recipient=recipient,
            sent_at=now,
            deliver_at=now + delay,
            message=message,
        )
        if mailbox is not None:
            mailbox.put(envelope)
        else:
            self._peer_frame(
                peer, {"op": "deliver", "envelope": envelope_to_dict(envelope)}
            )
        return envelope

    def _peer_frame(self, peer: _Peer, frame: dict) -> None:
        if not peer.alive:
            raise TransportError("peer connection is closed")
        write_frame(peer.writer, frame, max_frame_bytes=self.max_frame_bytes)
        _OBS.metrics.counter("transport.frames_sent").inc()

    def _client_frame(self, frame: dict) -> None:
        if self._writer is None or self._writer.is_closing() or self._broken:
            raise TransportError("connection to the router was lost")
        write_frame(
            self._writer, frame, max_frame_bytes=self.max_frame_bytes
        )
        _OBS.metrics.counter("transport.frames_sent").inc()

    def _client_send(
        self, recipient: str, message, *, sender: str, delay: float
    ) -> Envelope:
        self._client_frame(
            {
                "op": "send",
                "recipient": recipient,
                "sender": sender,
                "delay": delay,
                "message": message_to_dict(message),
            }
        )
        # Authoritative stamping happens on the router; the local echo
        # (seq 0) only tells the caller what was submitted.
        now = self.now
        return Envelope(
            seq=0,
            sender=sender,
            recipient=recipient,
            sent_at=now,
            deliver_at=now + delay,
            message=message,
        )

    # ------------------------------------------------------------------
    # the clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self.clock == "wall":
            return time.monotonic() - self._t0
        return self._vnow

    def advance_to(self, when: float) -> None:
        if self.clock == "wall":
            return  # the wall clock advances itself
        if self._role == "client":
            raise ConfigurationError(
                "only the router advances the virtual clock"
            )
        if when < self._vnow:
            raise ConfigurationError(
                f"cannot move the virtual clock backward "
                f"({when} < {self._vnow})"
            )
        self._vnow = when
        for peer in list(self._connections):
            if peer.alive:
                try:
                    self._peer_frame(peer, {"op": "clock", "now": when})
                except TransportError:
                    continue

    # ------------------------------------------------------------------
    # router connection handling
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = _Peer(writer)
        self._connections.add(peer)
        try:
            while not self._closed:
                try:
                    frame = await read_frame(
                        reader, max_frame_bytes=self.max_frame_bytes
                    )
                except TransportError as error:
                    self._reject_frame(peer, str(error))
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except asyncio.CancelledError:
                    # Event-loop teardown while blocked on a read: end the
                    # handler quietly (the session is already over).
                    break
                _OBS.metrics.counter("transport.frames_received").inc()
                op = frame.get("op")
                if op == "register":
                    self._handle_register(peer, frame)
                elif op == "send":
                    if not self._handle_send(peer, frame):
                        break
                else:
                    self._reject_frame(peer, f"unknown op {op!r}")
                    break
        finally:
            self._drop_peer(peer)

    def _reject_frame(self, peer: _Peer, error: str) -> None:
        _OBS.metrics.counter("transport.frames_rejected").inc()
        _OBS.tracer.event("transport.frame_rejected", error=error)
        try:
            self._peer_frame(peer, {"op": "error", "error": error})
        except TransportError:
            pass

    def _handle_register(self, peer: _Peer, frame: dict) -> None:
        endpoint = frame.get("endpoint")
        if not endpoint or not isinstance(endpoint, str):
            self._reject_frame(peer, "register frame without an endpoint")
            return
        if endpoint in self._mailboxes or endpoint in self._peers:
            # A duplicate name is a handshake failure for that name only;
            # the connection (and its other endpoints) stays up.
            try:
                self._peer_frame(
                    peer,
                    {
                        "op": "register_error",
                        "endpoint": endpoint,
                        "error": f"endpoint {endpoint!r} is already "
                        "registered",
                    },
                )
            except TransportError:
                pass
            return
        self._peers[endpoint] = peer
        peer.endpoints.add(endpoint)
        if endpoint in self._seen_endpoints:
            _OBS.metrics.counter("transport.reconnects").inc()
            _OBS.tracer.event("transport.reconnect", endpoint=endpoint)
        self._seen_endpoints.add(endpoint)
        try:
            self._peer_frame(
                peer, {"op": "registered", "endpoint": endpoint}
            )
            if self.clock == "virtual" and self._vnow:
                self._peer_frame(peer, {"op": "clock", "now": self._vnow})
        except TransportError:
            pass
        self._endpoint_event.set()

    def _handle_send(self, peer: _Peer, frame: dict) -> bool:
        """Route one client ``send`` frame; returns False to drop the peer."""
        try:
            recipient = frame["recipient"]
            sender = frame.get("sender", "")
            delay = float(frame.get("delay", 0.0))
            message = message_from_dict(frame["message"])
        except (KeyError, TypeError, ValueError) as error:
            self._reject_frame(peer, f"malformed send frame: {error}")
            return False
        try:
            self._route(recipient, message, sender=sender, delay=delay)
        except TransportError as error:
            # Unknown/dead recipient: tell the sender, keep the peer.
            self._reject_frame(peer, str(error))
            return True
        return True

    def _drop_peer(self, peer: _Peer) -> None:
        self._connections.discard(peer)
        dropped = [
            name for name, owner in self._peers.items() if owner is peer
        ]
        for name in dropped:
            del self._peers[name]
        if dropped and not self._closed:
            _OBS.metrics.counter("transport.disconnects").inc()
            for name in dropped:
                _OBS.tracer.event("transport.disconnect", endpoint=name)
        if not peer.writer.is_closing():
            peer.writer.close()

    # ------------------------------------------------------------------
    # client receive loop
    # ------------------------------------------------------------------
    async def _client_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(
                    self._reader, max_frame_bytes=self.max_frame_bytes
                )
                _OBS.metrics.counter("transport.frames_received").inc()
                op = frame.get("op")
                if op == "deliver":
                    envelope = envelope_from_dict(frame["envelope"])
                    mailbox = self._mailboxes.get(envelope.recipient)
                    if mailbox is not None:
                        mailbox.put(envelope)
                elif op == "registered":
                    future = self._pending.get(frame.get("endpoint"))
                    if future is not None and not future.done():
                        future.set_result(None)
                elif op == "register_error":
                    endpoint = frame.get("endpoint")
                    self._mailboxes.pop(endpoint, None)
                    future = self._pending.get(endpoint)
                    if future is not None and not future.done():
                        future.set_result(
                            frame.get("error", "registration rejected")
                        )
                elif op == "clock":
                    now = float(frame.get("now", self._vnow))
                    if now > self._vnow:
                        self._vnow = now
                elif op == "error":
                    _OBS.tracer.event(
                        "transport.remote_error",
                        error=str(frame.get("error", "")),
                    )
        except (
            TransportError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            self._broken = True
            for future in self._pending.values():
                if not future.done():
                    future.set_result("connection to the router was lost")
            if not self._closed:
                _OBS.metrics.counter("transport.disconnects").inc()
                # Unblock agent loops waiting on their mailboxes: a lost
                # router is a shutdown they will never otherwise see.
                now = self.now
                for mailbox in self._mailboxes.values():
                    mailbox.put(
                        Envelope(
                            seq=0,
                            sender="",
                            recipient=mailbox.name,
                            sent_at=now,
                            deliver_at=now,
                            message=Shutdown(reason="transport-disconnected"),
                        )
                    )

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        for peer in list(self._connections):
            if not peer.writer.is_closing():
                peer.writer.close()
        self._connections.clear()
        self._peers.clear()
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
