"""Distributed serving of the online auction (:mod:`repro.dist`).

The message-driven form of the paper's platform: sellers and buyers are
independent :mod:`asyncio` agents that talk to a long-lived
:class:`RoundOrchestrator` over a pluggable :class:`Transport` —
in-process (:class:`InMemoryTransport`) or over real sockets
(:class:`TcpTransport`, with agents optionally placed in separate OS
processes via :func:`spawn_agents`) — while simulation, demand
estimation, and clearing stay on the shared
:class:`~repro.edge.platform.EdgePlatform` core.  That shared core is
what makes a seeded ``clock="virtual"`` run bit-identical to the
synchronous replay of the same :class:`DistScenario` on *either*
transport (see :func:`replay_scenario`, ``docs/distributed.md`` and
``docs/serving.md`` for the determinism contract and its ``clock="wall"``
relaxation).

Entry points: :func:`serve` (also re-exported as :func:`repro.api.serve`)
builds an :class:`AuctionService`; ``service.run(rounds)`` serves a
one-shot session; ``service.connect(seller_id)`` hands out an
:class:`AgentHandle` for caller-driven agents.
"""

from repro.dist.agents import (
    ORCHESTRATOR_ENDPOINT,
    AgentHandle,
    AgentStreamPolicy,
    BuyerAgent,
    SellerAgent,
    default_policy_factory,
    seller_endpoint,
    seller_stream,
)
from repro.dist.messages import (
    MESSAGE_SCHEMA_VERSION,
    BidSubmission,
    Envelope,
    OutcomeNotice,
    RoundOpen,
    Shutdown,
    envelope_from_dict,
    envelope_to_dict,
    message_from_dict,
    message_to_dict,
)
from repro.dist.orchestrator import RoundOrchestrator
from repro.dist.scenario import DistScenario, replay_scenario
from repro.dist.service import AuctionService, serve
from repro.dist.tcp import TcpTransport
from repro.dist.transport import (
    CLOCK_MODES,
    InMemoryTransport,
    Mailbox,
    Transport,
)
from repro.dist.workers import agent_worker, run_agent_worker, spawn_agents

__all__ = [
    "serve",
    "AuctionService",
    "RoundOrchestrator",
    "DistScenario",
    "replay_scenario",
    "AgentHandle",
    "SellerAgent",
    "BuyerAgent",
    "AgentStreamPolicy",
    "default_policy_factory",
    "seller_endpoint",
    "seller_stream",
    "ORCHESTRATOR_ENDPOINT",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "CLOCK_MODES",
    "spawn_agents",
    "run_agent_worker",
    "agent_worker",
    "Mailbox",
    "Envelope",
    "RoundOpen",
    "BidSubmission",
    "OutcomeNotice",
    "Shutdown",
    "message_to_dict",
    "message_from_dict",
    "envelope_to_dict",
    "envelope_from_dict",
    "MESSAGE_SCHEMA_VERSION",
]
