"""Distributed serving of the online auction (:mod:`repro.dist`).

The message-driven form of the paper's platform: sellers and buyers are
independent :mod:`asyncio` agents that talk to a long-lived
:class:`RoundOrchestrator` over a pluggable :class:`Transport`, while
simulation, demand estimation, and clearing stay on the shared
:class:`~repro.edge.platform.EdgePlatform` core — which is what makes a
seeded in-memory run bit-identical to the synchronous replay of the same
:class:`DistScenario` (see :func:`replay_scenario` and
``docs/distributed.md`` for the determinism contract).

Entry points: :func:`serve` (also re-exported as :func:`repro.api.serve`)
builds an :class:`AuctionService`; ``service.run(rounds)`` serves a
one-shot session; ``service.connect(seller_id)`` hands out an
:class:`AgentHandle` for caller-driven agents.
"""

from repro.dist.agents import (
    ORCHESTRATOR_ENDPOINT,
    AgentHandle,
    AgentStreamPolicy,
    BuyerAgent,
    SellerAgent,
    default_policy_factory,
    seller_endpoint,
    seller_stream,
)
from repro.dist.messages import (
    MESSAGE_SCHEMA_VERSION,
    BidSubmission,
    Envelope,
    OutcomeNotice,
    RoundOpen,
    Shutdown,
    message_from_dict,
    message_to_dict,
)
from repro.dist.orchestrator import RoundOrchestrator
from repro.dist.scenario import DistScenario, replay_scenario
from repro.dist.service import AuctionService, serve
from repro.dist.transport import InMemoryTransport, Mailbox, Transport

__all__ = [
    "serve",
    "AuctionService",
    "RoundOrchestrator",
    "DistScenario",
    "replay_scenario",
    "AgentHandle",
    "SellerAgent",
    "BuyerAgent",
    "AgentStreamPolicy",
    "default_policy_factory",
    "seller_endpoint",
    "seller_stream",
    "ORCHESTRATOR_ENDPOINT",
    "Transport",
    "InMemoryTransport",
    "Mailbox",
    "Envelope",
    "RoundOpen",
    "BidSubmission",
    "OutcomeNotice",
    "Shutdown",
    "message_to_dict",
    "message_from_dict",
    "MESSAGE_SCHEMA_VERSION",
]
