"""The long-lived round orchestrator of the distributed platform.

:class:`RoundOrchestrator` is the platform side of the message protocol:
it owns the (facade-built) :class:`~repro.edge.platform.EdgePlatform`
core for simulation/clearing, but replaces the in-process bid-collection
phase with a message-driven round trip —

1. :meth:`~repro.edge.platform.EdgePlatform.begin_round` advances the
   simulation and estimates demand;
2. a :class:`~repro.dist.messages.RoundOpen` goes out to every attached
   seller whose context says it can bid, carrying the grace-window
   ``deadline`` on the transport's virtual clock;
3. submissions are gathered until every opened seller is accounted for —
   accepted, late (virtual delivery time past the deadline), or timed
   out on the wall-clock guard;
4. accepted bids are ordered canonically (by seller id, the same order
   the synchronous loop produces) and cleared through
   :meth:`~repro.edge.platform.EdgePlatform.complete_round` — the shared
   clearing path that makes async and sync runs bit-identical;
5. an :class:`~repro.dist.messages.OutcomeNotice` is broadcast to every
   connected agent.

Fault-model mapping: what :mod:`repro.faults` *simulates* inside the
mechanism (``LateBid``, ``bid_timeout``) exists here as real asynchrony —
a late bid is a message whose virtual delivery time missed the deadline,
and the grace window plays the role of ``ResiliencePolicy.bid_timeout``.
Mechanism-level fault plans still work unchanged (they run inside the
shared clearing path), so a fault-injected async run replays bit-identical
too.
"""

from __future__ import annotations

import asyncio

from repro.core.bids import Bid
from repro.dist.agents import ORCHESTRATOR_ENDPOINT
from repro.dist.messages import BidSubmission, OutcomeNotice, RoundOpen, Shutdown
from repro.dist.transport import CLOCK_MODES, Transport
from repro.edge.platform import EdgePlatform, PlatformRoundReport, RoundContext
from repro.errors import ConfigurationError, TransportError
from repro.obs.runtime import STATE as _OBS

__all__ = ["RoundOrchestrator"]


class RoundOrchestrator:
    """Opens rounds, collects bids within a grace window, clears, notifies.

    Parameters
    ----------
    platform:
        The platform core (simulation, demand estimation, mechanism,
        ledger).  Its in-process ``bidding_policy`` is *not* consulted —
        bids come from the attached agents.
    transport:
        Where the agents live; the orchestrator registers the well-known
        ``"orchestrator"`` endpoint on it.
    grace_window:
        Length (virtual-clock units) of the bidding window per round.
        Submissions delivered after ``opened_at + grace_window`` are
        late and rejected.  The distributed analogue of
        :attr:`repro.faults.policies.ResiliencePolicy.bid_timeout`.
    wall_timeout:
        Real-seconds guard per round against agents that never respond
        at all (crashed tasks, forgotten mailboxes).  Under the virtual
        clock it is purely a liveness backstop — round outcomes never
        depend on wall-clock timing, only on virtual delivery times.
        Under ``clock="wall"`` it remains the per-wait ceiling, but the
        grace window itself is already a real timeout.
    clock:
        ``"virtual"`` or ``"wall"``; defaults to the transport's own
        mode, and a mismatch with the transport is refused.  Under
        ``"wall"`` the grace window is a real timeout — a round closes
        at ``opened_at + grace_window`` real seconds whether or not
        every seller answered, so outcomes depend on actual peer
        latency and the virtual-clock determinism contract is
        explicitly relaxed (``serve --check`` only asserts outcome
        equality for virtual-clock runs; see ``docs/serving.md``).
    """

    def __init__(
        self,
        platform: EdgePlatform,
        transport: Transport,
        *,
        grace_window: float = 1.0,
        wall_timeout: float = 5.0,
        clock: str | None = None,
    ) -> None:
        if grace_window <= 0:
            raise ConfigurationError("grace_window must be positive")
        if wall_timeout <= 0:
            raise ConfigurationError("wall_timeout must be positive")
        transport_clock = getattr(transport, "clock", "virtual")
        if clock is None:
            clock = transport_clock
        if clock not in CLOCK_MODES:
            raise ConfigurationError(
                f"clock must be one of {CLOCK_MODES}, got {clock!r}"
            )
        if clock != transport_clock:
            raise ConfigurationError(
                f"orchestrator clock {clock!r} does not match the "
                f"transport's clock {transport_clock!r}"
            )
        self.platform = platform
        self.transport = transport
        self.grace_window = grace_window
        self.wall_timeout = wall_timeout
        self.clock = clock
        self.mailbox = transport.register(ORCHESTRATOR_ENDPOINT)
        self._sellers: dict[int, str] = {}
        self._shut_down = False

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach_seller(self, seller_id: int, endpoint: str) -> None:
        """Register the endpoint serving ``seller_id``'s round announcements."""
        if seller_id in self._sellers:
            raise ConfigurationError(
                f"seller {seller_id} is already attached "
                f"(endpoint {self._sellers[seller_id]!r})"
            )
        self._sellers[seller_id] = endpoint

    @property
    def attached_sellers(self) -> tuple[int, ...]:
        """The seller ids with a registered agent endpoint."""
        return tuple(sorted(self._sellers))

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------
    async def run_round(self) -> PlatformRoundReport:
        """Serve one full auction round over the transport."""
        with _OBS.tracer.span(
            "platform.round", round_index=len(self.platform.reports)
        ) as round_span:
            context = self.platform.begin_round()
            bids = await self._collect(context)
            report = self.platform.complete_round(context, bids)
            _OBS.tracer.annotate(
                round_span,
                social_cost=report.social_cost,
                transfers=len(report.transfers),
                demand_units=sum(context.demand_units.values()),
            )
        self._broadcast_outcome(report)
        _OBS.metrics.counter("dist.rounds").inc()
        return report

    async def run(self, rounds: int | None = None) -> list[PlatformRoundReport]:
        """Serve the platform horizon (or ``rounds``); return the reports."""
        n = rounds if rounds is not None else self.platform.horizon_rounds
        return [await self.run_round() for _ in range(n)]

    def shutdown(self, reason: str = "served") -> None:
        """Broadcast :class:`Shutdown` so every agent task exits (idempotent)."""
        if self._shut_down:
            return
        self._shut_down = True
        self.transport.broadcast(
            Shutdown(reason=reason), sender=ORCHESTRATOR_ENDPOINT
        )

    # ------------------------------------------------------------------
    # bid collection over the transport
    # ------------------------------------------------------------------
    async def _collect(self, context: RoundContext) -> list[Bid]:
        """Announce the round and gather submissions within the grace window."""
        opened_at = self.transport.now
        deadline = opened_at + self.grace_window
        pending: set[int] = set()
        with _OBS.tracer.span(
            "dist.collect", round_index=context.round_index
        ) as collect_span:
            for sc in context.seller_contexts:
                endpoint = self._sellers.get(sc.seller_id)
                if endpoint is None:
                    # No agent serves this seller: it simply does not bid
                    # this round (the distributed analogue of an empty
                    # policy return), which is worth a trace event.
                    _OBS.tracer.event(
                        "dist.seller_unattached", seller=sc.seller_id
                    )
                    continue
                try:
                    self.transport.send(
                        endpoint,
                        RoundOpen(
                            round_index=context.round_index,
                            seller_id=sc.seller_id,
                            local_buyers=sc.local_buyers,
                            max_units=sc.max_units,
                            opened_at=opened_at,
                            deadline=deadline,
                        ),
                        sender=ORCHESTRATOR_ENDPOINT,
                    )
                except TransportError:
                    # The agent's connection died: the seller sits this
                    # round out (like an unattached one), but the round
                    # must still clear for everyone else.
                    _OBS.tracer.event(
                        "dist.seller_disconnected",
                        seller=sc.seller_id,
                        round_index=context.round_index,
                    )
                    _OBS.metrics.counter("dist.sellers_disconnected").inc()
                    continue
                pending.add(sc.seller_id)
            accepted, latest_delivery = await self._gather(
                context.round_index, pending, deadline
            )
            # Close the window on the virtual clock.  The round consumed
            # its grace window; if a straggler's submission was stamped
            # even later, the clock must not run backwards past it.
            # (The wall clock closes itself.)
            if self.clock == "virtual":
                self.transport.advance_to(max(deadline, latest_delivery))
            bids = [
                bid
                for seller_id in sorted(accepted)
                for bid in accepted[seller_id].bids
            ]
            _OBS.tracer.annotate(
                collect_span,
                sellers_opened=len(context.seller_contexts),
                submissions_accepted=len(accepted),
                bids=len(bids),
            )
        return bids

    async def _gather(
        self, round_index: int, pending: set[int], deadline: float
    ) -> tuple[dict[int, BidSubmission], float]:
        """Drain the mailbox until every opened seller is accounted for.

        Under ``clock="wall"`` the wait is additionally bounded by the
        round deadline itself: once ``deadline`` real seconds pass, the
        still-pending sellers are timed out (cause ``wall_deadline``)
        and the round clears without them.  Already-delivered envelopes
        are always drained first, so a submission that arrived in time
        is never dropped by the deadline check racing the mailbox.
        """
        accepted: dict[int, BidSubmission] = {}
        answered: set[int] = set()
        latest_delivery = deadline
        metrics = _OBS.metrics
        while pending:
            envelope = self.mailbox.get_nowait()
            if envelope is None:
                timeout = self.wall_timeout
                if self.clock == "wall":
                    remaining = deadline - self.transport.now
                    if remaining <= 0:
                        self._note_timeouts(
                            pending, round_index, cause="wall_deadline"
                        )
                        break
                    timeout = min(timeout, remaining)
                try:
                    envelope = await asyncio.wait_for(
                        self.mailbox.get(), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    cause = "wall_guard"
                    if (
                        self.clock == "wall"
                        and self.transport.now >= deadline
                    ):
                        cause = "wall_deadline"
                    self._note_timeouts(pending, round_index, cause=cause)
                    break
            message = envelope.message
            if not isinstance(message, BidSubmission):
                _OBS.tracer.event(
                    "dist.unexpected_message",
                    kind=type(message).__name__,
                    sender=envelope.sender,
                )
                continue
            if message.round_index != round_index:
                # A straggler from an earlier round (e.g. one that beat
                # the wall-clock guard but lost the race): drop it.
                _OBS.tracer.event(
                    "dist.stale_submission",
                    seller=message.seller_id,
                    round_index=message.round_index,
                    current_round=round_index,
                )
                metrics.counter("dist.submissions_stale").inc()
                continue
            seller_id = message.seller_id
            if seller_id in answered:
                _OBS.tracer.event(
                    "dist.duplicate_submission",
                    seller=seller_id,
                    round_index=round_index,
                )
                metrics.counter("dist.submissions_duplicate").inc()
                continue
            answered.add(seller_id)
            pending.discard(seller_id)
            if envelope.deliver_at > latest_delivery:
                latest_delivery = envelope.deliver_at
            if envelope.deliver_at > deadline:
                # The real-asynchrony form of a late bid: the message
                # itself missed the grace window on the transport clock.
                _OBS.tracer.event(
                    "dist.late_bid",
                    seller=seller_id,
                    round_index=round_index,
                    deliver_at=envelope.deliver_at,
                    deadline=deadline,
                )
                metrics.counter("dist.submissions_late").inc()
                if self.clock == "wall":
                    metrics.counter("transport.late_wall_clock").inc()
                continue
            accepted[seller_id] = message
            metrics.counter("dist.submissions_accepted").inc()
        return accepted, latest_delivery

    def _note_timeouts(
        self, pending: set[int], round_index: int, *, cause: str
    ) -> None:
        """Record every still-pending seller as timed out this round."""
        for seller_id in sorted(pending):
            _OBS.tracer.event(
                "dist.bid_timeout",
                seller=seller_id,
                round_index=round_index,
                cause=cause,
            )
        _OBS.metrics.counter("dist.submissions_timeout").inc(len(pending))

    def _broadcast_outcome(self, report: PlatformRoundReport) -> None:
        if report.auction is None:
            notice = OutcomeNotice(round_index=report.round_index)
        else:
            outcome = report.auction.outcome
            notice = OutcomeNotice(
                round_index=report.round_index,
                winners=tuple(
                    (w.bid.seller, w.bid.index, w.payment)
                    for w in outcome.winners
                ),
                transfers=tuple(
                    (seller, tuple(sorted(covered)))
                    for seller, covered in report.transfers
                ),
                social_cost=report.auction.social_cost,
            )
        self.transport.broadcast(notice, sender=ORCHESTRATOR_ENDPOINT)
