"""Wire-format message types of the distributed auction platform.

Every interaction between the :class:`~repro.dist.orchestrator.
RoundOrchestrator` and its agents is one of the frozen dataclasses below,
wrapped in an :class:`Envelope` by the transport.  The types are plain
data — no behaviour, no references to live platform state — and each one
round-trips through ``to_dict``/``from_dict``, so a socket or HTTP
transport can serialize them as JSON without touching this module.

The protocol is deliberately small:

* :class:`RoundOpen` — the platform opens a round for one seller,
  announcing the public context (which co-located microservices are
  needy, how many units the seller may pledge) and the grace-window
  ``deadline`` by which the seller's bids must arrive;
* :class:`BidSubmission` — the seller's reply: zero or more alternative
  bids for the round (an empty submission is an explicit decline, which
  releases the round barrier without waiting for the wall-clock guard);
* :class:`OutcomeNotice` — the platform broadcasts each cleared round's
  winners, payments, and transfers to every connected agent;
* :class:`Shutdown` — the platform is closing; agents should exit.

Timestamps (``opened_at``, ``deadline``, :attr:`Envelope.deliver_at`) are
*virtual* times on the transport's clock, which keeps grace-window
semantics deterministic under the in-memory transport and maps to wall
clocks on a real one.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.bids import Bid
from repro.errors import ConfigurationError

__all__ = [
    "MESSAGE_SCHEMA_VERSION",
    "RoundOpen",
    "BidSubmission",
    "OutcomeNotice",
    "Shutdown",
    "Envelope",
    "message_to_dict",
    "message_from_dict",
    "envelope_to_dict",
    "envelope_from_dict",
]

MESSAGE_SCHEMA_VERSION = 1
"""Bump on breaking changes to any message's ``to_dict`` layout."""


@dataclass(frozen=True)
class RoundOpen:
    """The platform opens an auction round for one seller.

    Carries exactly the public information the synchronous loop hands to
    a :class:`~repro.edge.platform.BiddingPolicy`: the round index, the
    co-located needy microservices the seller may cover, and the maximum
    units it can still pledge.  ``deadline`` is the virtual time the
    grace window closes — a submission delivered after it is late.
    """

    round_index: int
    seller_id: int
    local_buyers: tuple[int, ...]
    max_units: int
    opened_at: float
    deadline: float

    def to_dict(self) -> dict:
        return {
            "kind": "round_open",
            "round_index": self.round_index,
            "seller_id": self.seller_id,
            "local_buyers": list(self.local_buyers),
            "max_units": self.max_units,
            "opened_at": self.opened_at,
            "deadline": self.deadline,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "RoundOpen":
        return RoundOpen(
            round_index=int(data["round_index"]),
            seller_id=int(data["seller_id"]),
            local_buyers=tuple(int(b) for b in data["local_buyers"]),
            max_units=int(data["max_units"]),
            opened_at=float(data["opened_at"]),
            deadline=float(data["deadline"]),
        )


@dataclass(frozen=True)
class BidSubmission:
    """One seller's bids for one round (empty = explicit decline)."""

    round_index: int
    seller_id: int
    bids: tuple[Bid, ...] = ()

    def __post_init__(self) -> None:
        for bid in self.bids:
            if bid.seller != self.seller_id:
                raise ConfigurationError(
                    f"submission for seller {self.seller_id} contains a bid "
                    f"from seller {bid.seller}"
                )

    def to_dict(self) -> dict:
        return {
            "kind": "bid_submission",
            "round_index": self.round_index,
            "seller_id": self.seller_id,
            "bids": [bid.to_dict() for bid in self.bids],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "BidSubmission":
        return BidSubmission(
            round_index=int(data["round_index"]),
            seller_id=int(data["seller_id"]),
            bids=tuple(Bid.from_dict(b) for b in data["bids"]),
        )


@dataclass(frozen=True)
class OutcomeNotice:
    """Broadcast summary of one cleared round.

    ``winners`` lists winning bid keys ``(seller, index)`` with the
    payment each earned; ``transfers`` lists ``(seller, covered buyers)``
    resource movements.  Enough for a seller to learn whether it won and
    for a buyer to learn what it received, without shipping the whole
    :class:`~repro.core.outcomes.RoundResult` over the wire.
    """

    round_index: int
    winners: tuple[tuple[int, int, float], ...] = ()
    transfers: tuple[tuple[int, tuple[int, ...]], ...] = ()
    social_cost: float = 0.0

    def payment_to(self, seller_id: int) -> float:
        """Total payment the round owes ``seller_id``."""
        return sum(p for s, _, p in self.winners if s == seller_id)

    def units_to(self, buyer_id: int) -> int:
        """Units ``buyer_id`` received this round."""
        return sum(
            1 for _, covered in self.transfers if buyer_id in covered
        )

    def to_dict(self) -> dict:
        return {
            "kind": "outcome_notice",
            "round_index": self.round_index,
            "winners": [
                [seller, index, payment]
                for seller, index, payment in self.winners
            ],
            "transfers": [
                [seller, sorted(covered)] for seller, covered in self.transfers
            ],
            "social_cost": self.social_cost,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "OutcomeNotice":
        return OutcomeNotice(
            round_index=int(data["round_index"]),
            winners=tuple(
                (int(s), int(i), float(p)) for s, i, p in data["winners"]
            ),
            transfers=tuple(
                (int(s), tuple(int(b) for b in covered))
                for s, covered in data["transfers"]
            ),
            social_cost=float(data["social_cost"]),
        )


@dataclass(frozen=True)
class Shutdown:
    """The platform is closing; the receiving agent should exit."""

    reason: str = "served"

    def to_dict(self) -> dict:
        return {"kind": "shutdown", "reason": self.reason}

    @staticmethod
    def from_dict(data: Mapping) -> "Shutdown":
        return Shutdown(reason=str(data.get("reason", "served")))


_MESSAGE_KINDS = {
    "round_open": RoundOpen,
    "bid_submission": BidSubmission,
    "outcome_notice": OutcomeNotice,
    "shutdown": Shutdown,
}


def message_to_dict(message) -> dict:
    """Serialize any protocol message with its schema version."""
    payload = message.to_dict()
    payload["schema_version"] = MESSAGE_SCHEMA_VERSION
    return payload


def message_from_dict(data: Mapping):
    """Inverse of :func:`message_to_dict`; dispatches on ``kind``."""
    version = data.get("schema_version", MESSAGE_SCHEMA_VERSION)
    if version != MESSAGE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported message schema version {version!r} (this build "
            f"speaks version {MESSAGE_SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    cls = _MESSAGE_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown message kind {kind!r}")
    return cls.from_dict(data)


@dataclass(frozen=True)
class Envelope:
    """Transport wrapper around one message.

    ``seq`` is a transport-wide monotone counter (deterministic total
    order without wall clocks); ``sent_at``/``deliver_at`` are virtual
    times — an envelope whose ``deliver_at`` exceeds the round deadline
    models a message that was genuinely late on the wire.
    """

    seq: int
    sender: str
    recipient: str
    sent_at: float
    deliver_at: float
    message: object = field(compare=False)

    @property
    def delay(self) -> float:
        """The message's in-flight latency on the virtual clock."""
        return self.deliver_at - self.sent_at


def envelope_to_dict(envelope: Envelope) -> dict:
    """Serialize a stamped envelope (message included) for the wire.

    This is the frame body the TCP transport ships: the router's
    authoritative stamps (``seq``, ``sent_at``, ``deliver_at``) travel
    with the message, so a receiving client reconstructs exactly the
    envelope the router delivered.
    """
    return {
        "seq": envelope.seq,
        "sender": envelope.sender,
        "recipient": envelope.recipient,
        "sent_at": envelope.sent_at,
        "deliver_at": envelope.deliver_at,
        "message": message_to_dict(envelope.message),
    }


def envelope_from_dict(data: Mapping) -> Envelope:
    """Inverse of :func:`envelope_to_dict`."""
    return Envelope(
        seq=int(data["seq"]),
        sender=str(data["sender"]),
        recipient=str(data["recipient"]),
        sent_at=float(data["sent_at"]),
        deliver_at=float(data["deliver_at"]),
        message=message_from_dict(data["message"]),
    )
