"""Pluggable message transports for the distributed auction platform.

The orchestrator and every agent talk exclusively through a
:class:`Transport`: named endpoints register a :class:`Mailbox`, senders
address recipients by endpoint name, and each delivery is an
:class:`~repro.dist.messages.Envelope` stamped with a transport-wide
sequence number and virtual send/delivery times.

:class:`InMemoryTransport` is the in-process implementation: mailboxes
are ``asyncio.Queue`` objects, delivery is immediate on the wall clock,
and latency is modelled on a *virtual clock* — ``send(..., delay=d)``
stamps the envelope ``deliver_at = now + d`` without sleeping, so a
grace-window deadline is an exact, reproducible comparison instead of a
race.  :class:`~repro.dist.tcp.TcpTransport` is the socket
implementation of the same interface (length-prefixed JSON envelope
frames over asyncio streams); nothing above this module assumes
in-process delivery, only named endpoints, ordered envelopes, and the
two clock stamps.

Every transport carries a :attr:`Transport.clock` mode:

* ``"virtual"`` (the default) — ``now`` only moves when the orchestrator
  calls :meth:`Transport.advance_to`, and ``delay`` is pure bookkeeping.
  Determinism contract: for a fixed sequence of ``send`` calls the
  envelope stream (``seq``, stamps, per-recipient FIFO order) is
  identical across runs — the transport introduces no randomness and
  reads no wall clock.
* ``"wall"`` — ``now`` is real elapsed time (``time.monotonic`` since
  construction), ``advance_to`` is a no-op (the clock advances itself),
  and a grace-window deadline becomes a genuine timeout.  This trades
  the virtual-clock determinism contract for real latency tolerance:
  a slow peer's submission is *actually* late (see
  ``docs/serving.md``).
"""

from __future__ import annotations

import abc
import asyncio
import time
from collections.abc import Iterable

from repro.dist.messages import Envelope
from repro.errors import ConfigurationError, TransportError

__all__ = ["Mailbox", "Transport", "InMemoryTransport", "CLOCK_MODES"]

CLOCK_MODES = ("virtual", "wall")
"""The two clock modes every transport can run under."""


class Mailbox:
    """One endpoint's ordered inbox of :class:`Envelope` deliveries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: asyncio.Queue[Envelope] = asyncio.Queue()

    def put(self, envelope: Envelope) -> None:
        """Deliver one envelope (never blocks; the queue is unbounded)."""
        self._queue.put_nowait(envelope)

    async def get(self) -> Envelope:
        """Wait for the next envelope in delivery order."""
        return await self._queue.get()

    def get_nowait(self) -> Envelope | None:
        """The next envelope if one is already delivered, else ``None``."""
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None

    def __len__(self) -> int:
        return self._queue.qsize()

    def empty(self) -> bool:
        """Whether no delivery is currently pending."""
        return self._queue.empty()


class Transport(abc.ABC):
    """Interface every transport implementation provides.

    Implementations own a monotone clock (:attr:`now`) and a monotone
    envelope sequence; both are what round orchestration keys its
    determinism on.  :attr:`clock` declares which clock mode the stamps
    are on — the orchestrator inherits it and refuses a mismatch.
    """

    clock: str = "virtual"
    """Clock mode of this transport's envelope stamps (see module docs)."""

    @abc.abstractmethod
    def register(self, endpoint: str) -> Mailbox:
        """Create (and return) the mailbox for a new named endpoint."""

    @abc.abstractmethod
    def send(
        self, recipient: str, message, *, sender: str = "", delay: float = 0.0
    ) -> Envelope:
        """Send ``message`` to ``recipient``; returns the stamped envelope."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """The transport's current virtual time."""

    @abc.abstractmethod
    def advance_to(self, when: float) -> None:
        """Move the virtual clock forward to ``when`` (never backward)."""

    @abc.abstractmethod
    def endpoints(self) -> Iterable[str]:
        """The currently registered endpoint names."""

    @abc.abstractmethod
    def close(self) -> None:
        """Shut the transport down; subsequent sends raise."""


class InMemoryTransport(Transport):
    """Deterministic in-process transport over ``asyncio`` queues.

    Messages are delivered to the recipient's mailbox immediately (the
    receiving coroutine wakes on its next ``await``); the ``delay``
    argument models network latency purely on the virtual clock, which is
    how a late bid becomes an *actually late message* without real-time
    sleeps — the orchestrator compares ``envelope.deliver_at`` against
    the round deadline.

    With ``clock="wall"`` the same transport stamps envelopes with real
    elapsed time instead: ``deliver_at = monotonic-now + delay``, and
    :meth:`advance_to` becomes a no-op.  Useful for exercising wall-clock
    deadline semantics without sockets — an agent that really sleeps past
    the grace window is genuinely late.
    """

    def __init__(self, *, clock: str = "virtual") -> None:
        if clock not in CLOCK_MODES:
            raise ConfigurationError(
                f"clock must be one of {CLOCK_MODES}, got {clock!r}"
            )
        self.clock = clock
        self._mailboxes: dict[str, Mailbox] = {}
        self._seq = 0
        self._now = 0.0
        self._t0 = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def register(self, endpoint: str) -> Mailbox:
        if self._closed:
            raise TransportError("transport is closed")
        if not endpoint:
            raise ConfigurationError("endpoint name must be non-empty")
        if endpoint in self._mailboxes:
            raise ConfigurationError(
                f"endpoint {endpoint!r} is already registered"
            )
        mailbox = Mailbox(endpoint)
        self._mailboxes[endpoint] = mailbox
        return mailbox

    def endpoints(self) -> tuple[str, ...]:
        return tuple(self._mailboxes)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self, recipient: str, message, *, sender: str = "", delay: float = 0.0
    ) -> Envelope:
        if self._closed:
            raise TransportError("transport is closed")
        mailbox = self._mailboxes.get(recipient)
        if mailbox is None:
            raise TransportError(
                f"no endpoint {recipient!r} is registered on this transport"
            )
        if delay < 0:
            raise ConfigurationError(
                f"delay must be non-negative, got {delay}"
            )
        self._seq += 1
        now = self.now
        envelope = Envelope(
            seq=self._seq,
            sender=sender,
            recipient=recipient,
            sent_at=now,
            deliver_at=now + delay,
            message=message,
        )
        mailbox.put(envelope)
        return envelope

    def broadcast(
        self, message, *, sender: str = "", exclude: tuple[str, ...] = ()
    ) -> list[Envelope]:
        """Send ``message`` to every registered endpoint (minus ``exclude``)."""
        return [
            self.send(endpoint, message, sender=sender)
            for endpoint in self._mailboxes
            if endpoint not in exclude and endpoint != sender
        ]

    # ------------------------------------------------------------------
    # the virtual clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self.clock == "wall":
            return time.monotonic() - self._t0
        return self._now

    def advance_to(self, when: float) -> None:
        if self.clock == "wall":
            return  # the wall clock advances itself
        if when < self._now:
            raise ConfigurationError(
                f"cannot move the virtual clock backward "
                f"({when} < {self._now})"
            )
        self._now = when

    def close(self) -> None:
        self._closed = True
