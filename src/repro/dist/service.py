"""The serving facade: one object that wires platform, transport, agents.

:class:`AuctionService` is what :func:`repro.api.serve` returns — the
redesigned construction path for the platform.  It owns the transport,
builds the platform core from a :class:`~repro.dist.scenario.DistScenario`
(without the direct-wiring deprecation), spawns one
:class:`~repro.dist.agents.SellerAgent` per microservice (each with its
private cost policy and private RNG stream), and drives the
:class:`~repro.dist.orchestrator.RoundOrchestrator` round loop.

Typical use is the one-shot session::

    from repro.api import serve, DistScenario

    service = serve(DistScenario(seed=7))
    reports = service.run(rounds=6)

or, for custom agent behaviour, connect a handle and drive it yourself
inside the event loop (see :meth:`AuctionService.connect` and the dist
test suite's manual-agent tests).
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.dist.agents import (
    AgentHandle,
    BuyerAgent,
    SellerAgent,
    seller_endpoint,
    seller_stream,
)
from repro.dist.orchestrator import RoundOrchestrator
from repro.dist.scenario import DistScenario
from repro.dist.tcp import TcpTransport
from repro.dist.transport import InMemoryTransport, Transport
from repro.dist.workers import spawn_agents
from repro.edge.platform import PlatformRoundReport
from repro.errors import ConfigurationError

__all__ = ["AuctionService", "serve"]


class AuctionService:
    """A ready-to-run distributed auction session.

    Parameters
    ----------
    scenario:
        The seed-complete deployment to serve (default:
        :class:`~repro.dist.scenario.DistScenario`'s two-cloud default).
    transport:
        Message fabric; defaults to a fresh deterministic
        :class:`~repro.dist.transport.InMemoryTransport`.
    grace_window:
        Virtual-clock length of each round's bidding window.  Defaults
        to the scenario's ``resilience.bid_timeout`` when that is set —
        the fault-model knob and the serving knob are the same quantity
        — and to ``1.0`` otherwise.
    wall_timeout:
        Real-seconds liveness guard per round (see
        :class:`~repro.dist.orchestrator.RoundOrchestrator`).
    seller_delays:
        Optional per-seller virtual submission latency (seller id →
        delay).  A delay beyond the grace window makes that seller's
        bids genuinely late; this intentionally breaks sync/async parity
        for the delayed sellers, so leave it empty when asserting the
        determinism contract.
    clock:
        ``"virtual"`` (the default) or ``"wall"``.  Selects the clock
        mode of the default transport and of the orchestrator; under
        ``"wall"`` the grace window is a real timeout and the
        determinism contract is relaxed (see ``docs/serving.md``).
        Ignored when an explicit ``transport`` is passed (the transport
        already carries its mode).
    listen:
        ``(host, port)`` to serve over TCP instead of in memory: the
        service builds a :class:`~repro.dist.tcp.TcpTransport` router,
        binds it when serving starts, and expects seller agents to
        connect over the network (spawning ``agent_processes`` local
        worker processes to provide them, unless it is 0 and external
        agents will dial in).  Port 0 binds an ephemeral port; read
        :attr:`address` (or set :attr:`on_listening`) to learn it.
    agent_processes:
        With ``listen``: how many local worker OS processes to spawn
        for the seller fleet (default 2; 0 means agents are external —
        the service just waits for every seller endpoint to register).
    spawn_timeout:
        With ``listen``: real-seconds budget for every seller endpoint
        to register before serving fails with a ``TransportError``.
    """

    def __init__(
        self,
        scenario: DistScenario | None = None,
        *,
        transport: Transport | None = None,
        grace_window: float | None = None,
        wall_timeout: float = 5.0,
        seller_delays: dict[int, float] | None = None,
        clock: str | None = None,
        listen: tuple[str, int] | None = None,
        agent_processes: int = 2,
        spawn_timeout: float = 60.0,
    ) -> None:
        self.scenario = scenario or DistScenario()
        if transport is not None:
            if listen is not None:
                raise ConfigurationError(
                    "pass either an explicit transport or listen=, not both"
                )
            self.transport = transport
        elif listen is not None:
            self.transport = TcpTransport(clock=clock or "virtual")
        else:
            self.transport = InMemoryTransport(clock=clock or "virtual")
        self._listen = listen
        self.agent_processes = agent_processes
        self.spawn_timeout = spawn_timeout
        self.address: tuple[str, int] | None = None
        self.on_listening: Callable[[tuple[str, int]], None] | None = None
        self._workers = []
        if grace_window is None:
            bid_timeout = getattr(
                self.scenario.resilience, "bid_timeout", None
            )
            grace_window = float(bid_timeout) if bid_timeout else 1.0
        self.platform = self.scenario.build_platform()
        self.orchestrator = RoundOrchestrator(
            self.platform,
            self.transport,
            grace_window=grace_window,
            wall_timeout=wall_timeout,
            clock=clock,
        )
        self._seller_delays = dict(seller_delays or {})
        self.sellers: dict[int, SellerAgent] = {}
        self.buyers: dict[int, BuyerAgent] = {}
        self._spawned = False

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def connect(self, seller_id: int, *, endpoint: str | None = None) -> AgentHandle:
        """Attach a caller-driven agent for ``seller_id``; return its handle.

        The built-in :class:`~repro.dist.agents.SellerAgent` will *not*
        be spawned for this seller — the caller owns its behaviour (and
        must answer or decline :class:`~repro.dist.messages.RoundOpen`
        announcements, or the round waits out the wall-clock guard).
        """
        if self._spawned:
            raise ConfigurationError(
                "connect() must be called before the session starts serving"
            )
        handle = AgentHandle(
            self.transport,
            endpoint or seller_endpoint(seller_id),
            seller_id=seller_id,
        )
        self.orchestrator.attach_seller(seller_id, handle.endpoint)
        return handle

    def observe_buyer(self, buyer_id: int) -> BuyerAgent:
        """Spawn a passive observer tallying ``buyer_id``'s granted units."""
        if buyer_id in self.buyers:
            return self.buyers[buyer_id]
        handle = AgentHandle(self.transport, f"buyer-{buyer_id}")
        agent = BuyerAgent(handle, buyer_id)
        self.buyers[buyer_id] = agent
        return agent

    def _spawn_sellers(self) -> None:
        """Create the default seller fleet for every unattached seller."""
        if self._spawned:
            return
        self._spawned = True
        factory = self.scenario.policy_factory()
        attached = set(self.orchestrator.attached_sellers)
        for sid in self.scenario.seller_ids():
            if sid in attached:
                continue  # a caller-driven agent owns this seller
            handle = AgentHandle(
                self.transport, seller_endpoint(sid), seller_id=sid
            )
            agent = SellerAgent(
                handle,
                policy=factory(),
                rng=seller_stream(self.scenario.seed, sid),
                submission_delay=self._seller_delays.get(sid, 0.0),
            )
            self.orchestrator.attach_seller(sid, handle.endpoint)
            self.sellers[sid] = agent

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def serve_rounds(
        self, rounds: int | None = None
    ) -> list[PlatformRoundReport]:
        """Serve ``rounds`` (default: the scenario horizon) inside a loop.

        In-memory mode: spawns the agent fleet as tasks, runs the
        orchestrator's round loop, then broadcasts shutdown and joins
        every agent task.  TCP mode (constructed with ``listen=``):
        binds the router socket, spawns ``agent_processes`` worker
        processes (if any), waits for every seller endpoint to register,
        serves, then shuts the fleet and the transport down.  Use this
        form when composing with other coroutines (e.g. manual agents
        from :meth:`connect`); use :meth:`run` for the common one-shot
        session.
        """
        if self._listen is not None:
            return await self._serve_remote(rounds)
        self._spawn_sellers()
        agents = list(self.sellers.values()) + list(self.buyers.values())
        tasks = [asyncio.create_task(agent.run()) for agent in agents]
        try:
            reports = await self.orchestrator.run(rounds)
        finally:
            self.orchestrator.shutdown()
        await asyncio.gather(*tasks)
        return reports

    async def _serve_remote(
        self, rounds: int | None = None
    ) -> list[PlatformRoundReport]:
        """TCP serving: bind, place agents in processes, run, tear down."""
        self._spawned = True  # no in-process default fleet in TCP mode
        host, port = self._listen
        self.address = await self.transport.listen(host, port)
        if self.on_listening is not None:
            self.on_listening(self.address)
        already_attached = set(self.orchestrator.attached_sellers)
        remote_ids = tuple(
            sid
            for sid in self.scenario.seller_ids()
            if sid not in already_attached
        )
        if self.agent_processes > 0 and remote_ids:
            self._workers = spawn_agents(
                self.scenario,
                self.address[0],
                self.address[1],
                processes=self.agent_processes,
                sellers=remote_ids,
            )
        try:
            await self.transport.wait_for_endpoints(
                [seller_endpoint(sid) for sid in remote_ids],
                timeout=self.spawn_timeout,
            )
            for sid in remote_ids:
                self.orchestrator.attach_seller(sid, seller_endpoint(sid))
            buyer_tasks = [
                asyncio.create_task(agent.run())
                for agent in self.buyers.values()
            ]
            try:
                reports = await self.orchestrator.run(rounds)
            finally:
                self.orchestrator.shutdown()
            await asyncio.gather(*buyer_tasks)
            await self._join_workers()
        finally:
            self.transport.close()
        return reports

    async def _join_workers(self, timeout: float = 10.0) -> None:
        """Join spawned worker processes off the event loop thread."""
        if not self._workers:
            return
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.join, timeout)
            if worker.is_alive():  # refused the shutdown: don't leak it
                worker.terminate()
                await loop.run_in_executor(None, worker.join, 5.0)
        self._workers = []

    def run(self, rounds: int | None = None) -> list[PlatformRoundReport]:
        """One-shot session: serve ``rounds`` and return the reports.

        Owns the event loop for the duration (``asyncio.run``); for use
        from synchronous code — scripts, the CLI ``serve`` subcommand,
        tests that don't need custom agents.
        """
        return asyncio.run(self.serve_rounds(rounds))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def reports(self) -> list[PlatformRoundReport]:
        """Round reports accumulated so far (shared with the platform)."""
        return self.platform.reports

    @property
    def ledger(self):
        """The platform's money-flow ledger."""
        return self.platform.ledger

    @property
    def shard_stats(self):
        """Per-shard clearing stats when the scenario shards its rounds.

        With ``scenario.shards > 1`` the orchestrator's single
        ``complete_round`` path fans out into per-shard SSAM executions
        (:class:`~repro.shard.msoa.ShardedOnlineAuction`); this surfaces
        their :class:`~repro.shard.ssam.ShardRoundStats`.  Empty tuple
        for unsharded scenarios.
        """
        return tuple(getattr(self.platform.auction, "shard_stats", ()))

    def finalize(self):
        """Finalize the underlying online auction (competitive-ratio view)."""
        return self.platform.finalize()


def serve(
    scenario: DistScenario | None = None, **options
) -> AuctionService:
    """Build a distributed auction service — the documented entry point.

    Replaces direct :class:`~repro.edge.platform.EdgePlatform` wiring
    (which now emits a :class:`DeprecationWarning`): describe the
    deployment as a :class:`~repro.dist.scenario.DistScenario` and let
    the service own construction, agents, and the round loop.  Keyword
    options are forwarded to :class:`AuctionService` (``transport``,
    ``grace_window``, ``wall_timeout``, ``seller_delays``, ``clock``,
    ``listen``, ``agent_processes``, ``spawn_timeout``).
    """
    return AuctionService(scenario, **options)
