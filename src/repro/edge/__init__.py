"""The edge-cloud substrate (Section II system settings).

Edge clouds with fair-shared capacity, microservices with delay classes
and sharing capacities, end users, a latency-weighted backhaul network,
and the :class:`~repro.edge.platform.EdgePlatform` that drives the full
simulate → estimate → auction → reallocate loop.
"""

from repro.edge.cloud import EdgeCloud
from repro.edge.cross_cloud import CrossCloudConfig, build_cross_cloud_market
from repro.edge.fair_share import max_min_fair_share
from repro.edge.microservice import DelayClass, Microservice
from repro.edge.network import BackhaulNetwork, build_backhaul
from repro.edge.policies import (
    MarkupPolicy,
    OpportunisticPolicy,
    RandomizedPolicy,
)
from repro.edge.platform import (
    BiddingPolicy,
    EdgePlatform,
    Ledger,
    PlatformConfig,
    PlatformRoundReport,
    TruthfulCostPolicy,
)
from repro.edge.resources import ResourceVector
from repro.edge.users import EndUser, build_user_population

__all__ = [
    "EdgeCloud",
    "CrossCloudConfig",
    "build_cross_cloud_market",
    "max_min_fair_share",
    "DelayClass",
    "Microservice",
    "BackhaulNetwork",
    "build_backhaul",
    "BiddingPolicy",
    "MarkupPolicy",
    "OpportunisticPolicy",
    "RandomizedPolicy",
    "EdgePlatform",
    "Ledger",
    "PlatformConfig",
    "PlatformRoundReport",
    "TruthfulCostPolicy",
    "ResourceVector",
    "EndUser",
    "build_user_population",
]
