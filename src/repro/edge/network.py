"""The backhaul network connecting edge clouds (Section II).

"The edge clouds are connected to each other through a backhaul network
and every edge cloud is reachable from every network access point."  We
model the backhaul as a connected weighted graph (networkx): nodes are
edge clouds, edge weights are link latencies, and access latency between
any two sites is the shortest-path latency.  The topology builder offers
the ring-plus-chords shape typical of metro aggregation networks.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BackhaulNetwork", "build_backhaul"]


class BackhaulNetwork:
    """A latency-weighted backhaul graph over the edge clouds."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("backhaul graph must have at least one node")
        if not nx.is_connected(graph):
            raise ConfigurationError(
                "backhaul graph must be connected (every cloud reachable)"
            )
        for u, v, data in graph.edges(data=True):
            if data.get("latency", 0) <= 0:
                raise ConfigurationError(
                    f"backhaul link ({u}, {v}) must have positive latency"
                )
        self._graph = graph
        self._paths: dict[int, dict[int, float]] = dict(
            nx.all_pairs_dijkstra_path_length(graph, weight="latency")
        )

    @property
    def clouds(self) -> tuple[int, ...]:
        """Cloud identifiers, sorted."""
        return tuple(sorted(self._graph.nodes))

    def latency(self, source: int, destination: int) -> float:
        """Shortest-path latency between two clouds (0 for the same site)."""
        try:
            return self._paths[source][destination]
        except KeyError:
            raise ConfigurationError(
                f"no path between clouds {source} and {destination}"
            ) from None

    def neighbours(self, cloud: int) -> tuple[int, ...]:
        """Directly linked clouds."""
        if cloud not in self._graph:
            raise ConfigurationError(f"unknown cloud {cloud}")
        return tuple(sorted(self._graph.neighbors(cloud)))

    def nearest(self, cloud: int, candidates: tuple[int, ...]) -> int:
        """The candidate cloud with the smallest latency from ``cloud``."""
        if not candidates:
            raise ConfigurationError("candidates must be non-empty")
        return min(candidates, key=lambda c: (self.latency(cloud, c), c))

    @property
    def diameter_latency(self) -> float:
        """The largest pairwise shortest-path latency."""
        return max(
            max(dists.values()) for dists in self._paths.values()
        )


def build_backhaul(
    rng: np.random.Generator,
    *,
    n_clouds: int = 10,
    chord_probability: float = 0.3,
    latency_range: tuple[float, float] = (1.0, 5.0),
) -> BackhaulNetwork:
    """Build a ring-plus-random-chords backhaul over ``n_clouds`` sites.

    The ring guarantees connectivity; chords (added with the given
    probability per non-adjacent pair) model the shortcut links of metro
    aggregation networks.  Link latencies are uniform in ``latency_range``
    (milliseconds, nominally).
    """
    if n_clouds <= 0:
        raise ConfigurationError(f"n_clouds must be positive, got {n_clouds}")
    low, high = latency_range
    if not 0 < low <= high:
        raise ConfigurationError(f"invalid latency range {latency_range}")
    if not 0.0 <= chord_probability <= 1.0:
        raise ConfigurationError(
            f"chord_probability must be in [0, 1], got {chord_probability}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(n_clouds))
    if n_clouds == 1:
        return BackhaulNetwork(graph)
    for i in range(n_clouds):
        j = (i + 1) % n_clouds
        if not graph.has_edge(i, j):
            graph.add_edge(i, j, latency=float(rng.uniform(low, high)))
    for i in range(n_clouds):
        for j in range(i + 2, n_clouds):
            if (i, j) == (0, n_clouds - 1):
                continue  # that's the ring-closing edge
            if rng.random() < chord_probability:
                graph.add_edge(i, j, latency=float(rng.uniform(low, high)))
    return BackhaulNetwork(graph)
