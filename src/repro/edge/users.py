"""End users issuing application requests (the set ℛ of Section II).

Each user attaches to a network access point, targets one microservice,
and issues requests at a class-dependent Poisson rate.  The population
builder reproduces the paper's setting of 300 edge users spread over the
base stations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edge.microservice import DelayClass
from repro.errors import ConfigurationError

__all__ = ["EndUser", "build_user_population"]


@dataclass(frozen=True)
class EndUser:
    """One end user: an attachment point, a target service, and a rate."""

    user_id: int
    access_point: int
    target_service: int
    request_rate: float
    delay_class: DelayClass

    def __post_init__(self) -> None:
        if self.request_rate <= 0:
            raise ConfigurationError(
                f"user {self.user_id} request rate must be positive, "
                f"got {self.request_rate}"
            )


def build_user_population(
    rng: np.random.Generator,
    *,
    n_users: int = 300,
    access_points: int = 10,
    services: tuple[int, ...] = (),
    sensitive_rate: float = 5.0,
    tolerant_rate: float = 10.0,
    sensitive_fraction: float = 0.5,
) -> tuple[EndUser, ...]:
    """Create the paper's user population (Section V.A).

    300 users by default, attached uniformly at random to the access
    points / base stations, each targeting a random microservice.  Request
    rates follow the paper's Poisson means: 5 for delay-sensitive and 10
    for delay-tolerant users.
    """
    if n_users <= 0:
        raise ConfigurationError(f"n_users must be positive, got {n_users}")
    if access_points <= 0:
        raise ConfigurationError(f"access_points must be positive, got {access_points}")
    if not services:
        raise ConfigurationError("at least one target service is required")
    if not 0.0 <= sensitive_fraction <= 1.0:
        raise ConfigurationError(
            f"sensitive_fraction must be in [0, 1], got {sensitive_fraction}"
        )
    users = []
    for user_id in range(n_users):
        sensitive = bool(rng.random() < sensitive_fraction)
        users.append(
            EndUser(
                user_id=user_id,
                access_point=int(rng.integers(0, access_points)),
                target_service=int(services[int(rng.integers(0, len(services)))]),
                request_rate=sensitive_rate if sensitive else tolerant_rate,
                delay_class=(
                    DelayClass.DELAY_SENSITIVE
                    if sensitive
                    else DelayClass.DELAY_TOLERANT
                ),
            )
        )
    return tuple(users)
