"""Bidding policies beyond the truthful default.

The platform's sellers are strategy objects (see
:class:`~repro.edge.platform.BiddingPolicy`).  Besides the truthful
default, this module provides the behaviours the economics experiments
contrast:

* :class:`MarkupPolicy` — asks a fixed multiple of true cost.  Against a
  truthful mechanism this only ever *loses* auctions (Theorem 4), which
  the manipulation experiments verify empirically.
* :class:`OpportunisticPolicy` — marks up harder when it expects little
  competition (few co-located sellers), the realistic "smart" manipulator.
* :class:`RandomizedPolicy` — noise-trader control: random prices around
  cost, random coverage, useful for stress tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.bids import Bid
from repro.edge.platform import BiddingPolicy, TruthfulCostPolicy
from repro.errors import ConfigurationError

__all__ = ["MarkupPolicy", "OpportunisticPolicy", "RandomizedPolicy"]


@dataclass
class MarkupPolicy(BiddingPolicy):
    """Ask ``markup ×`` true cost on every bid.

    Keeps a private truthful policy internally so the *costs* are drawn
    from the same distribution as the honest benchmark — only the
    announcements differ.
    """

    markup: float = 1.5
    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    _honest: TruthfulCostPolicy = field(init=False)

    def __post_init__(self) -> None:
        if self.markup < 1.0:
            raise ConfigurationError(
                f"markup must be at least 1 (no below-cost dumping), "
                f"got {self.markup}"
            )
        self._honest = TruthfulCostPolicy(
            bids_per_seller=self.bids_per_seller,
            unit_cost_range=self.unit_cost_range,
        )

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        honest = self._honest.make_bids(seller_id, local_buyers, max_units, rng)
        return [bid.with_price(bid.cost * self.markup) for bid in honest]


@dataclass
class OpportunisticPolicy(BiddingPolicy):
    """Mark up more aggressively when the local market looks thin.

    The markup interpolates between ``base_markup`` (crowded market) and
    ``monopoly_markup`` as the number of co-located buyers per seller
    grows — a proxy for how pivotal the seller expects to be.
    """

    base_markup: float = 1.1
    monopoly_markup: float = 2.5
    crowd_reference: int = 6
    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    _honest: TruthfulCostPolicy = field(init=False)

    def __post_init__(self) -> None:
        if not 1.0 <= self.base_markup <= self.monopoly_markup:
            raise ConfigurationError(
                "need 1 <= base_markup <= monopoly_markup, got "
                f"{self.base_markup} / {self.monopoly_markup}"
            )
        if self.crowd_reference <= 0:
            raise ConfigurationError("crowd_reference must be positive")
        self._honest = TruthfulCostPolicy(
            bids_per_seller=self.bids_per_seller,
            unit_cost_range=self.unit_cost_range,
        )

    def current_markup(self, n_local_buyers: int) -> float:
        """The markup used when ``n_local_buyers`` need resources."""
        scarcity = min(1.0, n_local_buyers / self.crowd_reference)
        return self.base_markup + scarcity * (
            self.monopoly_markup - self.base_markup
        )

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        honest = self._honest.make_bids(seller_id, local_buyers, max_units, rng)
        markup = self.current_markup(len(local_buyers))
        return [bid.with_price(bid.cost * markup) for bid in honest]


@dataclass
class RandomizedPolicy(BiddingPolicy):
    """Noise trader: prices scattered multiplicatively around true cost.

    Never prices below cost (the factor is clamped at 1), so individual
    rationality comparisons stay meaningful.
    """

    sigma: float = 0.3
    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    _honest: TruthfulCostPolicy = field(init=False)

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {self.sigma}")
        self._honest = TruthfulCostPolicy(
            bids_per_seller=self.bids_per_seller,
            unit_cost_range=self.unit_cost_range,
        )

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        honest = self._honest.make_bids(seller_id, local_buyers, max_units, rng)
        priced = []
        for bid in honest:
            factor = max(1.0, float(rng.lognormal(0.0, self.sigma)))
            priced.append(bid.with_price(bid.cost * factor))
        return priced
