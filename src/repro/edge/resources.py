"""Multi-dimensional resource vectors for edge clouds.

The paper treats "resources" as a scalar amount per microservice; real
edge platforms (and the FaaS products the paper cites) bill CPU, memory
and bandwidth separately.  :class:`ResourceVector` keeps the substrate
honest about dimensionality while still collapsing to a scalar (via
:meth:`scalar`) where the auction needs one number, so the mechanism code
stays exactly the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ResourceVector"]


@dataclass(frozen=True)
class ResourceVector:
    """An (cpu, memory, bandwidth) resource bundle with vector arithmetic."""

    cpu: float = 0.0
    memory: float = 0.0
    bandwidth: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.items():
            if value < 0:
                raise ConfigurationError(
                    f"resource dimension {name} must be non-negative, got {value}"
                )

    def items(self) -> tuple[tuple[str, float], ...]:
        """Dimension name/value pairs in canonical order."""
        return (
            ("cpu", self.cpu),
            ("memory", self.memory),
            ("bandwidth", self.bandwidth),
        )

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory + other.memory,
            self.bandwidth + other.bandwidth,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            max(0.0, self.cpu - other.cpu),
            max(0.0, self.memory - other.memory),
            max(0.0, self.bandwidth - other.bandwidth),
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative, got {factor}")
        return ResourceVector(
            self.cpu * factor, self.memory * factor, self.bandwidth * factor
        )

    __rmul__ = __mul__

    # -- comparisons ---------------------------------------------------
    def dominates(self, other: "ResourceVector") -> bool:
        """True when every dimension is at least ``other``'s."""
        return (
            self.cpu >= other.cpu
            and self.memory >= other.memory
            and self.bandwidth >= other.bandwidth
        )

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True when this bundle fits inside ``capacity``."""
        return capacity.dominates(self)

    # -- scalar views ----------------------------------------------------
    def scalar(self) -> float:
        """Collapse to the paper's scalar resource amount.

        Uses the *bottleneck* (dominant-dimension) convention: the bundle
        is worth its largest dimension, matching how FaaS platforms size
        function instances by their binding resource.
        """
        return max(self.cpu, self.memory, self.bandwidth)

    @staticmethod
    def uniform(amount: float) -> "ResourceVector":
        """A bundle with the same amount in every dimension."""
        return ResourceVector(cpu=amount, memory=amount, bandwidth=amount)

    @property
    def is_zero(self) -> bool:
        """True when every dimension is zero."""
        return self.cpu == 0.0 and self.memory == 0.0 and self.bandwidth == 0.0
