"""Cross-cloud resource sharing — a network-aware extension.

The paper confines sharing to microservices "within the same edge cloud".
That is the right default (reallocating CPU across sites is not
physically meaningful), but for *bandwidth-like* resources and for
request re-routing it is overly strict: a seller on a neighbouring cloud
can help, at the cost of backhaul latency.  This module implements the
extension the paper's backhaul model (Section II) makes possible:

* sellers may cover buyers on other clouds;
* a remote bid's price carries a **latency surcharge** —
  ``penalty × latency(seller_cloud, buyer_cloud)`` per covered remote
  buyer — so the auction's cost minimization automatically trades local
  scarcity against network distance;
* pairs beyond ``max_latency`` are not offered at all.

The ablation bench compares local-only and cross-cloud markets on the
same deployments: cross-cloud supply lowers social cost exactly when the
local market is thin, and the surcharge keeps the auction from chasing
distant sellers when it is not.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.edge.network import BackhaulNetwork
from repro.errors import ConfigurationError

__all__ = ["CrossCloudConfig", "build_cross_cloud_market"]


@dataclass(frozen=True)
class CrossCloudConfig:
    """Economics of remote coverage.

    ``latency_penalty`` converts milliseconds of backhaul distance into
    price units per covered remote buyer; ``max_latency`` (optional) caps
    how far supply may travel; ``local_only`` reproduces the paper's
    same-cloud rule exactly (penalty/capping are then irrelevant).
    """

    latency_penalty: float = 1.0
    max_latency: float | None = None
    local_only: bool = False

    def __post_init__(self) -> None:
        if self.latency_penalty < 0:
            raise ConfigurationError(
                f"latency_penalty must be non-negative, got {self.latency_penalty}"
            )
        if self.max_latency is not None and self.max_latency <= 0:
            raise ConfigurationError(
                f"max_latency must be positive, got {self.max_latency}"
            )


def build_cross_cloud_market(
    seller_clouds: Mapping[int, int],
    seller_costs: Mapping[int, float],
    buyer_clouds: Mapping[int, int],
    demand: Mapping[int, int],
    network: BackhaulNetwork,
    config: CrossCloudConfig,
    rng: np.random.Generator,
    *,
    bids_per_seller: int = 2,
    max_coverage: int = 3,
    price_ceiling: float | None = None,
) -> WSPInstance:
    """Assemble one round's market with network-priced remote coverage.

    Each seller draws up to ``bids_per_seller`` coverage sets from the
    buyers it may reach (same cloud always; remote clouds within
    ``max_latency`` unless ``local_only``), priced at
    ``cost × |covered| + penalty × Σ latency(seller, remote buyer)``.
    """
    unknown = set(seller_costs) - set(seller_clouds)
    if unknown:
        raise ConfigurationError(f"sellers without a cloud: {sorted(unknown)}")
    bids: list[Bid] = []
    for seller in sorted(seller_clouds):
        cost = seller_costs.get(seller)
        if cost is None or cost < 0:
            raise ConfigurationError(f"seller {seller} needs a non-negative cost")
        s_cloud = seller_clouds[seller]
        reachable: dict[int, float] = {}
        for buyer, b_cloud in buyer_clouds.items():
            if demand.get(buyer, 0) <= 0:
                continue
            latency = network.latency(s_cloud, b_cloud)
            if b_cloud == s_cloud:
                reachable[buyer] = 0.0
            elif config.local_only:
                continue
            elif config.max_latency is not None and latency > config.max_latency:
                continue
            else:
                reachable[buyer] = latency
        if not reachable:
            continue
        candidates = sorted(reachable)
        # Rational sellers favour nearby buyers: a remote buyer's chance
        # of entering a coverage set decays with its latency surcharge, so
        # remote supply appears where it is competitive instead of
        # polluting the pool with dominated offers.
        weights = np.array(
            [
                1.0 / (1.0 + config.latency_penalty * reachable[b])
                for b in candidates
            ]
        )
        weights = weights / weights.sum()
        seen: set[frozenset[int]] = set()
        for index in range(bids_per_seller):
            size = int(rng.integers(1, min(len(candidates), max_coverage) + 1))
            covered = frozenset(
                int(b)
                for b in rng.choice(
                    candidates, size=size, replace=False, p=weights
                )
            )
            if covered in seen:
                continue
            seen.add(covered)
            surcharge = config.latency_penalty * sum(
                reachable[b] for b in covered
            )
            base = cost * len(covered)
            bids.append(
                Bid(
                    seller=seller,
                    index=index,
                    covered=covered,
                    price=base + surcharge,
                    true_cost=base + surcharge,
                )
            )
    return WSPInstance.from_bids(
        bids,
        {b: u for b, u in demand.items()},
        price_ceiling=price_ceiling,
    )
