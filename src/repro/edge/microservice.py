"""The microservice entity.

A microservice belongs to a tenant, runs on one edge cloud, holds a
resource allocation, and carries a *delay class* (Section V: the workloads
distinguish delay-sensitive from delay-tolerant microservices, with
priority given to the delay-sensitive ones).  Sellers additionally declare
how much of their allocation they are willing to spare in total (the Θᵢ
capacity of the online mechanism).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CapacityExceededError, ConfigurationError

__all__ = ["DelayClass", "Microservice"]


class DelayClass(enum.Enum):
    """Workload sensitivity classes used in the paper's evaluation."""

    DELAY_SENSITIVE = "delay_sensitive"
    DELAY_TOLERANT = "delay_tolerant"

    @property
    def priority(self) -> int:
        """Lower is more urgent; delay-sensitive requests go first."""
        return 0 if self is DelayClass.DELAY_SENSITIVE else 1


@dataclass
class Microservice:
    """A tenant's microservice deployed on one edge cloud.

    Attributes
    ----------
    service_id:
        Globally unique identifier.
    tenant:
        The owning service provider (used only for reporting; the
        mechanism treats microservices individually).
    cloud:
        Identifier of the hosting edge cloud.
    delay_class:
        Delay sensitivity of the requests it serves.
    allocation:
        Resource units currently held (``aᵢᵗ``).
    base_demand:
        Resource units needed for its own baseline load; only the excess
        above this is *spareable*.
    share_capacity:
        ``Θᵢ`` — total coverage units it is willing to yield over a whole
        horizon via the auction (``None``: it never sells).
    shared_so_far:
        Cumulative units already yielded (``χᵢ`` mirror, maintained by the
        platform when auction results are applied).
    """

    service_id: int
    tenant: str = "default"
    cloud: int = 0
    delay_class: DelayClass = DelayClass.DELAY_TOLERANT
    allocation: float = 1.0
    base_demand: float = 1.0
    share_capacity: int | None = None
    shared_so_far: int = field(default=0)

    def __post_init__(self) -> None:
        if self.allocation < 0:
            raise ConfigurationError(
                f"microservice {self.service_id} allocation must be non-negative"
            )
        if self.base_demand < 0:
            raise ConfigurationError(
                f"microservice {self.service_id} base_demand must be non-negative"
            )
        if self.share_capacity is not None and self.share_capacity <= 0:
            raise ConfigurationError(
                f"microservice {self.service_id} share_capacity must be positive"
            )
        if self.shared_so_far < 0:
            raise ConfigurationError(
                f"microservice {self.service_id} shared_so_far must be non-negative"
            )

    @property
    def spare(self) -> float:
        """Resource units above its own baseline need (what it can offer)."""
        return max(0.0, self.allocation - self.base_demand)

    @property
    def is_potential_seller(self) -> bool:
        """Whether it has both spare resources and remaining willingness."""
        return self.spare > 0 and self.remaining_share_capacity != 0

    @property
    def remaining_share_capacity(self) -> int | None:
        """Units it may still yield (``None`` when unconstrained... or 0)."""
        if self.share_capacity is None:
            return None
        return max(0, self.share_capacity - self.shared_so_far)

    def record_shared(self, units: int) -> None:
        """Account for ``units`` yielded through a winning bid."""
        if units < 0:
            raise ConfigurationError(f"shared units must be non-negative, got {units}")
        remaining = self.remaining_share_capacity
        if remaining is not None and units > remaining:
            raise CapacityExceededError(
                f"microservice {self.service_id} cannot share {units} units; "
                f"only {remaining} remain of capacity {self.share_capacity}"
            )
        self.shared_so_far += units

    def grant(self, amount: float) -> None:
        """Increase the allocation (reallocation of reclaimed resources)."""
        if amount < 0:
            raise ConfigurationError(f"grant must be non-negative, got {amount}")
        self.allocation += amount

    def reclaim(self, amount: float) -> None:
        """Decrease the allocation (resources yielded to the platform)."""
        if amount < 0:
            raise ConfigurationError(f"reclaim must be non-negative, got {amount}")
        if amount > self.allocation + 1e-9:
            raise CapacityExceededError(
                f"cannot reclaim {amount} from microservice {self.service_id} "
                f"holding {self.allocation}"
            )
        self.allocation = max(0.0, self.allocation - amount)
