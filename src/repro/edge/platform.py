"""The edge platform: the end-to-end loop of Figure 2.

Each auction round, the platform

1. lets the request simulator run for the round length, collecting the
   per-microservice indicators of Section III,
2. estimates each microservice's extra-resource demand in integer units,
3. collects bids from microservices with spare resources (a pluggable
   :class:`BiddingPolicy`; the default prices truthfully at cost),
4. runs one round of the multi-stage online auction (MSOA),
5. applies the winning transfers (reclaim from sellers, grant to buyers)
   and records payments/charges in the ledger.

Resource sharing stays *within* an edge cloud, as in the paper: a seller's
bid only covers needy microservices co-located on its own site.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.bids import Bid
from repro.core.mechanism import OnlineMechanism
from repro.core.msoa import MultiStageOnlineAuction
from repro.core.outcomes import RoundResult
from repro.core.registry import get_spec, make_online
from repro.core.ssam import PaymentRule
from repro.core.wsp import WSPInstance
from repro.demand.estimator import DemandEstimator
from repro.edge.cloud import EdgeCloud
from repro.edge.network import BackhaulNetwork
from repro.edge.users import EndUser
from repro.errors import ConfigurationError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.sim.metrics import RoundSnapshot
from repro.sim.processes import ArrivalProcess, RequestServer

__all__ = [
    "PlatformConfig",
    "BiddingPolicy",
    "TruthfulCostPolicy",
    "EdgePlatform",
    "PlatformRoundReport",
    "RoundContext",
    "SellerContext",
    "Ledger",
]


@dataclass(frozen=True)
class PlatformConfig:
    """Tunables of the platform loop (paper defaults from Section V.A)."""

    round_length: float = 10.0
    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    price_ceiling: float = 50.0
    speed_per_unit: float = 1.0
    work_mean: float = 1.0
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN
    engine: str = "fast"
    shards: int = 1
    shard_strategy: str = "hash"

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference", "columnar"):
            raise ConfigurationError(
                "engine must be 'fast', 'reference' or 'columnar', "
                f"got {self.engine!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be a positive integer, got {self.shards}"
            )
        if self.shard_strategy not in ("hash", "region", "locality"):
            raise ConfigurationError(
                "shard_strategy must be 'hash', 'region' or 'locality', "
                f"got {self.shard_strategy!r}"
            )
        if self.round_length <= 0:
            raise ConfigurationError("round_length must be positive")
        if self.bids_per_seller <= 0:
            raise ConfigurationError("bids_per_seller must be positive")
        low, high = self.unit_cost_range
        if not 0 < low <= high:
            raise ConfigurationError(f"invalid unit_cost_range {self.unit_cost_range}")
        if self.price_ceiling < high:
            raise ConfigurationError(
                "price_ceiling must be at least the top of unit_cost_range"
            )


class BiddingPolicy:
    """Strategy interface: how a seller turns spare capacity into bids."""

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        """Produce up to ``J`` alternative bids for this round."""
        raise NotImplementedError


@dataclass
class TruthfulCostPolicy(BiddingPolicy):
    """The default truthful seller: price equals private per-unit cost.

    Each seller draws a private per-unit cost once (uniform in
    ``unit_cost_range``) and submits up to ``bids_per_seller`` alternative
    bids covering random subsets of the co-located needy microservices,
    priced at ``cost · |covered|``.  Alternative bids differ in the subset
    they cover, matching the paper's "up to F alternative bids".
    """

    bids_per_seller: int = 2
    unit_cost_range: tuple[float, float] = (10.0, 35.0)
    _costs: dict[int, float] = field(default_factory=dict)

    def unit_cost(self, seller_id: int, rng: np.random.Generator) -> float:
        """The seller's persistent private per-unit cost."""
        if seller_id not in self._costs:
            low, high = self.unit_cost_range
            self._costs[seller_id] = float(rng.uniform(low, high))
        return self._costs[seller_id]

    def make_bids(
        self,
        seller_id: int,
        local_buyers: Sequence[int],
        max_units: int,
        rng: np.random.Generator,
    ) -> list[Bid]:
        if not local_buyers or max_units <= 0:
            return []
        cost = self.unit_cost(seller_id, rng)
        bids: list[Bid] = []
        seen: set[frozenset[int]] = set()
        for j in range(self.bids_per_seller):
            size = int(rng.integers(1, min(len(local_buyers), max_units) + 1))
            covered = frozenset(
                int(b) for b in rng.choice(local_buyers, size=size, replace=False)
            )
            if covered in seen:
                continue
            seen.add(covered)
            price = cost * len(covered)
            bids.append(
                Bid(
                    seller=seller_id,
                    index=j,
                    covered=covered,
                    price=price,
                    true_cost=price,
                )
            )
        return bids


@dataclass
class Ledger:
    """Money flow bookkeeping (Definition 5's no-economic-loss audit).

    ``payments`` records what the platform pays winning sellers;
    ``charges`` records what it bills the buyers whose demand was served
    (each round's payout is split across buyers in proportion to the
    units they received).
    """

    payments: dict[int, float] = field(default_factory=dict)
    charges: dict[int, float] = field(default_factory=dict)

    def record_round(self, result: RoundResult, units_received: Mapping[int, int]) -> None:
        """Book one round's payments and the matching buyer charges."""
        total_payment = result.total_payment
        for winner in result.outcome.winners:
            seller = winner.bid.seller
            self.payments[seller] = self.payments.get(seller, 0.0) + winner.payment
        total_units = sum(units_received.values())
        if total_units <= 0 or total_payment <= 0:
            return
        for buyer, units in units_received.items():
            share = total_payment * units / total_units
            self.charges[buyer] = self.charges.get(buyer, 0.0) + share

    @property
    def total_paid(self) -> float:
        """Aggregate payments to sellers."""
        return sum(self.payments.values())

    @property
    def total_charged(self) -> float:
        """Aggregate charges to buyers."""
        return sum(self.charges.values())

    @property
    def is_budget_balanced(self) -> bool:
        """Whether charges cover payments (no economic loss, Def. 5)."""
        return self.total_charged >= self.total_paid - 1e-9


@dataclass(frozen=True)
class SellerContext:
    """What one potential seller needs to know to bid in a round.

    The platform announces this (it is public information: who is needy
    on the seller's own cloud, and how many units the seller may still
    pledge); the seller's private data — its cost and its bid randomness
    — never leaves the seller.
    """

    seller_id: int
    local_buyers: tuple[int, ...]
    max_units: int


@dataclass(frozen=True)
class RoundContext:
    """The opening state of one auction round.

    Produced by :meth:`EdgePlatform.begin_round` after the simulation has
    advanced and demand has been estimated, but *before* any bid has been
    collected.  The synchronous loop feeds it straight to
    :meth:`EdgePlatform.collect_bids`; the distributed serving layer
    (:mod:`repro.dist`) broadcasts its :class:`SellerContext` entries
    over a transport instead and gathers the replies within a grace
    window.  Either way, :meth:`EdgePlatform.complete_round` clears the
    collected bids through the same mechanism code.
    """

    round_index: int
    snapshots: tuple[RoundSnapshot, ...]
    demand_units: Mapping[int, int]
    buyers: Mapping[int, int]
    seller_contexts: tuple[SellerContext, ...]

    @property
    def has_demand(self) -> bool:
        """Whether any buyer needs units this round."""
        return bool(self.buyers)


@dataclass(frozen=True)
class PlatformRoundReport:
    """Everything observable about one platform round."""

    round_index: int
    snapshots: tuple[RoundSnapshot, ...]
    demand_units: Mapping[int, int]
    auction: RoundResult | None
    transfers: tuple[tuple[int, frozenset[int]], ...]

    @property
    def social_cost(self) -> float:
        """The round's social cost (0 when no auction was needed)."""
        return self.auction.social_cost if self.auction is not None else 0.0


class EdgePlatform:
    """Drives the full simulate → estimate → auction → reallocate loop.

    The round lifecycle is split into three phases so that bid collection
    can happen over a transport: :meth:`begin_round` advances the
    simulation and estimates demand, :meth:`collect_bids` asks the
    in-process bidding policy for every seller's bids, and
    :meth:`complete_round` clears the collected bids and applies the
    transfers.  :meth:`run_round` chains the three synchronously; the
    distributed serving layer (:mod:`repro.dist`, built through
    :func:`repro.api.serve`) replaces the middle phase with a
    message-driven round trip to independent seller agents.

    .. deprecated:: 1.2
        Constructing :class:`EdgePlatform` directly (wiring sellers and
        buyers into one synchronous loop) emits a
        :class:`DeprecationWarning`; the documented construction path is
        :func:`repro.api.serve`.  The synchronous loop itself is fully
        supported — only the direct wiring is deprecated.

    The per-round auction is pluggable through ``mechanism``: the default
    (``None``) runs MSOA as in the paper; a registry name (``"pay-as-bid"``,
    ``"vcg"``, ...) runs that mechanism under the same capacity discipline
    (so a baseline can drive the full Figure-2 loop end-to-end); an
    already-built :class:`~repro.core.mechanism.OnlineMechanism` is used
    as-is.

    ``faults`` (a :class:`~repro.faults.models.FaultPlan`) and
    ``resilience`` (a :class:`~repro.faults.policies.ResiliencePolicy`)
    activate seeded fault injection and recovery inside the auction step;
    they are forwarded to the mechanism the platform constructs, so they
    cannot be combined with an already-built ``mechanism`` object
    (configure that object directly instead).
    """

    def __init__(
        self,
        clouds: Sequence[EdgeCloud],
        network: BackhaulNetwork,
        users: Sequence[EndUser],
        estimator: DemandEstimator,
        *,
        config: PlatformConfig | None = None,
        bidding_policy: BiddingPolicy | None = None,
        rng: np.random.Generator | None = None,
        horizon_rounds: int = 10,
        mechanism: str | OnlineMechanism | None = None,
        faults=None,
        resilience=None,
    ) -> None:
        warnings.warn(
            "wiring sellers and buyers directly into EdgePlatform is "
            "deprecated as the construction path; build the serving "
            "platform through repro.api.serve() (repro.dist.AuctionService) "
            "instead — the synchronous loop keeps working, but the facade "
            "is the documented entry point",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(
            clouds,
            network,
            users,
            estimator,
            config=config,
            bidding_policy=bidding_policy,
            rng=rng,
            horizon_rounds=horizon_rounds,
            mechanism=mechanism,
            faults=faults,
            resilience=resilience,
        )

    @classmethod
    def _create(cls, *args, **kwargs) -> "EdgePlatform":
        """Construct a platform without the direct-wiring deprecation.

        The serving facade (:func:`repro.api.serve`,
        :func:`repro.dist.replay_scenario`) builds its platform core
        through here; end users constructing :class:`EdgePlatform`
        directly get the :class:`DeprecationWarning` steering them to
        the facade.
        """
        self = object.__new__(cls)
        self._init(*args, **kwargs)
        return self

    def _init(
        self,
        clouds: Sequence[EdgeCloud],
        network: BackhaulNetwork,
        users: Sequence[EndUser],
        estimator: DemandEstimator,
        *,
        config: PlatformConfig | None = None,
        bidding_policy: BiddingPolicy | None = None,
        rng: np.random.Generator | None = None,
        horizon_rounds: int = 10,
        mechanism: str | OnlineMechanism | None = None,
        faults=None,
        resilience=None,
    ) -> None:
        if not clouds:
            raise ConfigurationError("at least one edge cloud is required")
        self.clouds = {cloud.cloud_id: cloud for cloud in clouds}
        if len(self.clouds) != len(clouds):
            raise ConfigurationError("edge cloud ids must be unique")
        self.network = network
        self.users = tuple(users)
        self.estimator = estimator
        self.config = config or PlatformConfig()
        self.bidding_policy = bidding_policy or TruthfulCostPolicy(
            bids_per_seller=self.config.bids_per_seller,
            unit_cost_range=self.config.unit_cost_range,
        )
        self.rng = rng if rng is not None else np.random.default_rng()
        self.horizon_rounds = horizon_rounds
        self.ledger = Ledger()
        self.reports: list[PlatformRoundReport] = []

        self._services = {
            s.service_id: s for cloud in clouds for s in cloud.services
        }
        capacities = {
            sid: s.share_capacity
            for sid, s in self._services.items()
            if s.share_capacity is not None
        }
        if mechanism is None:
            if self.config.shards > 1:
                from repro.shard.msoa import ShardedOnlineAuction
                from repro.shard.plan import RegionShardPlan, make_plan

                if self.config.shard_strategy == "region":
                    # A microservice's geographic region is its edge
                    # cloud — co-located buyers clear in one shard.
                    plan = RegionShardPlan(
                        regions={
                            sid: s.cloud
                            for sid, s in self._services.items()
                        },
                        n_shards=self.config.shards,
                    )
                else:
                    plan = make_plan(
                        self.config.shard_strategy, self.config.shards
                    )
                self.auction: OnlineMechanism = ShardedOnlineAuction(
                    capacities,
                    plan=plan,
                    payment_rule=self.config.payment_rule,
                    engine=self.config.engine,
                    on_infeasible="skip",
                    faults=faults,
                    resilience=resilience,
                )
            else:
                self.auction = MultiStageOnlineAuction(
                    capacities,
                    payment_rule=self.config.payment_rule,
                    engine=self.config.engine,
                    on_infeasible="skip",
                    faults=faults,
                    resilience=resilience,
                )
        elif isinstance(mechanism, str):
            # Forward the platform's payment rule and engine only to
            # mechanisms that understand them (per the registry spec);
            # rounds where demand outstrips the admissible bid pool are
            # skipped, as with MSOA.
            spec_options = get_spec(mechanism).options
            options = {
                name: value
                for name, value in (
                    ("payment_rule", self.config.payment_rule),
                    ("engine", self.config.engine),
                )
                if name in spec_options
            }
            self.auction = make_online(
                mechanism,
                capacities,
                on_infeasible="skip",
                faults=faults,
                resilience=resilience,
                **options,
            )
        else:
            if faults is not None or resilience is not None:
                raise ConfigurationError(
                    "faults=/resilience= cannot be combined with an "
                    "already-built mechanism object; pass them to that "
                    "mechanism's constructor instead"
                )
            self.auction = mechanism
        self._engine = SimulationEngine()
        self._servers: dict[int, RequestServer] = {}
        self._arrivals: list[ArrivalProcess] = []
        self._build_simulation()

    # ------------------------------------------------------------------
    # simulation wiring
    # ------------------------------------------------------------------
    def _build_simulation(self) -> None:
        horizon = self.config.round_length * self.horizon_rounds
        rate_per_service: dict[int, float] = {}
        for user in self.users:
            rate_per_service[user.target_service] = (
                rate_per_service.get(user.target_service, 0.0) + user.request_rate
            )
        for sid, service in self._services.items():
            server = RequestServer(
                microservice=sid,
                allocation=max(service.allocation, 1e-6),
                speed_per_unit=self.config.speed_per_unit,
            )
            self._servers[sid] = server
            self._engine.register(EventKind.ARRIVAL, server.handle_arrival)
            self._engine.register(EventKind.DEPARTURE, server.handle_departure)
            rate = rate_per_service.get(sid, 0.0)
            if rate > 0:
                process = ArrivalProcess(
                    microservice=sid,
                    rate=rate,
                    horizon=horizon,
                    rng=self.rng,
                    work_mean=self.config.work_mean,
                    user_pool=max(1, len(self.users)),
                )
                self._arrivals.append(process)
                self._engine.register(EventKind.ARRIVAL, process.on_arrival)
        for process in self._arrivals:
            process.start(self._engine)

    # ------------------------------------------------------------------
    # the per-round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self) -> RoundContext:
        """Open a round: simulate, estimate demand, announce seller contexts.

        Advances the request simulator by one round length, snapshots the
        per-microservice indicators, estimates every microservice's
        extra-resource demand, and computes each potential seller's
        public bidding context.  No bid is collected and no state beyond
        the simulation clock changes — the round is completed by
        :meth:`complete_round` once bids are in (directly via
        :meth:`collect_bids`, or over a transport in :mod:`repro.dist`).
        """
        round_index = len(self.reports)
        round_start = self._engine.now
        round_end = round_start + self.config.round_length
        with _OBS.tracer.span("platform.simulate", round_index=round_index):
            self._engine.run_until(round_end)
        snapshots = tuple(
            server.stats.snapshot(round_index, round_start, round_end)
            for server in self._servers.values()
        )
        for server in self._servers.values():
            server.stats.reset(round_end)
        demand_units = self.estimator.estimate_round(snapshots)
        buyers = {b: u for b, u in demand_units.items() if u > 0}
        return RoundContext(
            round_index=round_index,
            snapshots=snapshots,
            demand_units=demand_units,
            buyers=buyers,
            seller_contexts=self.seller_contexts(buyers),
        )

    def seller_contexts(
        self, buyers: Mapping[int, int]
    ) -> tuple[SellerContext, ...]:
        """The public per-seller bidding contexts for a buyer set.

        Sellers are enumerated in ascending id order — the canonical
        order every bid-collection path (synchronous policy loop and
        distributed orchestrator alike) must preserve so that clearing
        is deterministic.
        """
        contexts: list[SellerContext] = []
        for sid, service in sorted(self._services.items()):
            if sid in buyers:
                continue  # a needy microservice does not sell this round
            if not service.is_potential_seller:
                continue
            local_buyers = sorted(
                b for b in buyers if b in self.clouds[service.cloud]
            )
            if not local_buyers:
                continue
            remaining = service.remaining_share_capacity
            max_units = int(min(
                service.spare,
                remaining if remaining is not None else service.spare,
            ))
            contexts.append(
                SellerContext(
                    seller_id=sid,
                    local_buyers=tuple(local_buyers),
                    max_units=max_units,
                )
            )
        return tuple(contexts)

    def collect_bids(self, context: RoundContext) -> list[Bid]:
        """Ask the configured bidding policy for every seller's bids."""
        bids: list[Bid] = []
        for sc in context.seller_contexts:
            bids.extend(
                self.bidding_policy.make_bids(
                    sc.seller_id, list(sc.local_buyers), sc.max_units, self.rng
                )
            )
        return bids

    def complete_round(
        self, context: RoundContext, bids: Sequence[Bid]
    ) -> PlatformRoundReport:
        """Clear a round's collected bids and apply the winning transfers.

        Runs the configured mechanism on the admissible bids, moves the
        won resources between microservices, books the money flows, and
        appends (and returns) the round's report.  This is the single
        clearing path shared by the synchronous loop and the distributed
        orchestrator — which is what makes the two bit-identical on the
        same collected bids.
        """
        auction_result, transfers = self._run_auction(context.buyers, bids)
        report = PlatformRoundReport(
            round_index=context.round_index,
            snapshots=context.snapshots,
            demand_units=context.demand_units,
            auction=auction_result,
            transfers=transfers,
        )
        self.reports.append(report)
        return report

    @profiled("platform.round")
    def run_round(self) -> PlatformRoundReport:
        """Advance one full round synchronously; return what happened."""
        with _OBS.tracer.span(
            "platform.round", round_index=len(self.reports)
        ) as round_span:
            context = self.begin_round()
            bids = self.collect_bids(context)
            report = self.complete_round(context, bids)
            _OBS.tracer.annotate(
                round_span,
                social_cost=report.social_cost,
                transfers=len(report.transfers),
                demand_units=sum(context.demand_units.values()),
            )
            return report

    def run(self, rounds: int | None = None) -> list[PlatformRoundReport]:
        """Run the configured horizon (or ``rounds``) and return reports."""
        n = rounds if rounds is not None else self.horizon_rounds
        return [self.run_round() for _ in range(n)]

    # ------------------------------------------------------------------
    # auction round
    # ------------------------------------------------------------------
    @profiled("platform.auction")
    def _run_auction(
        self, buyers: Mapping[int, int], bids: Sequence[Bid]
    ) -> tuple[RoundResult | None, tuple[tuple[int, frozenset[int]], ...]]:
        if not buyers:
            return None, ()
        # The ceiling is a public reserve price: asks above it are not
        # admissible.  (Without this admission rule a pivotal over-asker
        # would be paid its ceiling-capped critical value, below its ask.)
        bids = [
            bid for bid in bids if bid.price <= self.config.price_ceiling
        ]
        instance = WSPInstance.from_bids(
            bids, buyers, price_ceiling=self.config.price_ceiling
        )
        result = self.auction.process_round(instance)
        transfers: list[tuple[int, frozenset[int]]] = []
        units_received: dict[int, int] = {}
        for winner in result.outcome.winners:
            seller_id = winner.bid.seller
            covered = winner.bid.covered
            service = self._services[seller_id]
            cloud = self.clouds[service.cloud]
            cloud.transfer(seller_id, covered, per_buyer=1.0)
            service.record_shared(len(covered))
            self._servers[seller_id].set_allocation(
                max(service.allocation, 1e-6), self._engine.now
            )
            for buyer in covered:
                buyer_service = self._services[buyer]
                self._servers[buyer].set_allocation(
                    max(buyer_service.allocation, 1e-6), self._engine.now
                )
                units_received[buyer] = units_received.get(buyer, 0) + 1
            transfers.append((seller_id, covered))
        self.ledger.record_round(result, units_received)
        return result, tuple(transfers)

    # ------------------------------------------------------------------
    # summary views
    # ------------------------------------------------------------------
    @property
    def total_social_cost(self) -> float:
        """Social cost accumulated over all rounds so far."""
        return sum(report.social_cost for report in self.reports)

    def finalize(self):
        """Finalize the underlying online auction (competitive-ratio view)."""
        return self.auction.finalize()
