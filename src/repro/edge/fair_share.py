"""Max–min fair sharing of an edge cloud's resources.

Section II: "the edge platform circulates all the available resources to
microservices present in the edge cloud following a fair sharing policy".
We implement weighted max–min fairness (progressive filling): capacity is
distributed so that no microservice can receive more without taking from
one that already has less per unit weight, and nobody receives more than
its demand.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ConfigurationError

__all__ = ["max_min_fair_share"]


def max_min_fair_share(
    capacity: float,
    demands: Mapping[int, float],
    weights: Mapping[int, float] | None = None,
) -> dict[int, float]:
    """Allocate ``capacity`` across claimants by weighted max–min fairness.

    Parameters
    ----------
    capacity:
        Total divisible resource available.
    demands:
        Each claimant's maximum useful allocation; allocations never
        exceed demand.
    weights:
        Optional positive fair-share weights (default: equal).

    Returns
    -------
    dict
        Allocation per claimant.  Sums to ``min(capacity, Σ demands)``
        up to floating-point rounding.

    Notes
    -----
    Runs the classic water-filling loop: repeatedly split the remaining
    capacity in proportion to weights among unsatisfied claimants, freeze
    anyone whose demand is met, and redistribute the surplus.  Terminates
    in at most ``len(demands)`` passes.
    """
    if capacity < 0:
        raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
    for claimant, demand in demands.items():
        if demand < 0:
            raise ConfigurationError(
                f"claimant {claimant} has negative demand {demand}"
            )
    if weights is not None:
        for claimant, weight in weights.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"claimant {claimant} has non-positive weight {weight}"
                )

    allocation = {claimant: 0.0 for claimant in demands}
    unsatisfied = {c for c, d in demands.items() if d > 0}
    remaining = capacity
    while unsatisfied and remaining > 1e-12:
        total_weight = sum(
            (weights or {}).get(c, 1.0) for c in unsatisfied
        )
        # Give each unsatisfied claimant its weighted share of what's left,
        # capped by its residual demand; freeze the ones that fill up.
        filled: set[int] = set()
        distributed = 0.0
        for claimant in unsatisfied:
            weight = (weights or {}).get(claimant, 1.0)
            share = remaining * weight / total_weight
            residual = demands[claimant] - allocation[claimant]
            grant = min(share, residual)
            allocation[claimant] += grant
            distributed += grant
            if allocation[claimant] >= demands[claimant] - 1e-12:
                filled.add(claimant)
        remaining -= distributed
        if not filled:
            break  # everyone took a full share: capacity exhausted
        unsatisfied -= filled
    return allocation
