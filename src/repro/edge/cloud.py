"""The edge cloud: a small, capacity-constrained server cluster.

Each edge cloud is co-located with a base station (Section V uses 10 macro
base stations, each with one computing server), hosts a set of
microservices, and applies the fair-sharing policy of Section II when
(re)distributing its capacity.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.edge.fair_share import max_min_fair_share
from repro.edge.microservice import Microservice
from repro.errors import ConfigurationError

__all__ = ["EdgeCloud"]


class EdgeCloud:
    """A resource-constrained edge site hosting microservices.

    Parameters
    ----------
    cloud_id:
        Identifier (also used as a node key in the backhaul network).
    capacity:
        Total scalar resource units available at this site.
    """

    def __init__(self, cloud_id: int, capacity: float) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"edge cloud {cloud_id} capacity must be positive, got {capacity}"
            )
        self.cloud_id = cloud_id
        self.capacity = capacity
        self._services: dict[int, Microservice] = {}

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    @property
    def services(self) -> tuple[Microservice, ...]:
        """Hosted microservices, sorted by id for determinism."""
        return tuple(self._services[k] for k in sorted(self._services))

    @property
    def allocated(self) -> float:
        """Resource units currently held by hosted microservices."""
        return sum(s.allocation for s in self._services.values())

    @property
    def free_capacity(self) -> float:
        """Unallocated resource units at this site."""
        return max(0.0, self.capacity - self.allocated)

    def host(self, service: Microservice) -> None:
        """Place a microservice on this cloud."""
        if service.service_id in self._services:
            raise ConfigurationError(
                f"microservice {service.service_id} already hosted on cloud "
                f"{self.cloud_id}"
            )
        service.cloud = self.cloud_id
        self._services[service.service_id] = service

    def evict(self, service_id: int) -> Microservice:
        """Remove and return a hosted microservice."""
        if service_id not in self._services:
            raise ConfigurationError(
                f"microservice {service_id} is not hosted on cloud {self.cloud_id}"
            )
        return self._services.pop(service_id)

    def get(self, service_id: int) -> Microservice:
        """Look up a hosted microservice by id."""
        try:
            return self._services[service_id]
        except KeyError:
            raise ConfigurationError(
                f"microservice {service_id} is not hosted on cloud {self.cloud_id}"
            ) from None

    def __contains__(self, service_id: int) -> bool:
        return service_id in self._services

    def __len__(self) -> int:
        return len(self._services)

    # ------------------------------------------------------------------
    # fair sharing (Section II's baseline allocation policy)
    # ------------------------------------------------------------------
    def apply_fair_share(
        self, demands: dict[int, float] | None = None
    ) -> dict[int, float]:
        """Redistribute the full capacity by weighted max–min fairness.

        ``demands`` caps each microservice's allocation (default: its
        ``base_demand`` doubled, a generous ask); delay-sensitive services
        receive double fair-share weight, implementing the paper's
        "higher priority is given to delay-sensitive microservices".
        Returns the new allocation map and mutates the hosted services.
        """
        if not self._services:
            return {}
        asks = demands or {
            sid: max(s.base_demand * 2.0, 1e-9)
            for sid, s in self._services.items()
        }
        unknown = set(asks) - set(self._services)
        if unknown:
            raise ConfigurationError(
                f"fair-share demands name non-hosted services {sorted(unknown)}"
            )
        weights = {
            sid: 2.0 if s.delay_class.priority == 0 else 1.0
            for sid, s in self._services.items()
            if sid in asks
        }
        allocation = max_min_fair_share(self.capacity, asks, weights)
        for sid, amount in allocation.items():
            self._services[sid].allocation = amount
        return allocation

    # ------------------------------------------------------------------
    # auction hookup
    # ------------------------------------------------------------------
    def transfer(self, seller_id: int, buyer_ids: Iterable[int], per_buyer: float = 1.0) -> None:
        """Move resources from a winning seller to the covered buyers.

        Implements the reclaim-and-reallocate step of Figure 1: the seller
        yields ``per_buyer`` units for each covered buyer hosted here; the
        platform hands them to those buyers.
        """
        seller = self.get(seller_id)
        local_buyers = [b for b in buyer_ids if b in self._services]
        total = per_buyer * len(local_buyers)
        seller.reclaim(total)
        for buyer_id in local_buyers:
            self._services[buyer_id].grant(per_buyer)
