"""repro — a reproduction of "Incentivizing Microservices for Online
Resource Sharing in Edge Clouds" (Samanta, Jiao, Mühlhäuser, Wang —
IEEE ICDCS 2019).

The package implements the paper's truthful auction mechanisms plus every
substrate they depend on:

* :mod:`repro.core` — SSAM (the single-stage greedy primal–dual auction
  with critical payments) and MSOA (the capacity-aware online framework),
  with dual-fitting certificates and the Theorem-3/7 bounds.
* :mod:`repro.demand` — the Section-III demand estimator (three
  indicators blended with AHP-derived weights).
* :mod:`repro.edge` + :mod:`repro.sim` — the edge-cloud substrate: a
  discrete-event request simulator, fair sharing, microservices, users,
  backhaul network, and the platform loop of Figure 2.
* :mod:`repro.solvers` — exact MILP / branch-and-bound / LP-relaxation
  solvers providing the optimum denominators of the evaluation.
* :mod:`repro.baselines` — posted-price, random, pay-as-bid, VCG, and the
  clairvoyant offline optimum.
* :mod:`repro.workload` / :mod:`repro.experiments` — the Section-V.A
  parameter settings and the sweeps regenerating Figures 3–6.

Quickstart
----------
>>> import numpy as np
>>> from repro import MarketConfig, generate_round, run_ssam
>>> instance = generate_round(MarketConfig(), np.random.default_rng(7))
>>> outcome = run_ssam(instance)
>>> outcome.social_cost >= 0 and outcome.total_payment >= outcome.social_cost
True
"""

from repro.core import (
    AuctionOutcome,
    Bid,
    BidderProfile,
    HorizonScenario,
    MultiStageOnlineAuction,
    OnlineOutcome,
    PaymentRule,
    WSPInstance,
    run_msoa,
    run_ssam,
)
from repro.demand import DemandEstimator, DemandWeights
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    InfeasibleInstanceError,
    MechanismError,
    ReproError,
    SimulationError,
    SolverError,
)
from repro.solvers import solve_horizon_optimal, solve_wsp_optimal
from repro.workload import MarketConfig, generate_horizon, generate_round

__version__ = "1.0.0"

__all__ = [
    "AuctionOutcome",
    "Bid",
    "BidderProfile",
    "HorizonScenario",
    "MultiStageOnlineAuction",
    "OnlineOutcome",
    "PaymentRule",
    "WSPInstance",
    "run_msoa",
    "run_ssam",
    "DemandEstimator",
    "DemandWeights",
    "CapacityExceededError",
    "ConfigurationError",
    "InfeasibleInstanceError",
    "MechanismError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "solve_horizon_optimal",
    "solve_wsp_optimal",
    "MarketConfig",
    "generate_horizon",
    "generate_round",
    "__version__",
]
