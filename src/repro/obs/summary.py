"""Trace analysis: rebuild auction economics from a trace alone.

:func:`summarize` reads a ``repro.obs.trace`` JSONL stream (path or
already-loaded records) and reconstructs, without touching any outcome
object, exactly what the paper's evaluation plots per round: social cost
(Σ winning original prices, in selection order), total payment, and the
per-buyer coverage.  The reconstruction is cross-checkable against the
live result — the golden-trace regression suite asserts
``summarize(trace).social_cost == outcome.social_cost`` *bit-for-bit*
for both engines, which pins the trace schema to the mechanism's actual
accounting.

The reader is strict: sequence numbers must increase, spans must nest,
and any summary fields recorded on a ``span_end`` must agree with the
event-level reconstruction.  A trace that fails these checks raises
:class:`~repro.errors.ObservabilityError` — a mismatch means the
instrumentation (or the mechanism) regressed, and hiding it would defeat
the point of the layer.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs.tracer import read_trace

__all__ = ["AuctionSummary", "RoundSummary", "TraceSummary", "summarize"]


@dataclass
class _SpanNode:
    """One span while the tree is being rebuilt."""

    span_id: int
    parent: int
    name: str
    fields: dict
    events: list[dict] = field(default_factory=list)
    children: list["_SpanNode"] = field(default_factory=list)
    status: str | None = None
    end_fields: dict = field(default_factory=dict)
    duration_s: float = 0.0


@dataclass(frozen=True)
class AuctionSummary:
    """One single-stage auction reconstructed from its span."""

    span_id: int
    mechanism: str
    engine: str | None
    social_cost: float
    total_payment: float
    winners: tuple[dict, ...]
    coverage: dict[int, int]
    demand: dict[int, int]
    iterations: int

    @property
    def satisfied(self) -> bool:
        """Whether reconstructed coverage meets every buyer's demand."""
        return all(
            self.coverage.get(buyer, 0) >= units
            for buyer, units in self.demand.items()
        )


@dataclass(frozen=True)
class RoundSummary:
    """One MSOA round: its index and the round's effective auction."""

    span_id: int
    round_index: int
    auctions: tuple[AuctionSummary, ...]
    social_cost: float
    total_payment: float


@dataclass(frozen=True)
class TraceSummary:
    """Everything :func:`summarize` can rebuild from one trace."""

    schema_version: int
    auctions: tuple[AuctionSummary, ...]
    rounds: tuple[RoundSummary, ...]
    span_count: int
    truncated: bool

    @property
    def social_cost(self) -> float:
        """Total social cost: Σ per-round costs + Σ standalone auctions.

        Summation mirrors the outcome objects' own associativity —
        per-round sums first, then the horizon sum — so the result is
        bit-for-bit comparable with ``OnlineOutcome.social_cost`` (and
        with ``AuctionOutcome.social_cost`` for a single-auction trace).
        """
        return float(
            sum(r.social_cost for r in self.rounds)
            + sum(a.social_cost for a in self.auctions)
        )

    @property
    def total_payment(self) -> float:
        """Total payments across rounds and standalone auctions."""
        return float(
            sum(r.total_payment for r in self.rounds)
            + sum(a.total_payment for a in self.auctions)
        )


def summarize(source: str | pathlib.Path | list[dict]) -> TraceSummary:
    """Reconstruct per-round economics from a trace (path or records)."""
    records = (
        source if isinstance(source, list) else read_trace(source)
    )
    if not records or records[0].get("kind") != "header":
        raise ObservabilityError("trace does not start with a header record")
    version = int(records[0].get("version", -1))
    roots, span_count, truncated = _build_tree(records[1:])
    rounds: list[RoundSummary] = []
    standalone: list[AuctionSummary] = []
    for node in _walk(roots):
        if node.name == "msoa.round":
            rounds.append(_summarize_round(node))
        elif node.name == "auction" and not _inside_round(node, roots):
            if node.status == "ok":
                standalone.append(_summarize_auction(node))
    rounds.sort(key=lambda r: r.round_index)
    _check_round_monotonicity(rounds)
    return TraceSummary(
        schema_version=version,
        auctions=tuple(standalone),
        rounds=tuple(rounds),
        span_count=span_count,
        truncated=truncated,
    )


# ----------------------------------------------------------------------
# tree construction and validation
# ----------------------------------------------------------------------
def _build_tree(records: list[dict]) -> tuple[list[_SpanNode], int, bool]:
    roots: list[_SpanNode] = []
    open_stack: list[_SpanNode] = []
    by_id: dict[int, _SpanNode] = {}
    last_seq = 0
    saw_footer = False
    for record in records:
        kind = record.get("kind")
        seq = record.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            raise ObservabilityError(
                f"trace sequence numbers must increase (got {seq!r} after "
                f"{last_seq})"
            )
        last_seq = seq
        if kind == "span_start":
            node = _SpanNode(
                span_id=int(record["id"]),
                parent=int(record.get("parent", 0)),
                name=str(record["name"]),
                fields=dict(record.get("fields", {})),
            )
            expected_parent = open_stack[-1].span_id if open_stack else 0
            if node.parent != expected_parent:
                raise ObservabilityError(
                    f"span {node.span_id} ({node.name!r}) declares parent "
                    f"{node.parent} but span {expected_parent} is open"
                )
            if open_stack:
                open_stack[-1].children.append(node)
            else:
                roots.append(node)
            by_id[node.span_id] = node
            open_stack.append(node)
        elif kind == "span_end":
            span_id = int(record["id"])
            if not open_stack or open_stack[-1].span_id != span_id:
                raise ObservabilityError(
                    f"span_end for {span_id} does not match the innermost "
                    "open span (improper nesting)"
                )
            node = open_stack.pop()
            node.status = str(record.get("status", "ok"))
            node.end_fields = dict(record.get("fields", {}))
            node.duration_s = float(record.get("duration_s", 0.0))
        elif kind == "event":
            target = by_id.get(int(record.get("span", 0)))
            if target is not None:
                target.events.append(record)
        elif kind == "footer":
            saw_footer = True
        else:
            raise ObservabilityError(f"unknown trace record kind {kind!r}")
    # A crashed process can leave spans open and the footer missing; the
    # summary flags it instead of failing, so partial traces stay usable.
    truncated = bool(open_stack) or not saw_footer
    return roots, len(by_id), truncated


def _walk(roots: list[_SpanNode]):
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def _inside_round(node: _SpanNode, roots: list[_SpanNode]) -> bool:
    parents = {}
    for root in roots:
        for parent in _walk([root]):
            for child in parent.children:
                parents[child.span_id] = parent
    current = parents.get(node.span_id)
    while current is not None:
        if current.name == "msoa.round":
            return True
        current = parents.get(current.span_id)
    return False


def _check_round_monotonicity(rounds: list[RoundSummary]) -> None:
    indices = [r.round_index for r in rounds]
    if indices != sorted(set(indices)):
        raise ObservabilityError(
            f"round indices are not strictly increasing: {indices}"
        )


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _summarize_auction(node: _SpanNode) -> AuctionSummary:
    winners = tuple(
        dict(event.get("fields", {}))
        for event in node.events
        if event.get("name") == "winner"
    )
    # Selection order is event order; summing in it reproduces the
    # outcome object's own left fold exactly.
    social_cost = float(sum(w["original_price"] for w in winners))
    total_payment = float(sum(w["payment"] for w in winners))
    demand = {
        int(buyer): int(units)
        for buyer, units in node.fields.get("demand", {}).items()
    }
    coverage = {buyer: 0 for buyer in demand}
    for winner in winners:
        for buyer in winner.get("covered", ()):
            if buyer in coverage:
                coverage[buyer] += 1
    recorded = node.end_fields.get("social_cost")
    if recorded is not None and recorded != social_cost:
        raise ObservabilityError(
            f"span {node.span_id}: recorded social cost {recorded!r} "
            f"disagrees with the winner-event reconstruction {social_cost!r}"
        )
    recorded_payment = node.end_fields.get("total_payment")
    if recorded_payment is not None and recorded_payment != total_payment:
        raise ObservabilityError(
            f"span {node.span_id}: recorded total payment "
            f"{recorded_payment!r} disagrees with the reconstruction "
            f"{total_payment!r}"
        )
    return AuctionSummary(
        span_id=node.span_id,
        mechanism=str(node.fields.get("mechanism", "unknown")),
        engine=node.fields.get("engine"),
        social_cost=social_cost,
        total_payment=total_payment,
        winners=winners,
        coverage=coverage,
        demand=demand,
        iterations=int(node.end_fields.get("iterations", len(winners))),
    )


def _summarize_round(node: _SpanNode) -> RoundSummary:
    auctions = tuple(
        _summarize_auction(child)
        for child in node.children
        if child.name == "auction" and child.status == "ok"
    )
    # Infeasible attempts (status "error") precede the round's effective
    # auction; the last completed one is what the round committed to.
    effective = auctions[-1] if auctions else None
    return RoundSummary(
        span_id=node.span_id,
        round_index=int(node.fields.get("round_index", -1)),
        auctions=auctions,
        social_cost=effective.social_cost if effective else 0.0,
        total_payment=effective.total_payment if effective else 0.0,
    )
