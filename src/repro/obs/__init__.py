"""``repro.obs`` — auction observability: tracing, metrics, profiling.

Zero-overhead-when-disabled instrumentation for the auction engines.
Three pieces:

* :class:`Tracer` — structured, versioned JSONL span/event stream
  (auction → round → phase), readable offline with :func:`read_trace`
  and :func:`summarize`.
* :class:`MetricsRegistry` — counters/gauges/histograms with JSON and
  Prometheus text exporters.
* :func:`profiled` — wall-time hooks on the hot paths
  (selection, payments, MSOA rounds, platform rounds).

Everything is off by default; :func:`configure` / :func:`observing`
flip one process-wide switch.  :func:`summarize` rebuilds per-round
social cost and coverage from a trace alone, bit-for-bit equal to the
live ``AuctionOutcome`` — the golden-trace suite enforces this.
"""

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.obs.profiler import profiled
from repro.obs.runtime import (
    ObservabilityConfig,
    activate,
    configure,
    disable,
    get_metrics,
    get_tracer,
    is_enabled,
    observing,
)
from repro.obs.summary import (
    AuctionSummary,
    RoundSummary,
    TraceSummary,
    summarize,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    iter_spans,
    read_trace,
)

__all__ = [
    # runtime switch
    "ObservabilityConfig",
    "configure",
    "activate",
    "disable",
    "observing",
    "is_enabled",
    "get_tracer",
    "get_metrics",
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
    "iter_spans",
    # metrics
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    # profiling
    "profiled",
    # analysis
    "summarize",
    "TraceSummary",
    "RoundSummary",
    "AuctionSummary",
]
