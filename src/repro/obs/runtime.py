"""Global observability state: one switch, two null objects.

The instrumented hot paths (:mod:`repro.core.ssam`,
:mod:`repro.core.engine`, :mod:`repro.core.msoa`,
:mod:`repro.edge.platform`, :mod:`repro.experiments.runner`) all read the
module-level :data:`STATE` singleton.  While observability is disabled —
the default — ``STATE.enabled`` is ``False``, ``STATE.tracer`` is the
shared :data:`~repro.obs.tracer.NULL_TRACER` and ``STATE.metrics`` the
shared :data:`~repro.obs.metrics.NULL_METRICS`, so the total disabled-path
cost is one attribute load and a branch (or a no-op method call).  No
file is ever touched and no record is ever built.

:func:`configure` flips the switch for the whole process; prefer the
:func:`observing` context manager in tests and library code so the state
is always restored.  The tier-1 suite asserts the default is disabled
(``tests/obs/test_disabled_by_default.py``) and the engine bench numbers
are recorded with the switch off.
"""

from __future__ import annotations

import contextlib
import pathlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "ObservabilityConfig",
    "STATE",
    "configure",
    "activate",
    "disable",
    "observing",
    "is_enabled",
    "get_tracer",
    "get_metrics",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Declarative switch carried by :class:`ExperimentConfig`.

    Attributes
    ----------
    trace_path:
        Where the JSONL span/event trace goes; ``None`` disables tracing
        (metrics can still be collected).
    metrics_path:
        Where the metrics-registry JSON snapshot is written when the
        session is disabled/finalized; ``None`` keeps metrics in memory
        only (read them via :func:`get_metrics`).
    trace_max_records:
        Roll the trace file to ``<name>.1`` whenever a segment reaches
        this many records (``None`` = unbounded; see
        :class:`~repro.obs.tracer.Tracer`) — the bounded-disk mode for
        long-lived serving.
    trace_sample_every:
        Keep only every k-th top-level span tree (``None``/1 = keep
        all) — the bounded-volume sampling mode.
    """

    trace_path: str | None = None
    metrics_path: str | None = None
    trace_max_records: int | None = None
    trace_sample_every: int | None = None


class _ObservabilityState:
    """The mutable singleton the hot paths read (see module docstring)."""

    __slots__ = ("enabled", "tracer", "metrics", "config")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.config: ObservabilityConfig | None = None


STATE = _ObservabilityState()
"""Process-wide observability state; disabled until :func:`configure`."""


def configure(
    *,
    trace: str | pathlib.Path | None = None,
    metrics: str | pathlib.Path | None = None,
    trace_max_records: int | None = None,
    trace_sample_every: int | None = None,
) -> ObservabilityConfig:
    """Enable observability for the process and return the active config.

    ``trace`` opens a :class:`~repro.obs.tracer.Tracer` on that path
    (failing fast with :class:`~repro.errors.ConfigurationError` if the
    path cannot be opened); ``metrics`` is where :func:`disable` will
    write the registry snapshot.  A fresh
    :class:`~repro.obs.metrics.MetricsRegistry` is installed either way,
    so counters always start from zero for the session.

    ``trace_max_records``/``trace_sample_every`` opt the tracer into its
    bounded rolling/sampling modes (for long-lived serving sessions);
    both default to the classic unbounded behaviour.

    Any previously active session is finalized first (its trace closed,
    its metrics flushed), so re-configuring is always safe.
    """
    if STATE.enabled:
        disable()
    config = ObservabilityConfig(
        trace_path=str(trace) if trace is not None else None,
        metrics_path=str(metrics) if metrics is not None else None,
        trace_max_records=trace_max_records,
        trace_sample_every=trace_sample_every,
    )
    tracer = (
        Tracer(
            config.trace_path,
            max_records=config.trace_max_records,
            sample_every=config.trace_sample_every,
        )
        if config.trace_path
        else NULL_TRACER
    )
    STATE.tracer = tracer
    STATE.metrics = MetricsRegistry()
    STATE.config = config
    STATE.enabled = True
    return config


def activate(config: ObservabilityConfig | None) -> None:
    """Idempotently apply an :class:`ObservabilityConfig`.

    ``None`` is a no-op (the experiment carries no observability request);
    a config equal to the one already active is a no-op too, so sweep
    loops can call this once per mechanism run without re-opening the
    trace file.  This is how ``ExperimentConfig.observability`` is
    threaded through :func:`repro.experiments.runner.run_configured_mechanism`.
    """
    if config is None:
        return
    if STATE.enabled and STATE.config == config:
        return
    configure(
        trace=config.trace_path,
        metrics=config.metrics_path,
        trace_max_records=config.trace_max_records,
        trace_sample_every=config.trace_sample_every,
    )


def disable() -> MetricsRegistry | None:
    """Finalize the active session and restore the disabled defaults.

    Closes the trace stream (writing its footer), writes the metrics
    snapshot to the configured ``metrics_path`` (if any), and returns the
    session's registry so callers can inspect the final numbers.  A no-op
    returning ``None`` when observability was already disabled.
    """
    if not STATE.enabled:
        return None
    registry = STATE.metrics
    config = STATE.config
    STATE.enabled = False
    STATE.tracer.close()
    STATE.tracer = NULL_TRACER
    STATE.metrics = NULL_METRICS
    STATE.config = None
    if (
        config is not None
        and config.metrics_path
        and isinstance(registry, MetricsRegistry)
    ):
        registry.write_json(config.metrics_path)
    return registry if isinstance(registry, MetricsRegistry) else None


@contextlib.contextmanager
def observing(
    *,
    trace: str | pathlib.Path | None = None,
    metrics: str | pathlib.Path | None = None,
    trace_max_records: int | None = None,
    trace_sample_every: int | None = None,
) -> Iterator[MetricsRegistry]:
    """Scoped observability: enable on entry, finalize on exit.

    Yields the session's :class:`~repro.obs.metrics.MetricsRegistry` so
    the caller can assert on counters before the block ends::

        with observing(trace="run.jsonl") as metrics:
            run_ssam(instance)
            assert metrics.counter("ssam.runs").value == 1
    """
    configure(
        trace=trace,
        metrics=metrics,
        trace_max_records=trace_max_records,
        trace_sample_every=trace_sample_every,
    )
    registry = STATE.metrics
    assert isinstance(registry, MetricsRegistry)
    try:
        yield registry
    finally:
        disable()


def is_enabled() -> bool:
    """Whether observability is currently collecting anything."""
    return STATE.enabled


def get_tracer():
    """The active tracer (the null tracer while disabled)."""
    return STATE.tracer


def get_metrics():
    """The active metrics registry (the null registry while disabled)."""
    return STATE.metrics


def _reset_for_tests() -> None:
    """Hard-reset to the disabled defaults without flushing (test hook)."""
    with contextlib.suppress(Exception):
        STATE.tracer.close()
    STATE.enabled = False
    STATE.tracer = NULL_TRACER
    STATE.metrics = NULL_METRICS
    STATE.config = None
