"""``@profiled`` — opt-in wall-time hooks for the auction hot paths.

The decorator times each call of the wrapped function into the active
metrics registry's ``phase.<name>.seconds`` histogram (and counts calls
in ``phase.<name>.calls``).  While observability is disabled the wrapper
is a single attribute load and branch around the original call — no
timer is started, no record is built — so decorating a hot path does not
perturb the engine benchmarks.

Timings survive exceptions: a phase that raises is still observed (its
failure is also visible as an ``error``-status span when the caller holds
one open), so infeasibility escalations don't leave timing holes.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable
from typing import TypeVar

from repro.obs.runtime import STATE

__all__ = ["profiled"]

_F = TypeVar("_F", bound=Callable)


def profiled(phase: str) -> Callable[[_F], _F]:
    """Decorator: record the call's wall time under phase ``phase``.

    >>> @profiled("ssam.selection")
    ... def select(...): ...

    The phase name lands in the registry as ``phase.ssam.selection.seconds``
    (histogram) and ``phase.ssam.selection.calls`` (counter).
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            metrics = STATE.metrics
            metrics.counter(f"phase.{phase}.calls").inc()
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                metrics.observe_phase(phase, time.perf_counter() - start)

        wrapper.__profiled_phase__ = phase  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
