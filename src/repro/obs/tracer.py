"""Structured, versioned auction tracing (JSONL spans and events).

A :class:`Tracer` writes one JSON object per line to a trace file.  The
stream is self-describing: the first record is a header carrying the
schema name and version, every subsequent record carries a monotone
``seq`` number (deterministic ordering without relying on wall clocks),
and a footer closes the stream.

Record kinds::

    {"kind": "header", "schema": "repro.obs.trace", "version": 1}
    {"kind": "span_start", "seq": n, "id": s, "parent": p, "name": ..., "fields": {...}}
    {"kind": "event",      "seq": n, "span": s, "name": ..., "fields": {...}}
    {"kind": "span_end",   "seq": n, "id": s, "name": ..., "status": "ok"|"error",
     "duration_s": ..., "fields": {...}}
    {"kind": "footer", "seq": n, "spans": total}

Spans nest (auction → round → phase) through an explicit stack, so a
trace reader can rebuild the tree from ``parent`` pointers alone; events
attach to the innermost open span.  Exceptions unwind spans with
``status: "error"`` — a truncated phase is visible in the trace instead
of silently absent.

Long-lived serving (:mod:`repro.dist`) must not grow the trace without
bound, so the writer has two opt-in bounded modes, composable and both
deciding only at *top-level span boundaries* (so every kept span tree is
complete and every written segment is a valid standalone trace):

* ``sample_every=k`` keeps every k-th top-level span tree (the first,
  the k+1-th, ...) and drops the rest entirely — suppressed records get
  no ``seq`` numbers, so the stream's sequence stays gap-free;
* ``max_records=n`` rolls the file once a segment reaches ``n`` records:
  the current segment is closed with a footer (marked ``"rolled"``),
  renamed to ``<name>.1`` (replacing the previous rollover), and a fresh
  header opens the next segment — disk usage is bounded by roughly two
  segments.

:data:`NULL_TRACER` is the disabled-path null object: ``span`` returns a
shared re-entrant no-op context manager and ``event`` does nothing, so
instrumented code is branch-free.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections.abc import Iterator, Mapping

from repro.errors import ConfigurationError, ObservabilityError

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_trace",
]

TRACE_SCHEMA = "repro.obs.trace"
"""Schema identifier written into every trace header."""

TRACE_SCHEMA_VERSION = 1
"""Bump on breaking changes to the record layout."""


class _Span:
    """Context manager for one span; re-used objects are not supported."""

    __slots__ = ("_tracer", "name", "span_id", "_start", "end_fields")

    def __init__(self, tracer: "Tracer", name: str, fields: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._open_span(name, fields)
        self._start = 0.0
        self.end_fields: dict | None = None

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close_span(
            self,
            duration=time.perf_counter() - self._start,
            status="ok" if exc_type is None else "error",
        )


class Tracer:
    """JSONL span/event writer bound to one output file.

    ``max_records`` and ``sample_every`` are the bounded-memory modes for
    long-lived serving; see the module docstring.  Both default to off,
    which preserves the classic write-everything behaviour exactly.
    """

    enabled = True

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        max_records: int | None = None,
        sample_every: int | None = None,
    ) -> None:
        if max_records is not None and max_records < 2:
            raise ConfigurationError(
                f"max_records must be at least 2, got {max_records}"
            )
        if sample_every is not None and sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be at least 1, got {sample_every}"
            )
        self.path = pathlib.Path(path)
        self.max_records = max_records
        self.sample_every = sample_every
        try:
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(
                f"cannot open trace file {self.path}: {error}"
            ) from error
        self._seq = 0
        self._next_span_id = 1
        self._stack: list[int] = []
        self._spans_seen = 0
        self._closed = False
        self._segment = 0
        self._segment_records = 0
        self._toplevel_seen = 0
        self._suppress_depth = 0
        self._write(self._header())

    def _header(self) -> dict:
        record = {
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_SCHEMA_VERSION,
            "created_unix": time.time(),
        }
        if self._segment:
            record["segment"] = self._segment
        return record

    # ------------------------------------------------------------------
    # the public surface instrumented code calls
    # ------------------------------------------------------------------
    def span(self, name: str, **fields) -> _Span:
        """Open a nested span; use as ``with tracer.span("greedy"): ...``."""
        return _Span(self, name, fields)

    def event(self, name: str, **fields) -> None:
        """Emit one event attached to the innermost open span (0 if none)."""
        if self._suppress_depth:
            return  # inside a sampled-out span tree
        self._seq += 1
        self._write(
            {
                "kind": "event",
                "seq": self._seq,
                "span": self._stack[-1] if self._stack else 0,
                "name": name,
                "fields": fields,
            }
        )

    def close(self) -> None:
        """Write the footer and release the file handle (idempotent)."""
        if self._closed:
            return
        self._seq += 1
        self._write(
            {"kind": "footer", "seq": self._seq, "spans": self._spans_seen}
        )
        self._closed = True
        self._handle.close()

    # ------------------------------------------------------------------
    # span bookkeeping
    # ------------------------------------------------------------------
    def _open_span(self, name: str, fields: dict) -> int | None:
        if self._suppress_depth:
            self._suppress_depth += 1
            return None
        if (
            self.sample_every is not None
            and self.sample_every > 1
            and not self._stack
        ):
            keep = self._toplevel_seen % self.sample_every == 0
            self._toplevel_seen += 1
            if not keep:
                self._suppress_depth = 1
                return None
        span_id = self._next_span_id
        self._next_span_id += 1
        self._seq += 1
        self._spans_seen += 1
        self._write(
            {
                "kind": "span_start",
                "seq": self._seq,
                "id": span_id,
                "parent": self._stack[-1] if self._stack else 0,
                "name": name,
                "fields": fields,
            }
        )
        self._stack.append(span_id)
        return span_id

    def _close_span(self, span: _Span, *, duration: float, status: str) -> None:
        if span.span_id is None:
            self._suppress_depth = max(0, self._suppress_depth - 1)
            return
        # Unwind to the span being closed: an exception that skipped inner
        # __exit__ calls must not leave phantom open spans on the stack.
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._seq += 1
        self._write(
            {
                "kind": "span_end",
                "seq": self._seq,
                "id": span.span_id,
                "name": span.name,
                "status": status,
                "duration_s": duration,
                "fields": span.end_fields or {},
            }
        )
        if (
            self.max_records is not None
            and not self._stack
            and self._segment_records >= self.max_records
        ):
            self._rotate()

    def _rotate(self) -> None:
        """Close the current segment and start a fresh one in its place."""
        self._seq += 1
        self._write(
            {
                "kind": "footer",
                "seq": self._seq,
                "spans": self._spans_seen,
                "rolled": True,
            }
        )
        self._handle.close()
        previous = self.path.with_name(self.path.name + ".1")
        try:
            self.path.replace(previous)
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(
                f"cannot roll trace file {self.path}: {error}"
            ) from error
        self._segment += 1
        self._seq = 0
        self._spans_seen = 0
        self._segment_records = 0
        self._write(self._header())

    def annotate(self, span: _Span, **fields) -> None:
        """Attach fields to ``span``'s eventual ``span_end`` record.

        Lets instrumentation report quantities only known at the end of a
        phase (social cost, iteration counts) on the closing record, where
        readers expect summary fields.
        """
        if span.end_fields is None:
            span.end_fields = dict(fields)
        else:
            span.end_fields.update(fields)

    def _write(self, record: Mapping) -> None:
        if self._closed:
            return
        self._segment_records += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")


class _NullSpan:
    """Shared re-entrant no-op context manager (also a no-op span)."""

    __slots__ = ()
    name = "null"
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Null object installed while tracing is disabled."""

    enabled = False
    __slots__ = ()
    path = None

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def annotate(self, span, **fields) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
"""The process-wide null tracer (shared; stateless)."""


def read_trace(path: str | pathlib.Path) -> list[dict]:
    """Load a trace file back into a list of record dicts.

    Validates the header (schema name and version) and that the stream is
    syntactically well formed; semantic checks (span nesting, sequence
    monotonicity) live in :func:`repro.obs.summary.summarize`.
    """
    source = pathlib.Path(path)
    try:
        lines = source.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise ConfigurationError(
            f"cannot read trace file {source}: {error}"
        ) from error
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{source}:{lineno}: malformed trace record: {error}"
            ) from error
    if not records:
        raise ObservabilityError(f"{source}: empty trace (no header record)")
    header = records[0]
    if header.get("kind") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise ObservabilityError(
            f"{source}: first record is not a {TRACE_SCHEMA} header"
        )
    version = header.get("version")
    if version != TRACE_SCHEMA_VERSION:
        raise ObservabilityError(
            f"{source}: unsupported trace schema version {version!r} "
            f"(this build reads version {TRACE_SCHEMA_VERSION})"
        )
    return records


def iter_spans(records: list[dict]) -> Iterator[dict]:
    """Yield ``span_start`` records in stream order (reader convenience)."""
    for record in records:
        if record.get("kind") == "span_start":
            yield record
