"""The metrics registry: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat, name-keyed collection of three
instrument kinds covering everything the auction hot paths count:

* :class:`Counter` — monotone totals (bids considered, heap pops, dual
  updates, rounds processed);
* :class:`Gauge` — last-write-wins levels (active horizon length, ψ of
  the most scarce seller);
* :class:`Histogram` — summary statistics of repeated observations
  (per-phase wall time, payment/price ratios).  Only ``count``, ``sum``,
  ``min`` and ``max`` are kept — enough for regression gates and
  invariant checks without bucket-boundary bikeshedding.

Two exporters are provided: :meth:`MetricsRegistry.to_json` (the machine
artifact the CLI's ``--metrics PATH`` writes) and
:meth:`MetricsRegistry.to_prometheus` (the text exposition format, for
scraping a long-running experiment).

:data:`NULL_METRICS` is the shared null object installed while
observability is disabled: every instrument lookup returns a no-op
instrument, so instrumented code needs no conditionals of its own.
"""

from __future__ import annotations

import json
import math
import pathlib
import re

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "METRICS_SCHEMA_VERSION",
]

METRICS_SCHEMA_VERSION = 1
"""Version tag embedded in every exported metrics payload."""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Summary statistics (count/sum/min/max) over observations."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (NaN before the first observation)."""
        return self.total / self.count if self.count else math.nan


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def observe_phase(self, phase: str, seconds: float) -> None:
        """Record one ``@profiled`` phase timing (the shared convention)."""
        self.histogram(f"phase.{phase}.seconds").observe(seconds)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible snapshot of every instrument."""
        return {
            "schema": "repro.obs.metrics",
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The :meth:`to_dict` snapshot as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """The snapshot in the Prometheus text exposition format.

        Metric names are sanitized (dots and dashes become underscores)
        and prefixed; histograms export as summaries (``_count``/``_sum``)
        plus ``_min``/``_max`` gauges.
        """
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            metric = _prom_name(prefix, name)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {hist.count}")
            lines.append(f"{metric}_sum {_prom_value(hist.total)}")
            if hist.count:
                lines.append(f"{metric}_min {_prom_value(hist.min)}")
                lines.append(f"{metric}_max {_prom_value(hist.max)}")
        return "\n".join(lines) + "\n"

    def write_json(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the JSON snapshot to ``path`` (ConfigurationError on OSError)."""
        target = pathlib.Path(path)
        try:
            target.write_text(self.to_json())
        except OSError as error:
            raise ConfigurationError(
                f"cannot write metrics to {target}: {error}"
            ) from error
        return target


def _prom_name(prefix: str, name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", f"{prefix}_{name}")
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


class _NullInstrument:
    """One no-op object standing in for every instrument kind."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    min = math.inf
    max = -math.inf
    mean = math.nan

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Null-object registry installed while observability is disabled.

    Mirrors the :class:`MetricsRegistry` surface; every instrument lookup
    returns the shared no-op instrument, and exports are empty snapshots.
    """

    enabled = False
    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def observe_phase(self, phase: str, seconds: float) -> None:
        pass

    def to_dict(self) -> dict:
        return MetricsRegistry().to_dict()

    def to_json(self, *, indent: int = 2) -> str:
        return MetricsRegistry().to_json(indent=indent)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        return MetricsRegistry().to_prometheus(prefix=prefix)


NULL_METRICS = NullMetrics()
"""The process-wide null registry (shared; stateless)."""
