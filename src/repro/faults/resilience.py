"""The recovery engine: retries, timeouts, and graceful degradation.

This module is the mechanics between a declarative
:class:`~repro.faults.models.FaultPlan` and the round loop.  Two entry
points, both mechanism-agnostic (MSOA and the single-round registry
adapters share them):

* :func:`apply_pre_round_faults` — perturb a round's *inputs* before the
  auction runs: merge carried-over demand, amplify it under demand
  surges, and drop bids lost to churn/dropout/timeouts.  Returns the
  original instance object untouched when nothing fired, which is part
  of the bit-identical guarantee for null plans.
* :func:`execute_with_resilience` — run the round's auction, draw winner
  defaults, and recover: retry re-auctions over the remaining bids (with
  per-attempt price-ceiling backoff), then graceful degradation — a
  partial-coverage outcome whose :class:`~repro.faults.report.
  RoundResilience` carries the explicit ``uncovered`` set — instead of
  raising, when the policy says ``degradation="partial"``.

The merged partial outcome is rebuilt through
:func:`~repro.core.mechanism.outcome_from_selection` against the round's
*full* demand, so :attr:`~repro.core.outcomes.AuctionOutcome.unmet_units`
reports the shortfall naturally and downstream consumers (figures,
serde, ledgers) need no fault-aware special cases.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome, WinningBid
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.faults.injector import FaultInjector
from repro.faults.policies import ResiliencePolicy
from repro.faults.report import FaultEvent, RecoveryAction, RoundResilience
from repro.obs.runtime import STATE as _OBS

__all__ = ["apply_pre_round_faults", "execute_with_resilience"]

Runner = Callable[[WSPInstance], AuctionOutcome]


def apply_pre_round_faults(
    instance: WSPInstance,
    *,
    round_index: int,
    injector: FaultInjector,
    policy: ResiliencePolicy,
    carry_demand: Mapping[int, int] | None = None,
) -> tuple[WSPInstance, list[FaultEvent]]:
    """Perturb a round's inputs before the auction sees them.

    Applies, in order: demand carried over from the previous round's
    abandoned units (when the policy enables ``carry_uncovered``), demand
    surges, and supply-side bid faults (cloud churn, dropouts, late bids
    past the policy's ``bid_timeout``).  When nothing fires the original
    ``instance`` object is returned unchanged.
    """
    demand = dict(instance.demand)
    carried = False
    if carry_demand:
        for buyer, units in carry_demand.items():
            if units > 0:
                demand[buyer] = demand.get(buyer, 0) + units
                carried = True
    demand, events = injector.surge_demand(round_index, demand)
    bids, bid_events = injector.filter_bids(
        round_index, instance.bids, bid_timeout=policy.bid_timeout
    )
    events.extend(bid_events)
    _emit_fault_events(events)
    dropped = any(
        event.kind != "late-bid" or event.detail.get("timed_out")
        for event in bid_events
    )
    surged = any(event.kind == "demand-surge" for event in events)
    if not carried and not surged and not dropped:
        return instance, events
    return (
        WSPInstance(
            bids=tuple(bids),
            demand=demand,
            price_ceiling=instance.price_ceiling,
        ),
        events,
    )


def execute_with_resilience(
    instance: WSPInstance,
    runner: Runner,
    *,
    round_index: int,
    injector: FaultInjector,
    policy: ResiliencePolicy,
    pre_events: Sequence[FaultEvent] = (),
) -> tuple[AuctionOutcome, RoundResilience | None]:
    """Run one round's auction with default recovery and degradation.

    ``runner`` maps any (sub-)instance to an outcome — for MSOA a closure
    over :func:`~repro.core.ssam.run_ssam` at the round's scaled prices,
    for adapters the wrapped baseline.  The flow:

    1. run the primary auction; if it is infeasible and the policy says
       ``degradation="partial"``, clamp demand to what the bid pool can
       cover and serve that (the clamped-away units join ``uncovered``);
    2. draw winner defaults (attempt 0);
    3. while demand is uncovered and retries remain: re-auction the
       residual demand over the bids of sellers who have neither
       defaulted nor already delivered, under a backoff-relaxed price
       ceiling — retry winners can default again (drawn at attempt k);
    4. if demand is still uncovered, degrade to a partial-coverage
       outcome or raise :class:`~repro.errors.InfeasibleInstanceError`,
       per the policy.

    Returns the final outcome and its resilience report — ``None`` when
    the round saw no fault activity at all, which keeps fault-free
    rounds byte-identical in serialized form.
    """
    events = list(pre_events)
    clamped = False
    try:
        primary = runner(instance)
    except InfeasibleInstanceError:
        if policy.degradation != "partial":
            raise
        primary = _run_clamped(instance, runner)
        clamped = True
    defaulted, default_events = injector.winner_defaults(
        round_index, primary.winners, attempt=0
    )
    events.extend(default_events)
    _emit_fault_events(default_events)
    if not defaulted and not clamped:
        if not events:
            return primary, None
        return primary, RoundResilience(events=tuple(events))

    delivered: list[WinningBid] = [
        w for w in primary.winners if w.seller not in defaulted
    ]
    excluded = set(defaulted) | {w.seller for w in delivered}
    residual = _residual_demand(instance.demand, delivered)
    at_risk = sum(residual.values())
    recoveries: list[RecoveryAction] = []
    attempt = 0
    while residual and attempt < policy.max_retries:
        attempt += 1
        target = dict(residual)
        ceiling = policy.ceiling_at(attempt, instance.price_ceiling)
        retry_instance = WSPInstance(
            bids=tuple(
                bid for bid in instance.bids if bid.seller not in excluded
            ),
            demand=target,
            price_ceiling=ceiling,
        )
        try:
            retry = runner(retry_instance)
        except InfeasibleInstanceError:
            retry = None
        if retry is not None:
            retry_defaulted, retry_events = injector.winner_defaults(
                round_index, retry.winners, attempt=attempt
            )
            events.extend(retry_events)
            _emit_fault_events(retry_events)
            excluded |= retry_defaulted
            survivors = [
                w for w in retry.winners if w.seller not in retry_defaulted
            ]
            delivered.extend(survivors)
            excluded |= {w.seller for w in survivors}
            residual = _residual_demand(instance.demand, delivered)
        recovered = sum(target.values()) - sum(residual.values())
        action = RecoveryAction(
            round_index=round_index,
            attempt=attempt,
            residual_demand=target,
            recovered_units=recovered,
            ceiling=ceiling,
        )
        recoveries.append(action)
        _emit_recovery(action)

    if residual and policy.degradation == "raise":
        raise InfeasibleInstanceError(
            f"round {round_index}: {sum(residual.values())} demand units "
            f"remain uncovered after {len(recoveries)} recovery attempts "
            f"(defaulted sellers: {sorted(defaulted)})"
        )

    abandoned = sum(residual.values())
    report = RoundResilience(
        events=tuple(events),
        recoveries=tuple(recoveries),
        uncovered=dict(residual),
        recovered_units=at_risk - abandoned,
        abandoned_units=abandoned,
    )
    outcome = outcome_from_selection(
        instance,
        [w.bid for w in delivered],
        mechanism=primary.mechanism,
        payment_rule=primary.payment_rule,
        payments={w.key: w.payment for w in delivered},
        original_prices={w.key: w.original_price for w in delivered},
        ratio_bound=primary.ratio_bound,
        require_cover=False,
    )
    if _OBS.enabled:
        metrics = _OBS.metrics
        metrics.counter("faults.recovered_units").inc(report.recovered_units)
        metrics.counter("faults.abandoned_units").inc(abandoned)
        if report.degraded:
            metrics.counter("faults.degraded_rounds").inc()
        _OBS.tracer.event(
            "degradation-report",
            round_index=round_index,
            recovered_units=report.recovered_units,
            abandoned_units=abandoned,
            uncovered={str(b): u for b, u in sorted(residual.items())},
        )
    return outcome, report


def _run_clamped(instance: WSPInstance, runner: Runner) -> AuctionOutcome:
    """Serve the largest demand the surviving bid pool can still cover.

    The partial-degradation answer to an infeasible primary round: clamp
    each buyer's requirement to the number of distinct sellers covering
    it and re-run.  Falls back to an empty round if even the clamped
    instance is stuck (e.g. every bid priced above the ceiling).
    """
    sellers_covering: dict[int, set[int]] = {}
    for bid in instance.bids:
        for buyer in bid.covered:
            sellers_covering.setdefault(buyer, set()).add(bid.seller)
    clamped = {
        buyer: min(units, len(sellers_covering.get(buyer, ())))
        for buyer, units in instance.demand.items()
    }
    try:
        return runner(
            WSPInstance(
                bids=instance.bids,
                demand=clamped,
                price_ceiling=instance.price_ceiling,
            )
        )
    except InfeasibleInstanceError:
        return runner(
            WSPInstance(bids=instance.bids, demand={}, price_ceiling=None)
        )


def _residual_demand(
    demand: Mapping[int, int], delivered: Sequence[WinningBid]
) -> dict[int, int]:
    """Demand units the delivered winners leave uncovered, per buyer."""
    coverage = CoverageState(demand=dict(demand))
    for winner in delivered:
        coverage.apply(winner.bid)
    residual = {}
    for buyer, units in demand.items():
        short = units - coverage.granted.get(buyer, 0)
        if short > 0:
            residual[buyer] = short
    return residual


def _emit_fault_events(events: Sequence[FaultEvent]) -> None:
    if not events or not _OBS.enabled:
        return
    metrics = _OBS.metrics
    for event in events:
        metrics.counter(f"faults.injected.{event.kind}").inc()
        _OBS.tracer.event("fault-injected", **event.to_dict())


def _emit_recovery(action: RecoveryAction) -> None:
    if not _OBS.enabled:
        return
    _OBS.metrics.counter("faults.recovery_attempts").inc()
    _OBS.tracer.event(
        "recovery-attempt",
        round_index=action.round_index,
        attempt=action.attempt,
        residual_demand={
            str(b): u for b, u in sorted(action.residual_demand.items())
        },
        recovered_units=action.recovered_units,
        ceiling=action.ceiling,
    )
