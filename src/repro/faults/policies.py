"""Resilience policy: what the platform *does* about injected faults.

A :class:`ResiliencePolicy` is the knob set for the recovery machinery in
:mod:`repro.faults.resilience` — how many retry re-auctions to run after
winner defaults, how much to relax the price ceiling per backoff step,
the per-round bid-collection timeout, whether a still-uncovered round
degrades to a partial outcome or raises, and whether abandoned demand is
carried into the next round.  The policy is pure configuration (a frozen,
serde-able dataclass); the fault *models* live in
:mod:`repro.faults.models` and the mechanics in
:mod:`repro.faults.resilience`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ResiliencePolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the round loop recovers from injected faults.

    Attributes
    ----------
    max_retries:
        Re-auction attempts over the remaining bids after winners
        default (0 = accept the loss immediately).
    backoff_factor:
        Multiplier applied to the round's price ceiling at each retry
        (attempt ``k`` runs under ``ceiling * backoff_factor**k``), so
        later attempts admit pricier bids — the auction analogue of
        retry-with-backoff.  Ignored when the round has no ceiling.
    bid_timeout:
        Per-round bid-collection deadline; a late bid whose injected
        delay exceeds it misses the round.  ``None`` = wait forever
        (late bids are recorded but still compete).
    degradation:
        What to do when demand is still uncovered after the last retry:
        ``"partial"`` returns a partial-coverage outcome whose
        resilience report carries the explicit ``uncovered`` set;
        ``"raise"`` propagates
        :class:`~repro.errors.InfeasibleInstanceError` as the unfaulted
        path would.
    carry_uncovered:
        Whether a round's abandoned demand is added to the next round's
        demand (re-entering the auction at the next round's scaled
        prices) instead of being dropped.
    """

    max_retries: int = 2
    backoff_factor: float = 1.0
    bid_timeout: float | None = None
    degradation: str = "partial"
    carry_uncovered: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_factor must be >= 1 (retries may only relax the "
                f"ceiling), got {self.backoff_factor}"
            )
        if self.bid_timeout is not None and self.bid_timeout < 0:
            raise ConfigurationError(
                f"bid_timeout must be non-negative, got {self.bid_timeout}"
            )
        if self.degradation not in ("partial", "raise"):
            raise ConfigurationError(
                f"degradation must be 'partial' or 'raise', got "
                f"{self.degradation!r}"
            )

    def ceiling_at(self, attempt: int, ceiling: float | None) -> float | None:
        """The price ceiling retry ``attempt`` (1-based) runs under."""
        if ceiling is None:
            return None
        return ceiling * self.backoff_factor**attempt

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "max_retries": self.max_retries,
            "backoff_factor": self.backoff_factor,
            "bid_timeout": self.bid_timeout,
            "degradation": self.degradation,
            "carry_uncovered": self.carry_uncovered,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "ResiliencePolicy":
        """Rebuild a policy from its :meth:`to_dict` form."""
        return ResiliencePolicy(
            max_retries=int(data.get("max_retries", 2)),
            backoff_factor=float(data.get("backoff_factor", 1.0)),
            bid_timeout=(
                None if data.get("bid_timeout") is None
                else float(data["bid_timeout"])
            ),
            degradation=str(data.get("degradation", "partial")),
            carry_uncovered=bool(data.get("carry_uncovered", False)),
        )


DEFAULT_POLICY = ResiliencePolicy()
"""The policy used when a fault plan is given without an explicit one."""
