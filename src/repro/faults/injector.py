"""Seeded fault injection over the round loop's inputs and winners.

:class:`FaultInjector` turns a declarative :class:`~repro.faults.models.
FaultPlan` into concrete per-round perturbations.  All randomness comes
from a dedicated :class:`~repro.sim.rng.RngRegistry` keyed by the plan's
own ``seed`` — one named stream per fault kind — so fault draws are fully
independent of the market/workload generators: the same market under two
plans differs only where the faults differ, a re-run of the same plan
replays the identical fault trajectory, and a plan whose every model is
null (:attr:`FaultInjector.is_null`) provably perturbs nothing.

The injector is *mechanism-agnostic*: it duck-types over anything with
``.seller`` and ``.key`` (plain :class:`~repro.core.bids.Bid` objects and
:class:`~repro.core.outcomes.WinningBid` wrappers both qualify), so the
same instance serves MSOA rounds, the platform loop, and the
single-round registry adapters.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.faults.models import FaultPlan
from repro.faults.report import FaultEvent
from repro.sim.rng import RngRegistry

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stateful executor for one :class:`~repro.faults.models.FaultPlan`.

    An injector is consumed by exactly one run: it owns the fault RNG
    streams, whose positions advance as rounds are processed.  Reuse
    across runs goes through :meth:`reset` (or a fresh injector), which
    rewinds every stream to the plan's seed so the replay is identical.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self.reset()

    @property
    def plan(self) -> FaultPlan:
        """The declarative plan this injector executes."""
        return self._plan

    @property
    def is_null(self) -> bool:
        """Whether this injector can never perturb anything."""
        return self._plan.is_null

    def reset(self) -> None:
        """Rewind every fault stream to the start of the plan's seed."""
        self._registry = RngRegistry(seed=self._plan.seed)
        # CloudChurn departures are decided once per model (at its
        # leave round), then remembered for the whole away window.
        self._churn_decisions: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Supply-side faults: bid dropout, late bids, cloud churn.
    # ------------------------------------------------------------------

    def filter_bids(
        self,
        round_index: int,
        bids: Sequence,
        *,
        bid_timeout: float | None = None,
    ) -> tuple[list, list[FaultEvent]]:
        """Apply churn/dropout/late-bid faults to a round's bid pool.

        Returns the surviving bids (in input order) and the injected
        events.  ``bid_timeout`` is the active policy's per-round
        collection deadline: a late bid whose drawn delay exceeds it is
        dropped; with no timeout every late bid still makes the round
        (the event is recorded either way).
        """
        if self.is_null or not bids:
            return list(bids), []
        away = self._away_sellers(round_index)
        events: list[FaultEvent] = []
        kept: list = []
        dropout_rng = self._registry.stream("bid-dropout")
        late_rng = self._registry.stream("late-bid")
        for bid in bids:
            seller = bid.seller
            _, bid_index = bid.key
            if seller in away:
                events.append(
                    FaultEvent(
                        kind="cloud-churn",
                        round_index=round_index,
                        seller=seller,
                        bid_index=bid_index,
                    )
                )
                continue
            dropped = False
            for model in self._plan.bid_dropouts:
                if model.is_null or not model.applies(round_index, seller):
                    continue
                if dropout_rng.random() < model.probability:
                    events.append(
                        FaultEvent(
                            kind="bid-dropout",
                            round_index=round_index,
                            seller=seller,
                            bid_index=bid_index,
                        )
                    )
                    dropped = True
                    break
            if dropped:
                continue
            for model in self._plan.late_bids:
                if model.is_null or not model.applies(round_index, seller):
                    continue
                if late_rng.random() < model.probability:
                    low, high = model.delay_range
                    delay = float(low + (high - low) * late_rng.random())
                    timed_out = bid_timeout is not None and delay > bid_timeout
                    events.append(
                        FaultEvent(
                            kind="late-bid",
                            round_index=round_index,
                            seller=seller,
                            bid_index=bid_index,
                            detail={
                                "delay": delay,
                                "timed_out": float(timed_out),
                            },
                        )
                    )
                    if timed_out:
                        dropped = True
                    break
            if not dropped:
                kept.append(bid)
        return kept, events

    def _away_sellers(self, round_index: int) -> frozenset[int]:
        """Sellers hidden by cloud churn during ``round_index``."""
        away: set[int] = set()
        churn_rng = self._registry.stream("cloud-churn")
        for position, model in enumerate(self._plan.cloud_churn):
            if model.is_null or not model.covers_round(round_index):
                continue
            if position not in self._churn_decisions:
                self._churn_decisions[position] = (
                    model.probability >= 1.0
                    or churn_rng.random() < model.probability
                )
            if self._churn_decisions[position]:
                away.update(model.sellers)
        return frozenset(away)

    # ------------------------------------------------------------------
    # Demand-side faults: surge.
    # ------------------------------------------------------------------

    def surge_demand(
        self, round_index: int, demand: Mapping[int, int]
    ) -> tuple[dict[int, int], list[FaultEvent]]:
        """Apply demand surges to a round's buyer → units map.

        Returns the (possibly amplified) demand and the injected events;
        the input mapping is never mutated.
        """
        if self.is_null:
            return dict(demand), []
        surged = dict(demand)
        events: list[FaultEvent] = []
        surge_rng = self._registry.stream("demand-surge")
        for model in self._plan.demand_surges:
            if model.is_null:
                continue
            if model.rounds is not None:
                fires = round_index in model.rounds
            else:
                fires = surge_rng.random() < model.probability
            if not fires:
                continue
            surged = {
                buyer: int(math.ceil(units * model.factor))
                for buyer, units in surged.items()
            }
            events.append(
                FaultEvent(
                    kind="demand-surge",
                    round_index=round_index,
                    detail={"factor": model.factor},
                )
            )
        return surged, events

    # ------------------------------------------------------------------
    # Delivery faults: winner defaults.
    # ------------------------------------------------------------------

    def winner_defaults(
        self,
        round_index: int,
        winners: Iterable,
        *,
        attempt: int = 0,
    ) -> tuple[frozenset[int], list[FaultEvent]]:
        """Decide which of a selection's winners fail to deliver.

        ``attempt`` is 0 for the round's primary auction and counts up
        through retries — scripted ``(round, seller)`` defaults fire only
        on attempt 0 (so golden scenarios are exactly reproducible),
        while probabilistic defaults are drawn per win at *every*
        attempt: retries can default again, compounding exactly as real
        churn does.
        """
        if self.is_null:
            return frozenset(), []
        defaulted: set[int] = set()
        events: list[FaultEvent] = []
        default_rng = self._registry.stream("seller-default")
        scripted = {
            (r, s)
            for model in self._plan.seller_defaults
            for r, s in model.scripted
        }
        for winner in winners:
            seller = winner.seller
            _, bid_index = winner.key
            if attempt == 0 and (round_index, seller) in scripted:
                defaulted.add(seller)
                events.append(
                    FaultEvent(
                        kind="seller-default",
                        round_index=round_index,
                        seller=seller,
                        bid_index=bid_index,
                        detail={"attempt": float(attempt), "scripted": 1.0},
                    )
                )
                continue
            for model in self._plan.seller_defaults:
                if model.probability == 0.0:
                    continue
                if not model.applies(round_index, seller):
                    continue
                if default_rng.random() < model.probability:
                    defaulted.add(seller)
                    events.append(
                        FaultEvent(
                            kind="seller-default",
                            round_index=round_index,
                            seller=seller,
                            bid_index=bid_index,
                            detail={"attempt": float(attempt)},
                        )
                    )
                    break
        return frozenset(defaulted), events
