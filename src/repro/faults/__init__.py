"""Seeded fault injection and resilience for the auction path.

The paper's analysis assumes faithful delivery: every winning seller
provides what it pledged, every bid arrives on time, every edge cloud
stays up.  :mod:`repro.faults` lets experiments drop each assumption in a
controlled, reproducible way:

* :mod:`~repro.faults.models` — declarative fault models
  (:class:`SellerDefault`, :class:`BidDropout`, :class:`LateBid`,
  :class:`CloudChurn`, :class:`DemandSurge`) bundled into a serde-able
  :class:`FaultPlan` under a dedicated fault seed;
* :mod:`~repro.faults.injector` — :class:`FaultInjector` executes a plan
  over dedicated RNG streams, independent of the market generators;
* :mod:`~repro.faults.policies` — :class:`ResiliencePolicy` configures
  retries, backoff, bid timeouts, degradation, and demand carryover;
* :mod:`~repro.faults.resilience` — the recovery engine shared by MSOA
  and the registry adapters;
* :mod:`~repro.faults.report` — :class:`FaultEvent` /
  :class:`RecoveryAction` / :class:`RoundResilience`, the measurement
  types attached to faulted rounds.

Two invariants the test suite pins:

1. **Null plans change nothing.**  ``faults=None`` and any plan with
   :attr:`FaultPlan.is_null` produce outcomes bit-identical to an
   unfaulted run, on both selection engines.
2. **Faulted runs replay.**  The same plan (same fault seed) over the
   same market produces the identical fault trajectory.

Entry points accept ``faults=`` (a :class:`FaultPlan`) and
``resilience=`` (a :class:`ResiliencePolicy`) keywords:
:func:`repro.core.msoa.run_msoa`, :class:`repro.core.msoa.
MultiStageOnlineAuction`, :func:`repro.core.registry.make_online`,
:class:`repro.edge.platform.EdgePlatform`, and the CLI's ``--faults
spec.json`` flag.  See ``docs/resilience.md`` for the full guide.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FAULT_PLAN_SCHEMA_VERSION,
    BidDropout,
    CloudChurn,
    DemandSurge,
    FaultPlan,
    LateBid,
    SellerDefault,
    load_fault_plan,
    save_fault_plan,
)
from repro.faults.policies import DEFAULT_POLICY, ResiliencePolicy
from repro.faults.report import (
    FAULT_KINDS,
    FaultEvent,
    RecoveryAction,
    RoundResilience,
)
from repro.faults.resilience import (
    apply_pre_round_faults,
    execute_with_resilience,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA_VERSION",
    "BidDropout",
    "CloudChurn",
    "DemandSurge",
    "DEFAULT_POLICY",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LateBid",
    "RecoveryAction",
    "ResiliencePolicy",
    "RoundResilience",
    "SellerDefault",
    "apply_pre_round_faults",
    "execute_with_resilience",
    "load_fault_plan",
    "save_fault_plan",
]
