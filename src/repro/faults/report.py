"""What the resilience layer observed and did, per round and per horizon.

These types are the *measurement* half of :mod:`repro.faults`: every
injected fault becomes a :class:`FaultEvent`, every re-auction attempt a
:class:`RecoveryAction`, and a round that saw any of either carries a
:class:`RoundResilience` on its
:class:`~repro.core.outcomes.RoundResult`.  A round with no fault
activity carries ``None`` instead — never an empty report — which is what
keeps no-fault and all-zero-plan runs bit-identical to unfaulted ones
(the serialized round is byte-for-byte the same).

Everything here is a frozen dataclass with ``to_dict``/``from_dict``
serde, mirroring the outcome schema conventions of
:mod:`repro.core.outcomes`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "RecoveryAction",
    "RoundResilience",
]

FAULT_KINDS = frozenset({
    "seller-default",
    "bid-dropout",
    "late-bid",
    "cloud-churn",
    "demand-surge",
})
"""Every event kind the injector can emit (see :mod:`repro.faults.models`)."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, attributed to the round it hit.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    round_index:
        The auction round the fault was injected into.
    seller:
        The affected seller id (``None`` for demand-side faults).
    bid_index:
        The affected alternative-bid index (bid-level faults only).
    detail:
        Kind-specific numbers: the drawn delay for a late bid, the surge
        factor for a demand surge, the retry attempt a default hit, ...
    """

    kind: str
    round_index: int
    seller: int | None = None
    bid_index: int | None = None
    detail: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        data: dict = {"kind": self.kind, "round_index": self.round_index}
        if self.seller is not None:
            data["seller"] = self.seller
        if self.bid_index is not None:
            data["bid_index"] = self.bid_index
        if self.detail:
            data["detail"] = {k: v for k, v in sorted(self.detail.items())}
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "FaultEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        return FaultEvent(
            kind=str(data["kind"]),
            round_index=int(data["round_index"]),
            seller=None if data.get("seller") is None else int(data["seller"]),
            bid_index=(
                None if data.get("bid_index") is None
                else int(data["bid_index"])
            ),
            detail={
                str(k): float(v) for k, v in data.get("detail", {}).items()
            },
        )


@dataclass(frozen=True)
class RecoveryAction:
    """One re-auction attempt after winners defaulted.

    Attributes
    ----------
    round_index / attempt:
        Which round, and which retry (1-based; attempt 0 is the primary
        auction and never appears here).
    residual_demand:
        The buyer → units map the retry tried to re-cover.
    recovered_units:
        Units actually delivered by this attempt's surviving winners.
    ceiling:
        The (possibly backoff-relaxed) price ceiling the retry ran under,
        ``None`` when the round had no ceiling.
    """

    round_index: int
    attempt: int
    residual_demand: Mapping[int, int]
    recovered_units: int
    ceiling: float | None = None

    def __post_init__(self) -> None:
        if self.attempt < 1:
            raise ConfigurationError(
                f"retry attempts are 1-based, got {self.attempt}"
            )
        if self.recovered_units < 0:
            raise ConfigurationError(
                f"recovered_units must be non-negative, got "
                f"{self.recovered_units}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "round_index": self.round_index,
            "attempt": self.attempt,
            "residual_demand": {
                str(b): u for b, u in sorted(self.residual_demand.items())
            },
            "recovered_units": self.recovered_units,
            "ceiling": self.ceiling,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "RecoveryAction":
        """Rebuild an action from its :meth:`to_dict` form."""
        return RecoveryAction(
            round_index=int(data["round_index"]),
            attempt=int(data["attempt"]),
            residual_demand={
                int(b): int(u) for b, u in data["residual_demand"].items()
            },
            recovered_units=int(data["recovered_units"]),
            ceiling=(
                None if data.get("ceiling") is None
                else float(data["ceiling"])
            ),
        )


@dataclass(frozen=True)
class RoundResilience:
    """The degradation report for one round that saw fault activity.

    Attributes
    ----------
    events:
        Every fault injected into the round, in injection order.
    recoveries:
        The re-auction attempts run after winner defaults.
    uncovered:
        Buyer → units the round finally left unserved.  Empty means the
        round fully recovered; non-empty means the outcome is a
        *partial-coverage* outcome (graceful degradation instead of an
        exception).
    recovered_units / abandoned_units:
        The recovered-vs-abandoned split of the demand that defaulted
        winners put at risk: recovered units were re-covered by retries,
        abandoned units end the round in :attr:`uncovered`.
    """

    events: tuple[FaultEvent, ...] = ()
    recoveries: tuple[RecoveryAction, ...] = ()
    uncovered: Mapping[int, int] = field(default_factory=dict)
    recovered_units: int = 0
    abandoned_units: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the round ended with unserved demand."""
        return any(units > 0 for units in self.uncovered.values())

    @property
    def uncovered_units(self) -> int:
        """Total units left unserved by the round."""
        return sum(units for units in self.uncovered.values() if units > 0)

    @property
    def defaulted_sellers(self) -> frozenset[int]:
        """Sellers that defaulted on a win at any attempt of the round."""
        return frozenset(
            event.seller
            for event in self.events
            if event.kind == "seller-default" and event.seller is not None
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "events": [event.to_dict() for event in self.events],
            "recoveries": [action.to_dict() for action in self.recoveries],
            "uncovered": {str(b): u for b, u in sorted(self.uncovered.items())},
            "recovered_units": self.recovered_units,
            "abandoned_units": self.abandoned_units,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "RoundResilience":
        """Rebuild a report from its :meth:`to_dict` form."""
        return RoundResilience(
            events=tuple(
                FaultEvent.from_dict(item) for item in data.get("events", ())
            ),
            recoveries=tuple(
                RecoveryAction.from_dict(item)
                for item in data.get("recoveries", ())
            ),
            uncovered={
                int(b): int(u) for b, u in data.get("uncovered", {}).items()
            },
            recovered_units=int(data.get("recovered_units", 0)),
            abandoned_units=int(data.get("abandoned_units", 0)),
        )
