"""Composable, serde-able fault models for churn-prone edge markets.

The paper's MSOA analysis assumes every winning seller delivers what it
pledged, every bid arrives on time, and every edge cloud stays up for the
whole horizon.  Real edge clouds violate all three — sellers default,
bids straggle past the collection deadline, clouds drop out mid-horizon —
so this module gives each failure mode a declarative, seeded model:

* :class:`SellerDefault` — a winning seller fails to deliver, with
  probability ``p`` per win and/or at scripted ``(round, seller)`` pairs;
* :class:`BidDropout` — a bid never arrives;
* :class:`LateBid` — a bid arrives after a random delay; it is dropped
  iff the delay exceeds the resilience policy's per-round
  ``bid_timeout`` (no timeout → late bids still make the round);
* :class:`CloudChurn` — a set of co-located sellers leaves at a round
  boundary and (optionally) rejoins later;
* :class:`DemandSurge` — a round's demand is multiplied by a factor.

A :class:`FaultPlan` bundles any number of these under one dedicated
fault seed.  Plans serialize to JSON (``to_dict``/``from_dict``,
:func:`load_fault_plan`/:func:`save_fault_plan`) so a faulted experiment
is fully described by its config + plan file, and the all-zero plan is
recognizably *null* (:attr:`FaultPlan.is_null`) — guard tests pin that a
null plan leaves every outcome bit-identical to the unfaulted run.

>>> plan = FaultPlan(seed=7, seller_defaults=(SellerDefault(probability=0.2),))
>>> plan.is_null
False
>>> FaultPlan.from_dict(plan.to_dict()) == plan
True
>>> FaultPlan().is_null
True
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Mapping
from dataclasses import dataclass, field, fields

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_PLAN_SCHEMA_VERSION",
    "SellerDefault",
    "BidDropout",
    "LateBid",
    "CloudChurn",
    "DemandSurge",
    "FaultPlan",
    "load_fault_plan",
    "save_fault_plan",
]

FAULT_PLAN_SCHEMA_VERSION = 1
"""Version tag embedded in every serialized plan (bump on breaking
changes to the ``to_dict`` schema)."""


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value}"
        )


def _as_optional_ints(value) -> tuple[int, ...] | None:
    if value is None:
        return None
    return tuple(int(item) for item in value)


@dataclass(frozen=True)
class SellerDefault:
    """A winning seller fails to deliver its pledged resources.

    Attributes
    ----------
    probability:
        Per-win default probability, drawn independently for every
        winning bid (including re-auction winners — retries can default
        too, exactly the compounding risk real churn produces).
    sellers:
        Restrict the model to these seller ids (``None`` = all sellers).
    rounds:
        Restrict the model to these round indices (``None`` = all rounds).
    scripted:
        ``(round_index, seller)`` pairs that default deterministically on
        the round's primary auction, regardless of ``probability`` —
        the reproducible way to build golden recovery scenarios.
    """

    probability: float = 0.0
    sellers: tuple[int, ...] | None = None
    rounds: tuple[int, ...] | None = None
    scripted: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        _check_probability("SellerDefault.probability", self.probability)
        object.__setattr__(self, "sellers", _as_optional_ints(self.sellers))
        object.__setattr__(self, "rounds", _as_optional_ints(self.rounds))
        object.__setattr__(
            self,
            "scripted",
            tuple((int(r), int(s)) for r, s in self.scripted),
        )

    @property
    def is_null(self) -> bool:
        """Whether this model can never fire."""
        return self.probability == 0.0 and not self.scripted

    def applies(self, round_index: int, seller: int) -> bool:
        """Whether the probabilistic part covers ``(round, seller)``."""
        if self.rounds is not None and round_index not in self.rounds:
            return False
        return self.sellers is None or seller in self.sellers


@dataclass(frozen=True)
class BidDropout:
    """A bid is lost before the round's collection closes.

    ``probability`` is drawn independently per bid; ``sellers``/``rounds``
    restrict the model as in :class:`SellerDefault`.
    """

    probability: float = 0.0
    sellers: tuple[int, ...] | None = None
    rounds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_probability("BidDropout.probability", self.probability)
        object.__setattr__(self, "sellers", _as_optional_ints(self.sellers))
        object.__setattr__(self, "rounds", _as_optional_ints(self.rounds))

    @property
    def is_null(self) -> bool:
        """Whether this model can never fire."""
        return self.probability == 0.0

    def applies(self, round_index: int, seller: int) -> bool:
        """Whether the model covers ``(round, seller)``."""
        if self.rounds is not None and round_index not in self.rounds:
            return False
        return self.sellers is None or seller in self.sellers


@dataclass(frozen=True)
class LateBid:
    """A bid arrives after a uniform random delay.

    With probability ``probability`` a bid is delayed by a draw from
    ``U[delay_range]``.  Whether a delayed bid still makes the round is
    the *policy's* call: it is dropped iff the active
    :class:`~repro.faults.policies.ResiliencePolicy` sets a per-round
    ``bid_timeout`` smaller than the drawn delay.  Without a timeout the
    bid arrives late but in time, and only the event is recorded.
    """

    probability: float = 0.0
    delay_range: tuple[float, float] = (0.0, 5.0)
    sellers: tuple[int, ...] | None = None
    rounds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_probability("LateBid.probability", self.probability)
        low, high = self.delay_range
        if not 0 <= low <= high:
            raise ConfigurationError(
                f"invalid LateBid.delay_range {self.delay_range}"
            )
        object.__setattr__(
            self, "delay_range", (float(low), float(high))
        )
        object.__setattr__(self, "sellers", _as_optional_ints(self.sellers))
        object.__setattr__(self, "rounds", _as_optional_ints(self.rounds))

    @property
    def is_null(self) -> bool:
        """Whether this model can never fire."""
        return self.probability == 0.0

    def applies(self, round_index: int, seller: int) -> bool:
        """Whether the model covers ``(round, seller)``."""
        if self.rounds is not None and round_index not in self.rounds:
            return False
        return self.sellers is None or seller in self.sellers


@dataclass(frozen=True)
class CloudChurn:
    """An edge cloud (a set of co-located sellers) leaves mid-horizon.

    From ``leave_round`` (inclusive) to ``rejoin_round`` (exclusive;
    ``None`` = never rejoins) the listed sellers submit no bids.  With
    ``probability < 1`` the departure is itself random: one draw at
    ``leave_round`` decides whether this churn event happens at all.
    """

    sellers: tuple[int, ...] = ()
    leave_round: int = 0
    rejoin_round: int | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("CloudChurn.probability", self.probability)
        if self.leave_round < 0:
            raise ConfigurationError(
                f"CloudChurn.leave_round must be >= 0, got {self.leave_round}"
            )
        if self.rejoin_round is not None and self.rejoin_round <= self.leave_round:
            raise ConfigurationError(
                "CloudChurn.rejoin_round must be after leave_round, got "
                f"{self.rejoin_round} <= {self.leave_round}"
            )
        object.__setattr__(
            self, "sellers", tuple(int(s) for s in self.sellers)
        )

    @property
    def is_null(self) -> bool:
        """Whether this model can never remove a bid."""
        return not self.sellers or self.probability == 0.0

    def covers_round(self, round_index: int) -> bool:
        """Whether ``round_index`` falls in the away window."""
        if round_index < self.leave_round:
            return False
        return self.rejoin_round is None or round_index < self.rejoin_round


@dataclass(frozen=True)
class DemandSurge:
    """A round's demand is multiplied by ``factor`` (ceil-rounded).

    Fires on every listed round (``rounds``), or with ``probability`` per
    round when ``rounds`` is ``None`` — the stress model for rounds where
    demand outstrips what the bid pool can cover and the degradation
    path must produce a partial outcome instead of raising.
    """

    factor: float = 1.0
    probability: float = 0.0
    rounds: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_probability("DemandSurge.probability", self.probability)
        if self.factor < 1.0:
            raise ConfigurationError(
                f"DemandSurge.factor must be >= 1, got {self.factor}"
            )
        object.__setattr__(self, "rounds", _as_optional_ints(self.rounds))

    @property
    def is_null(self) -> bool:
        """Whether this model can never change a round's demand."""
        if self.factor == 1.0:
            return True
        return self.rounds is None and self.probability == 0.0


_MODEL_TYPES: dict[str, type] = {
    "seller_defaults": SellerDefault,
    "bid_dropouts": BidDropout,
    "late_bids": LateBid,
    "cloud_churn": CloudChurn,
    "demand_surges": DemandSurge,
}


def _model_to_dict(model) -> dict:
    data: dict = {}
    for spec in fields(model):
        value = getattr(model, spec.name)
        if value is None:
            continue
        if spec.name == "scripted":
            value = [list(pair) for pair in value]
        elif isinstance(value, tuple):
            value = list(value)
        data[spec.name] = value
    return data


@dataclass(frozen=True)
class FaultPlan:
    """A bundle of fault models plus the dedicated fault seed.

    The ``seed`` drives a fault-only RNG stream family (see
    :class:`~repro.faults.injector.FaultInjector`), fully independent of
    the market/workload generators: the same market run under two plans
    differs only where the faults differ, and a plan whose every model
    :attr:`is_null` provably changes nothing.
    """

    seed: int = 0
    seller_defaults: tuple[SellerDefault, ...] = ()
    bid_dropouts: tuple[BidDropout, ...] = ()
    late_bids: tuple[LateBid, ...] = ()
    cloud_churn: tuple[CloudChurn, ...] = ()
    demand_surges: tuple[DemandSurge, ...] = ()

    def __post_init__(self) -> None:
        for name, model_type in _MODEL_TYPES.items():
            models = tuple(getattr(self, name))
            for model in models:
                if not isinstance(model, model_type):
                    raise ConfigurationError(
                        f"FaultPlan.{name} entries must be "
                        f"{model_type.__name__}, got "
                        f"{type(model).__name__}"
                    )
            object.__setattr__(self, name, models)

    @property
    def is_null(self) -> bool:
        """Whether no model in the plan can ever fire."""
        return all(
            model.is_null
            for name in _MODEL_TYPES
            for model in getattr(self, name)
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        data: dict = {
            "kind": "fault-plan",
            "schema_version": FAULT_PLAN_SCHEMA_VERSION,
            "seed": self.seed,
        }
        for name in _MODEL_TYPES:
            models = getattr(self, name)
            if models:
                data[name] = [_model_to_dict(model) for model in models]
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        kind = data.get("kind", "fault-plan")
        if kind != "fault-plan":
            raise ConfigurationError(
                f"serialized fault plan has kind {kind!r}, "
                "expected 'fault-plan'"
            )
        version = data.get("schema_version", FAULT_PLAN_SCHEMA_VERSION)
        if version != FAULT_PLAN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported fault-plan schema version {version!r} "
                f"(this build reads version {FAULT_PLAN_SCHEMA_VERSION})"
            )
        kwargs: dict = {"seed": int(data.get("seed", 0))}
        for name, model_type in _MODEL_TYPES.items():
            entries = data.get(name, ())
            try:
                kwargs[name] = tuple(
                    model_type(**{
                        key: (
                            tuple(tuple(p) for p in value)
                            if key == "scripted"
                            else tuple(value)
                            if isinstance(value, list)
                            else value
                        )
                        for key, value in entry.items()
                    })
                    for entry in entries
                )
            except TypeError as error:
                raise ConfigurationError(
                    f"malformed FaultPlan.{name} entry: {error}"
                ) from error
        return FaultPlan(**kwargs)


def load_fault_plan(path: str | pathlib.Path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON spec file.

    This is what the CLI's ``--faults spec.json`` flag calls; see
    ``docs/resilience.md`` for the spec format and a worked example.
    """
    source = pathlib.Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(
            f"cannot read fault plan {source}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{source} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"{source} must contain a JSON object, got "
            f"{type(payload).__name__}"
        )
    return FaultPlan.from_dict(payload)


def save_fault_plan(plan: FaultPlan, path: str | pathlib.Path) -> None:
    """Write ``plan`` as a JSON spec readable by :func:`load_fault_plan`."""
    target = pathlib.Path(path)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
