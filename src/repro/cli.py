"""Command-line interface: run the paper's experiments from a shell.

Usage::

    repro-edge-auction list                  # show available experiments
    repro-edge-auction fig 3a                # regenerate Figure 3(a)
    repro-edge-auction fig all --quick       # all figures, reduced sweep
    repro-edge-auction fig 4b --parallelism 8  # parallel payment replays
    repro-edge-auction bench                 # engine perf harness
    repro-edge-auction quickstart            # a tiny end-to-end demo
    repro-edge-auction mechanisms            # list the mechanism registry
    repro-edge-auction run --mechanism vcg   # one mechanism, one market
    repro-edge-auction serve --rounds 6 --check  # async platform + oracle check
    repro-edge-auction serve --transport tcp --rounds 3  # sockets + worker processes
    repro-edge-auction verify --mechanism ssam   # certify economic claims

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError
from repro.experiments import FULL, QUICK, fig3a, fig3b, fig4a, fig4b, fig5a, fig6a, fig6b

FIGURES = {
    "3a": fig3a,
    "3b": fig3b,
    "4a": fig4a,
    "4b": fig4b,
    "5a": fig5a,
    "6a": fig6a,
    "6b": fig6b,
}


def _parallelism_arg(text: str) -> int | str:
    """Parse ``--parallelism``: an integer worker count or ``auto``.

    Range validation happens downstream (``validate_parallelism``), so
    bad values surface as the CLI's usual one-line configuration errors
    rather than argparse usage dumps.
    """
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _cmd_list(_: argparse.Namespace) -> int:
    print("Available experiments (paper figure panels):")
    for key, fn in FIGURES.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  fig {key:3s} {doc}")
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    import dataclasses

    config = QUICK if args.quick else FULL
    if args.parallelism != config.parallelism:
        config = dataclasses.replace(config, parallelism=args.parallelism)
    if args.engine != "fast":
        config = dataclasses.replace(config, engine=args.engine)
    if args.trace or args.metrics:
        from repro.obs import ObservabilityConfig

        # Thread the request through ExperimentConfig too, so the runner's
        # activate() path is exercised exactly as library callers use it.
        config = dataclasses.replace(
            config,
            observability=ObservabilityConfig(
                trace_path=args.trace,
                metrics_path=args.metrics,
                trace_max_records=args.trace_limit,
                trace_sample_every=args.trace_sample,
            ),
        )
    if args.faults:
        from repro.faults import load_fault_plan

        config = dataclasses.replace(
            config, faults=load_fault_plan(args.faults)
        )
    keys = list(FIGURES) if args.panel == "all" else [args.panel]
    for key in keys:
        if key not in FIGURES:
            print(f"unknown figure panel {key!r}; try 'list'", file=sys.stderr)
            return 2
        table = FIGURES[key](config)
        print(table.render())
        print()
    return 0


def _cmd_compare(_: argparse.Namespace) -> int:
    from repro.analysis.reporting import ResultTable
    from repro.baselines import (
        run_pay_as_bid,
        run_posted_price,
        run_random_selection,
        run_vcg,
    )
    from repro import MarketConfig, generate_round, run_ssam

    rng = np.random.default_rng(7)
    instance = generate_round(MarketConfig(), rng)
    table = ResultTable(
        title="Mechanism comparison (one paper-default round)",
        columns=["mechanism", "social_cost", "payment"],
        precision=2,
    )
    ssam = run_ssam(instance)
    vcg = run_vcg(instance)
    pab = run_pay_as_bid(instance)
    rnd = run_random_selection(instance, rng)
    posted = run_posted_price(instance, unit_price=35.0)
    table.add_row(mechanism="VCG (optimal)", social_cost=vcg.social_cost,
                  payment=vcg.total_payment)
    table.add_row(mechanism="SSAM", social_cost=ssam.social_cost,
                  payment=ssam.total_payment)
    table.add_row(mechanism="pay-as-bid", social_cost=pab.social_cost,
                  payment=pab.total_payment)
    table.add_row(mechanism="random", social_cost=rnd.social_cost,
                  payment=rnd.total_payment)
    table.add_row(mechanism="posted@35", social_cost=posted.social_cost,
                  payment=posted.total_payment)
    print(table.render())
    return 0


def _parse_hostport(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI operand."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer port in {text!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.dist import DistScenario, replay_scenario, serve

    faults = None
    if args.faults:
        from repro.faults import load_fault_plan

        faults = load_fault_plan(args.faults)
    scenario = DistScenario(
        seed=args.seed,
        horizon_rounds=args.rounds,
        mechanism=args.mechanism,
        engine=args.engine,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        faults=faults,
    )
    if args.connect is not None:
        # Agent-worker mode: serve this terminal's share of the seller
        # fleet against an orchestrator listening elsewhere.
        from repro.dist import run_agent_worker

        sellers = tuple(args.sellers or scenario.seller_ids())
        host, port = args.connect
        print(
            f"serving sellers {list(sellers)} against {host}:{port} "
            f"(seed {args.seed})"
        )
        run_agent_worker(host, port, sellers, scenario)
        print("agents shut down")
        return 0
    if args.check and args.clock == "wall":
        print(
            "error: --check asserts the virtual-clock determinism "
            "contract; it cannot be combined with --clock wall "
            "(wall-clock outcomes depend on real peer latency)",
            file=sys.stderr,
        )
        return 2
    options: dict = {"grace_window": args.grace, "clock": args.clock}
    if args.transport == "tcp":
        options["listen"] = args.listen
        options["agent_processes"] = args.processes
    service = serve(scenario, **options)
    if args.transport == "tcp":
        service.on_listening = lambda addr: print(
            f"listening on {addr[0]}:{addr[1]} "
            f"({args.processes} local agent process(es))"
        )
    reports = service.run()
    print(
        f"served {len(reports)} rounds "
        f"(seed {args.seed}, mechanism {args.mechanism or 'msoa'}, "
        f"grace window {service.orchestrator.grace_window})"
    )
    for report in reports:
        demand = sum(report.demand_units.values())
        if report.auction is None:
            print(f"  round {report.round_index}: no demand")
            continue
        winners = len(report.auction.outcome.winners)
        print(
            f"  round {report.round_index}: demand {demand} units, "
            f"{winners} winning bids, social cost "
            f"{report.auction.social_cost:.2f}"
        )
    ledger = service.ledger
    print(
        f"ledger: paid {ledger.total_paid:.2f}, "
        f"charged {ledger.total_charged:.2f}, "
        f"budget balanced: {ledger.is_budget_balanced}"
    )
    if args.check:
        sync_reports = replay_scenario(scenario, args.rounds)
        matches = [
            (a.auction.outcome.to_dict() if a.auction else None)
            == (s.auction.outcome.to_dict() if s.auction else None)
            for a, s in zip(reports, sync_reports)
        ]
        if all(matches) and len(reports) == len(sync_reports):
            print("determinism check: async outcomes bit-identical to "
                  "synchronous replay")
        else:
            bad = [i for i, ok in enumerate(matches) if not ok]
            print(
                f"determinism check FAILED (rounds {bad})", file=sys.stderr
            )
            return 1
    return 0


def _cmd_trace(_: argparse.Namespace) -> int:
    from repro.analysis.visualize import series_panel
    from repro.baselines.offline import run_offline_optimal
    from repro.core.msoa import run_msoa
    from repro.core.ssam import PaymentRule
    from repro.workload.trace_driven import (
        TraceDrivenConfig,
        generate_trace_driven_horizon,
    )

    rng = np.random.default_rng(11)
    rounds, capacities = generate_trace_driven_horizon(
        TraceDrivenConfig(n_microservices=20, rounds=12), rng
    )
    outcome = run_msoa(
        rounds, capacities,
        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        on_infeasible="best_effort",
    )
    offline = run_offline_optimal(rounds, capacities)
    print("Trace-driven online sharing (12 diurnal rounds)")
    print(series_panel(
        {
            "demand": [float(r.total_demand) for r in rounds],
            "cost": [r.social_cost for r in outcome.rounds],
        },
        x_label="round",
    ))
    if offline.social_cost > 0:
        print(f"online/offline ratio: "
              f"{outcome.social_cost / offline.social_cost:.3f}")
    return 0


def _cmd_explain(_: argparse.Namespace) -> int:
    from repro import MarketConfig, generate_round, run_ssam
    from repro.core.explain import render_explanation

    rng = np.random.default_rng(17)
    instance = generate_round(
        MarketConfig(n_sellers=10, n_buyers=4), rng
    )
    outcome = run_ssam(instance)
    print(render_explanation(outcome))
    return 0


def _cmd_mechanisms(_: argparse.Namespace) -> int:
    from repro.analysis.reporting import ResultTable
    from repro.core.registry import mechanism_specs

    table = ResultTable(
        title="Registered mechanisms",
        columns=[
            "name", "kind", "truthful", "payment_rule", "paper_ref",
        ],
    )
    for spec in mechanism_specs():
        table.add_row(
            name=spec.name,
            kind=spec.kind,
            truthful=spec.truthful,
            payment_rule=spec.payment_rule,
            paper_ref=spec.paper_ref,
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.registry import get_mechanism, get_spec
    from repro.experiments.storage import save_outcome
    from repro.workload.bidgen import (
        MarketConfig,
        generate_horizon,
        generate_round,
    )

    spec = get_spec(args.mechanism)
    mechanism = get_mechanism(args.mechanism)
    rng = np.random.default_rng(args.seed)
    if args.faults:
        from repro.core.registry import make_online
        from repro.faults import load_fault_plan

        if spec.kind == "horizon":
            print("--faults needs a mechanism that runs online; "
                  f"{spec.name} is a horizon benchmark", file=sys.stderr)
            return 2
        plan = load_fault_plan(args.faults)
        horizon, capacities = generate_horizon(
            MarketConfig(), rng, rounds=args.rounds
        )
        online = make_online(
            args.mechanism, capacities, on_infeasible="skip", faults=plan
        )
        for instance in horizon:
            online.process_round(instance)
        outcome = online.finalize()
        print(f"{spec.name} over {args.rounds} rounds (seed {args.seed}) "
              f"under fault plan {args.faults}:")
        print(f"  social cost   {outcome.social_cost:.2f}")
        print(f"  total payment {outcome.total_payment:.2f}")
        print(f"  fault events  {outcome.fault_events}")
        if outcome.degraded_rounds:
            print(f"  DEGRADED rounds {outcome.degraded_rounds}: "
                  f"{outcome.uncovered_units} units left uncovered")
        else:
            print("  full coverage (every default recovered)")
        if args.out:
            save_outcome(outcome, args.out)
            print(f"wrote {args.out}")
        return 0
    if spec.kind == "single":
        instance = generate_round(MarketConfig(), rng)
        outcome = mechanism(instance)
        print(f"{spec.name} on one paper-default round (seed {args.seed}):")
        print(f"  {len(instance.bids)} bids, demand "
              f"{instance.total_demand} units")
        print(f"  social cost   {outcome.social_cost:.2f}")
        print(f"  total payment {outcome.total_payment:.2f} across "
              f"{len(outcome.winners)} winners")
        if not outcome.satisfied:
            print(f"  UNMET demand: {outcome.unmet_units} units")
    else:
        horizon, capacities = generate_horizon(
            MarketConfig(), rng, rounds=args.rounds
        )
        if spec.kind == "online":
            outcome = mechanism(horizon, capacities, on_infeasible="skip")
            print(f"{spec.name} over {args.rounds} rounds (seed {args.seed}):")
            print(f"  social cost   {outcome.social_cost:.2f}")
            print(f"  total payment {outcome.total_payment:.2f}")
        else:  # horizon benchmark
            outcome = mechanism(horizon, capacities)
            print(f"{spec.name} over {args.rounds} rounds (seed {args.seed}):")
            print(f"  social cost {outcome.social_cost:.2f} "
                  f"(exact={outcome.exact})")
    if args.out:
        if not hasattr(outcome, "to_dict"):
            print(f"--out is not supported for {spec.kind} benchmarks",
                  file=sys.stderr)
            return 2
        save_outcome(outcome, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench_engine import (
        render_engine_bench,
        run_engine_bench,
        write_engine_bench,
    )

    if args.faults:
        from repro.experiments.resilience import evaluate_fault_plan
        from repro.faults import load_fault_plan

        plan = load_fault_plan(args.faults)
        table = evaluate_fault_plan(plan, rounds=4 if args.quick else 8)
        print(table.render())
        return 0

    if args.scale:
        return _run_scale_bench(args)

    payload = run_engine_bench(
        parallelism=args.parallelism, quick=args.quick
    )
    print(render_engine_bench(payload))
    target = write_engine_bench(payload, args.out or "BENCH_engine.json")
    print(f"\nwrote {target}")
    if not all(row["equivalent"] for row in payload["cases"]):
        print("ERROR: fast engine diverged from the reference oracle",
              file=sys.stderr)
        return 1
    return 0


def _run_scale_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench_scale import (
        check_scale_regression,
        default_shard_case,
        load_scale_bench,
        render_scale_bench,
        run_scale_bench,
        write_scale_bench,
    )

    shard_case = default_shard_case(
        quick=args.quick,
        shards=args.shards,
        strategy=args.shard_strategy,
    )
    baseline = load_scale_bench(args.against) if args.against else None
    payload = run_scale_bench(quick=args.quick, shard_case=shard_case)
    print(render_scale_bench(payload, baseline=baseline))
    target = write_scale_bench(payload, args.out or "BENCH_scale.json")
    print(f"\nwrote {target}")
    ok = True
    # shard["equivalent"] is None when the unsharded twin was skipped
    # (full tier); only an explicit False is a divergence.
    if (
        not all(row["equivalent"] for row in payload["cases"])
        or not payload["msoa"]["equivalent"]
        or payload["shard"]["equivalent"] is False
    ):
        print(
            "ERROR: columnar engine diverged from the fast/reference oracle",
            file=sys.stderr,
        )
        ok = False
    if baseline is not None:
        failures = check_scale_regression(payload, baseline)
        if failures:
            print(
                f"ERROR: speedup regression vs {args.against}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            ok = False
        else:
            print(f"no regression vs {args.against} (tolerance 20%)")
    return 0 if ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.verify import certify, certify_all

    if args.all:
        reports = certify_all(instances=args.instances, seed=args.seed)
    else:
        reports = [
            certify(
                args.mechanism,
                instances=args.instances,
                seed=args.seed,
                properties=args.properties or None,
                engine=args.engine,
            )
        ]
    for report in reports:
        print(report.render())
        print()
    if args.report:
        payload = (
            [r.to_dict() for r in reports] if args.all
            else reports[0].to_dict()
        )
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report}")
    nonconforming = [r.mechanism for r in reports if not r.conforms]
    if nonconforming:
        print(
            "certification FAILED (claims regressed): "
            + ", ".join(nonconforming),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_quickstart(_: argparse.Namespace) -> int:
    from repro import MarketConfig, generate_horizon, run_msoa, run_ssam
    from repro.solvers import solve_wsp_optimal

    rng = np.random.default_rng(7)
    horizon, capacities = generate_horizon(MarketConfig(), rng, rounds=5)
    single = horizon[0]
    outcome = run_ssam(single)
    optimum = solve_wsp_optimal(single).objective
    print(f"single round : {len(single.bids)} bids, demand "
          f"{single.total_demand} units")
    print(f"  SSAM social cost {outcome.social_cost:.2f} "
          f"(optimal {optimum:.2f}, bound x{outcome.ratio_bound:.2f})")
    print(f"  payments {outcome.total_payment:.2f} across "
          f"{len(outcome.winners)} winners")
    online = run_msoa(horizon, capacities)
    print(f"online (5 rounds): social cost {online.social_cost:.2f}, "
          f"competitive bound x{online.competitive_bound:.2f}")
    return 0


def _add_faults_flag(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC.json",
        help=help_text,
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL auction trace (repro.obs) here",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the metrics-registry JSON snapshot here on exit",
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=None,
        metavar="N",
        help="roll the trace file after N records per segment "
        "(bounded disk for long runs; default unbounded)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="K",
        help="keep only every K-th top-level span tree in the trace "
        "(default: keep all)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-edge-auction",
        description=(
            "Reproduction of 'Incentivizing Microservices for Online "
            "Resource Sharing in Edge Clouds' (ICDCS 2019)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments").set_defaults(
        fn=_cmd_list
    )
    fig = sub.add_parser("fig", help="regenerate a figure panel")
    fig.add_argument("panel", help="figure id (3a, 3b, 4a, 4b, 5a, 6a, 6b, all)")
    fig.add_argument(
        "--quick", action="store_true", help="reduced sweep (faster)"
    )
    fig.add_argument(
        "--parallelism",
        type=_parallelism_arg,
        default="auto",
        metavar="N|auto",
        help="worker processes for critical-payment replays: an integer, "
        "or 'auto' (default) to size the pool from each instance",
    )
    fig.add_argument(
        "--engine",
        choices=("fast", "reference", "columnar"),
        default="fast",
        help="selection engine for every mechanism run (default fast)",
    )
    _add_faults_flag(
        fig,
        "fault-plan JSON (repro.faults); every online run of the sweep "
        "executes under it",
    )
    _add_observability_flags(fig)
    fig.set_defaults(fn=_cmd_fig)
    run = sub.add_parser(
        "run", help="run one mechanism by registry name on a default market"
    )
    run.add_argument(
        "--mechanism",
        default="ssam",
        metavar="NAME",
        help="registry name (see 'mechanisms'; default ssam)",
    )
    run.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="market generator seed (default 7)",
    )
    run.add_argument(
        "--rounds", type=int, default=5, metavar="T",
        help="horizon length for online/horizon mechanisms (default 5)",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="save the outcome JSON here (single/online mechanisms)",
    )
    _add_faults_flag(
        run,
        "fault-plan JSON (repro.faults); runs the mechanism online over "
        "--rounds with faults injected (single-round mechanisms are "
        "wrapped by the online adapter)",
    )
    _add_observability_flags(run)
    run.set_defaults(fn=_cmd_run)
    sub.add_parser(
        "mechanisms", help="list the mechanism registry"
    ).set_defaults(fn=_cmd_mechanisms)
    serve = sub.add_parser(
        "serve",
        help="serve auction rounds on the distributed async platform "
        "(repro.dist)",
    )
    serve.add_argument(
        "--rounds", type=int, default=6, metavar="T",
        help="number of auction rounds to serve (default 6)",
    )
    serve.add_argument(
        "--seed", type=int, default=5, metavar="N",
        help="scenario seed (default 5)",
    )
    serve.add_argument(
        "--grace", type=float, default=1.0, metavar="W",
        help="grace window per round on the transport clock (default 1.0; "
        "real seconds under --clock wall)",
    )
    serve.add_argument(
        "--transport",
        choices=("memory", "tcp"),
        default="memory",
        help="message fabric: in-process (default) or TCP sockets with "
        "agents in separate OS processes",
    )
    serve.add_argument(
        "--listen",
        type=_parse_hostport,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="with --transport tcp: bind the orchestrator here "
        "(default 127.0.0.1:0 = loopback, ephemeral port)",
    )
    serve.add_argument(
        "--connect",
        type=_parse_hostport,
        default=None,
        metavar="HOST:PORT",
        help="agent-worker mode: instead of orchestrating, dial an "
        "orchestrator at HOST:PORT and serve seller agents "
        "(use --sellers to pick which; seeds must match the server)",
    )
    serve.add_argument(
        "--sellers",
        type=int,
        nargs="+",
        default=None,
        metavar="ID",
        help="with --connect: seller ids this worker serves "
        "(default: every scenario seller)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=2,
        metavar="N",
        help="with --transport tcp: local agent worker processes to spawn "
        "(default 2; 0 = wait for external --connect workers)",
    )
    serve.add_argument(
        "--clock",
        choices=("virtual", "wall"),
        default="virtual",
        help="deadline clock: 'virtual' (deterministic, default) or "
        "'wall' (grace window is a real timeout; relaxes the "
        "determinism contract — see docs/serving.md)",
    )
    serve.add_argument(
        "--mechanism", default=None, metavar="NAME",
        help="clearing mechanism registry name (default: the paper's MSOA)",
    )
    serve.add_argument(
        "--engine",
        choices=("fast", "reference", "columnar"),
        default="fast",
        help="clearing engine for mechanisms that accept one (default fast)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="clear each round through K geographic shards "
        "(repro.shard; MSOA only, default 1 = unsharded)",
    )
    serve.add_argument(
        "--shard-strategy",
        choices=("hash", "region", "locality"),
        default="hash",
        help="with --shards > 1: buyer partitioning strategy "
        "(region maps each microservice to its edge cloud; default hash)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="after serving, replay the scenario synchronously and verify "
        "the outcomes are bit-identical (virtual clock only)",
    )
    _add_faults_flag(
        serve,
        "fault-plan JSON (repro.faults); every served round clears under it",
    )
    _add_observability_flags(serve)
    serve.set_defaults(fn=_cmd_serve)
    bench = sub.add_parser(
        "bench",
        help="time the fast engine vs the reference oracle "
        "(writes BENCH_engine.json; --scale for the columnar tier)",
    )
    bench.add_argument(
        "--quick", action="store_true", help="CI-sized cases (faster)"
    )
    bench.add_argument(
        "--scale",
        action="store_true",
        help="run the 10^4-10^5-bid columnar tier instead (serial vs "
        "columnar vs batched payments + MSOA incrementality; writes "
        "BENCH_scale.json)",
    )
    bench.add_argument(
        "--against",
        default=None,
        metavar="PATH",
        help="--scale only: compare speedups against this committed "
        "BENCH_scale.json and fail on a >20%% regression",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="--scale only: shard count for the streaming shard case "
        "(default: one shard per stream region)",
    )
    bench.add_argument(
        "--shard-strategy",
        choices=("region", "hash", "locality"),
        default="region",
        help="--scale only: shard plan for the streaming shard case "
        "(default region)",
    )
    bench.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for critical-payment replays (default 1)",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_engine.json, or "
        "BENCH_scale.json with --scale)",
    )
    _add_faults_flag(
        bench,
        "fault-plan JSON (repro.faults); runs the resilience evaluation "
        "(cost/coverage under the plan vs. fault-free) instead of the "
        "engine bench",
    )
    _add_observability_flags(bench)
    bench.set_defaults(fn=_cmd_bench)
    verify = sub.add_parser(
        "verify",
        help="certify a mechanism's economic properties against its "
        "declared claims",
    )
    verify.add_argument(
        "--mechanism",
        default="ssam",
        metavar="NAME",
        help="registry name to certify (see 'mechanisms'; default ssam)",
    )
    verify.add_argument(
        "--all",
        action="store_true",
        help="certify every single/online registry mechanism (the CI sweep)",
    )
    verify.add_argument(
        "--instances", type=int, default=50, metavar="N",
        help="generated market instances per mechanism (default 50)",
    )
    verify.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="root seed for the instance batch (default 0)",
    )
    verify.add_argument(
        "--properties",
        nargs="+",
        default=None,
        metavar="PROP",
        help="restrict to these properties (default: all applicable)",
    )
    verify.add_argument(
        "--engine",
        choices=("fast", "reference", "columnar"),
        default=None,
        help="selection engine for mechanisms that accept one",
    )
    verify.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the certification report JSON here",
    )
    _add_observability_flags(verify)
    verify.set_defaults(fn=_cmd_verify)
    sub.add_parser(
        "quickstart", help="tiny end-to-end demo"
    ).set_defaults(fn=_cmd_quickstart)
    sub.add_parser(
        "compare", help="SSAM vs baseline mechanisms on one round"
    ).set_defaults(fn=_cmd_compare)
    sub.add_parser(
        "trace", help="online sharing under diurnal trace-driven demand"
    ).set_defaults(fn=_cmd_trace)
    sub.add_parser(
        "explain", help="narrate one auction's decisions and payments"
    ).set_defaults(fn=_cmd_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    try:
        if trace or metrics:
            from repro.obs import configure

            configure(
                trace=trace,
                metrics=metrics,
                trace_max_records=getattr(args, "trace_limit", None),
                trace_sample_every=getattr(args, "trace_sample", None),
            )
        try:
            return args.fn(args)
        finally:
            if trace or metrics:
                from repro.obs import disable

                disable()
                for label, target in (("trace", trace), ("metrics", metrics)):
                    if target:
                        print(f"wrote {label} {target}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
