"""The stable public API of the ``repro`` package.

Import from here.  Internal module layout (``repro.core.ssam``,
``repro.experiments.bench_engine``, ...) may shift between releases;
this facade is the supported surface and follows deprecation policy —
anything removed from it goes through a ``DeprecationWarning`` cycle
first.

One documented entry point per task:

===========================  ==========================================
Task                         Entry point
===========================  ==========================================
Run one auction round        :func:`run_ssam` on a :class:`WSPInstance`
Run any mechanism by name    :func:`get_mechanism` /
                             :func:`list_mechanisms` (the registry also
                             backs ``repro-edge-auction run/mechanisms``)
Run an online horizon        :func:`run_msoa` (or drive
                             :class:`MultiStageOnlineAuction` round by
                             round for streaming arrivals)
Serve live auction rounds    :func:`serve` on a :class:`DistScenario`
                             (message-driven platform; agents submit
                             bids via :meth:`AgentHandle.submit_bid`,
                             rounds run through
                             :class:`RoundOrchestrator`; over sockets
                             with ``listen=`` / :class:`TcpTransport`
                             and multi-process agents via
                             :func:`spawn_agents`; CLI:
                             ``repro-edge-auction serve
                             [--transport tcp]``)
Check serving determinism    :func:`replay_scenario` — the synchronous
                             oracle a seeded :func:`serve` session must
                             match bit for bit
Build a synthetic market     :func:`generate_round` /
                             :func:`generate_horizon` with
                             :class:`MarketConfig`
Pick the payment rule        :class:`PaymentRule` (keyword
                             ``payment_rule=``)
Scale the payment phase      keyword ``parallelism=`` on
                             :func:`run_ssam` / :func:`run_msoa`
Compare vs the exact optimum :func:`solve_wsp_optimal`
Persist / reload results     :meth:`AuctionOutcome.to_dict` /
                             :meth:`AuctionOutcome.from_dict` (same for
                             :class:`OnlineOutcome`), or
                             :func:`save_outcome` / :func:`load_outcome`
Time the engine              :func:`run_engine_bench` (CLI:
                             ``repro-edge-auction bench``)
Trace / profile a run        :func:`observing` (or :func:`configure`),
                             then :func:`summarize` on the trace file
                             (CLI: ``--trace/--metrics`` flags)
Inject faults / recover      :class:`FaultPlan` via keyword ``faults=``
                             on :func:`run_msoa` / :func:`make_online`,
                             tuned by :class:`ResiliencePolicy`
                             (keyword ``resilience=``; CLI: ``--faults``)
===========================  ==========================================

Mechanism options are keyword-only and share one vocabulary everywhere:
``payment_rule=``, ``parallelism=`` (``"auto"`` by default — serial on
small instances, pooled on large ones), ``guard=``, ``engine=``, and
(for online runs) ``faults=``, ``resilience=``.

.. deprecated:: 1.2
    Wiring sellers and buyers directly into
    :class:`~repro.edge.platform.EdgePlatform` warns; describe the
    deployment as a :class:`DistScenario` and build through
    :func:`serve` instead (the synchronous oracle stays available as
    :func:`replay_scenario`).

>>> import numpy as np
>>> from repro.api import MarketConfig, generate_round, run_ssam
>>> instance = generate_round(MarketConfig(), np.random.default_rng(7))
>>> outcome = run_ssam(instance)
>>> outcome.total_payment >= outcome.social_cost
True

Every mechanism — SSAM and all baselines — returns the same
:class:`AuctionOutcome` (tagged with ``outcome.mechanism``), so results
compare and persist uniformly:

>>> from repro.api import get_mechanism
>>> get_mechanism("vcg")(instance).mechanism
'vcg'

Online horizons run the same way, and accept a seeded fault plan; the
defaulted seller's demand is re-auctioned, and the faulted run stays
reproducible (same plan, same outcome):

>>> from repro.api import FaultPlan, SellerDefault, generate_horizon, run_msoa
>>> rounds, capacities = generate_horizon(
...     MarketConfig(), np.random.default_rng(7), rounds=4)
>>> plan = FaultPlan(seed=3, seller_defaults=(SellerDefault(probability=0.3),))
>>> faulted = run_msoa(rounds, capacities, faults=plan)
>>> faulted.fault_events > 0
True
>>> faulted.social_cost == run_msoa(rounds, capacities, faults=plan).social_cost
True
"""

from __future__ import annotations

from repro.core.bids import Bid, BidderProfile
from repro.core.mechanism import Mechanism, OnlineMechanism
from repro.core.msoa import MultiStageOnlineAuction, run_msoa
from repro.core.outcomes import (
    AuctionOutcome,
    OnlineOutcome,
    RoundResult,
    WinningBid,
)
from repro.core.registry import (
    MechanismSpec,
    get_mechanism,
    list_mechanisms,
    make_online,
    mechanism_specs,
)
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.dist import (
    AgentHandle,
    AuctionService,
    DistScenario,
    InMemoryTransport,
    RoundOrchestrator,
    TcpTransport,
    replay_scenario,
    serve,
    spawn_agents,
)
from repro.errors import (
    ConfigurationError,
    InfeasibleInstanceError,
    MechanismError,
    ReproError,
)
from repro.experiments.bench_engine import run_engine_bench
from repro.experiments.storage import load_outcome, save_outcome
from repro.faults import (
    BidDropout,
    CloudChurn,
    DemandSurge,
    FaultPlan,
    LateBid,
    ResiliencePolicy,
    SellerDefault,
    load_fault_plan,
    save_fault_plan,
)
from repro.obs import (
    ObservabilityConfig,
    TraceSummary,
    configure,
    observing,
    read_trace,
    summarize,
)
from repro.solvers import solve_wsp_optimal
from repro.workload import MarketConfig, generate_horizon, generate_round

__all__ = [
    # mechanisms
    "run_ssam",
    "run_msoa",
    "MultiStageOnlineAuction",
    "PaymentRule",
    # the mechanism protocol + registry
    "Mechanism",
    "OnlineMechanism",
    "MechanismSpec",
    "get_mechanism",
    "list_mechanisms",
    "mechanism_specs",
    "make_online",
    # market model
    "Bid",
    "BidderProfile",
    "WSPInstance",
    "MarketConfig",
    "generate_round",
    "generate_horizon",
    # outcomes & persistence
    "AuctionOutcome",
    "OnlineOutcome",
    "RoundResult",
    "WinningBid",
    "save_outcome",
    "load_outcome",
    # distributed serving
    "serve",
    "AuctionService",
    "RoundOrchestrator",
    "AgentHandle",
    "DistScenario",
    "replay_scenario",
    "InMemoryTransport",
    "TcpTransport",
    "spawn_agents",
    # references & tooling
    "solve_wsp_optimal",
    "run_engine_bench",
    # faults & resilience
    "FaultPlan",
    "SellerDefault",
    "BidDropout",
    "LateBid",
    "CloudChurn",
    "DemandSurge",
    "ResiliencePolicy",
    "load_fault_plan",
    "save_fault_plan",
    # observability
    "ObservabilityConfig",
    "configure",
    "observing",
    "summarize",
    "read_trace",
    "TraceSummary",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleInstanceError",
    "MechanismError",
]
