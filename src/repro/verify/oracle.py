"""Independent critical-payment oracle: bisection on the bid-price axis.

Myerson's characterization (the paper's Lemmas 2–3) says a monotone
mechanism is truthful iff each winner is paid its *critical value* — the
supremum announced price at which its bid still wins, everything else
held fixed.  SSAM's engines compute that value analytically by replaying
the greedy (:func:`repro.core.ssam._critical_payment` and its fast
counterpart); this module recovers the same number **without any engine
internals**, by treating the mechanism as a black-box allocation function
and bisecting the win/lose boundary along the bid's own price axis.

Because the two computations share no code, their agreement (asserted by
the certification suite on hundreds of generated instances, for both the
fast and the reference engine) is the strongest correctness evidence the
repo has for the payment rule — and the safety net that lets future
performance work on the payment path prove it changed nothing.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = ["CriticalPriceBracket", "bisect_critical_price"]

#: An allocation function: instance → winning bid keys.  Payments are
#: irrelevant here, so callers should wire the cheapest payment rule the
#: mechanism supports (the oracle never reads them).
Allocator = Callable[[WSPInstance], frozenset]


@dataclass(frozen=True)
class CriticalPriceBracket:
    """The bisection oracle's verdict for one winning bid.

    Attributes
    ----------
    key:
        The probed bid's ``(seller, index)`` key.
    threshold:
        Midpoint of the final win/lose bracket — the supremum winning
        price up to ``tolerance`` (``inf`` when :attr:`capped`).
    lo / hi:
        The final bracket: the bid still wins at ``lo`` and already
        loses at ``hi``.
    capped:
        True when the bid wins even at the probe ceiling — it is pivotal
        (no competitor can replace it), so its critical value is bounded
        only by the instance's public price-ceiling policy, which the
        oracle deliberately does not model.
    evaluations:
        How many allocation calls the probe consumed.
    """

    key: tuple[int, int]
    threshold: float
    lo: float
    hi: float
    capped: bool
    evaluations: int


def bisect_critical_price(
    allocate: Allocator,
    instance: WSPInstance,
    key: tuple[int, int],
    *,
    probe_ceiling: float | None = None,
    tolerance: float = 1e-6,
    max_iterations: int = 80,
) -> CriticalPriceBracket:
    """Bisect the supremum price at which bid ``key`` still wins.

    Requires the bid to win at its announced price (it should come from a
    real outcome's winner list) — that win anchors the bracket's low end;
    the probe ceiling anchors the high end.  Monotonicity of the
    allocation (Lemma 2) is what makes the win predicate a step function
    of the price, hence bisectable; the monotonicity property check
    certifies that premise separately.

    Parameters
    ----------
    allocate:
        Black-box allocation: ``instance → frozenset of winning keys``.
    probe_ceiling:
        Upper end of the search.  Defaults to a price strictly above any
        value the engines can pay (``size · effective_ceiling`` is their
        pivotal cap), so "wins even here" cleanly identifies pivotal bids.
    tolerance:
        Absolute bracket width at which bisection stops.
    """
    bid = instance.bid_by_key(key)
    if probe_ceiling is None:
        probe_ceiling = bid.size * instance.effective_ceiling * 1.25 + 1.0
    if probe_ceiling <= bid.price:
        raise ConfigurationError(
            f"probe ceiling {probe_ceiling} must exceed the bid's "
            f"announced price {bid.price}"
        )
    evaluations = 0

    def wins(price: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        return key in allocate(instance.perturb_bid(key, price))

    if not wins(bid.price):
        raise ConfigurationError(
            f"bid {key} does not win at its announced price {bid.price}; "
            "the oracle must be anchored on a real winner"
        )
    if wins(probe_ceiling):
        return CriticalPriceBracket(
            key=key,
            threshold=math.inf,
            lo=probe_ceiling,
            hi=math.inf,
            capped=True,
            evaluations=evaluations,
        )
    lo, hi = bid.price, probe_ceiling
    for _ in range(max_iterations):
        if hi - lo <= tolerance:
            break
        mid = 0.5 * (lo + hi)
        if wins(mid):
            lo = mid
        else:
            hi = mid
    return CriticalPriceBracket(
        key=key,
        threshold=0.5 * (lo + hi),
        lo=lo,
        hi=hi,
        capped=False,
        evaluations=evaluations,
    )
