"""The certification driver: registry mechanism → CertificationReport.

:func:`certify` takes any registered mechanism *by name*, generates a
seeded batch of market instances (the paper's Section V.A distribution,
scaled down for probe budgets), runs every applicable property check
from :mod:`repro.verify.properties`, and folds the evidence into one
:class:`~repro.verify.report.CertificationReport`.  The report's
``conforms`` flag compares the verdicts against the registry spec's
declared :attr:`~repro.core.registry.MechanismSpec.claims` — in both
directions: a claimed property must PASS, and an unclaimed property's
FAIL is recorded as expected rather than punished.

``single`` mechanisms get the full battery (monotonicity, critical
payments vs. the bisection oracle, misreport sweeps, IR, feasibility,
the LP approximation envelope); ``online`` mechanisms are driven over
whole generated horizons and certified for per-round feasibility,
capacity discipline, and IR; ``horizon`` benchmarks have no incentive
story to certify and are rejected.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.core.registry import (
    CERTIFIABLE_PROPERTIES,
    MechanismSpec,
    get_spec,
    list_mechanisms,
    make_online,
)
from repro.core.ssam import PaymentRule
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.verify.properties import (
    SINGLE_ROUND_CHECKS,
    CheckSettings,
    MechanismUnderTest,
)
from repro.verify.report import (
    CertificationReport,
    PropertyResult,
    PropertyStatus,
    Violation,
    _result_from_violations,
)
from repro.workload.bidgen import (
    MarketConfig,
    ensure_online_feasible,
    generate_horizon,
    generate_round,
)

__all__ = ["certify", "certify_all", "certifiable_mechanisms", "PROPERTY_ORDER"]

#: Report order — cheap structural checks first, counterfactual probes last.
PROPERTY_ORDER = (
    "feasibility",
    "individual-rationality",
    "monotonicity",
    "critical-payment",
    "truthfulness",
    "approximation",
)

#: Properties the online horizon driver can evaluate; the single-round
#: counterfactual probes are meaningless online (round ``t``'s scaled
#: prices depend on the whole history before it).
ONLINE_PROPERTIES = ("feasibility", "individual-rationality")

_DEFAULT_MARKET = MarketConfig(n_sellers=8, n_buyers=3, bids_per_seller=2)
_ONLINE_ROUNDS = 3


def certifiable_mechanisms() -> list[str]:
    """Registry names :func:`certify` accepts (single + online kinds)."""
    return list_mechanisms("single") + list_mechanisms("online")


def _resolve_properties(
    requested: Iterable[str] | None, allowed: Sequence[str]
) -> list[str]:
    if requested is None:
        return list(allowed)
    resolved = []
    for name in requested:
        if name not in CERTIFIABLE_PROPERTIES:
            raise ConfigurationError(
                f"unknown property {name!r}; certifiable: "
                f"{sorted(CERTIFIABLE_PROPERTIES)}"
            )
        if name in allowed:
            resolved.append(name)
    return resolved


def _instance_seed(seed: int, index: int) -> int:
    """A stable per-instance sub-seed (also pins stochastic mechanisms)."""
    return int(np.random.SeedSequence([seed, index]).generate_state(1)[0])


def _base_options(
    spec: MechanismSpec, *, engine: str | None, instance_seed: int
) -> dict[str, Any]:
    """Mechanism options the spec accepts, resolved for one instance."""
    options: dict[str, Any] = {}
    if engine is not None and "engine" in spec.options:
        options["engine"] = engine
    if "seed" in spec.options:
        options["seed"] = instance_seed
    return options


def _mechanism_under_test(
    spec: MechanismSpec, *, engine: str | None, instance_seed: int
) -> MechanismUnderTest:
    """Wire a spec into runner + cheap allocator for the probes."""
    loaded = spec.loader()
    run_options = _base_options(spec, engine=engine, instance_seed=instance_seed)
    allocate_options = dict(run_options)
    if "payment_rule" in spec.options:
        # Allocation is payment-independent; the runner-up rule skips the
        # critical re-runs, making win/lose probes ~|winners|× cheaper.
        allocate_options["payment_rule"] = PaymentRule.ITERATION_RUNNER_UP

    def runner(instance):
        return loaded(instance, **run_options)

    def allocate(instance):
        return loaded(instance, **allocate_options).winner_keys

    return MechanismUnderTest(name=spec.name, runner=runner, allocate=allocate)


def certify(
    mechanism: str,
    *,
    instances: int = 50,
    seed: int = 0,
    properties: Iterable[str] | None = None,
    market: MarketConfig | None = None,
    engine: str | None = None,
    settings: CheckSettings | None = None,
) -> CertificationReport:
    """Certify one registered mechanism against the paper's properties.

    Parameters
    ----------
    mechanism:
        Registry name (``single`` or ``online`` kind).
    instances:
        Batch size: generated single-round markets (or, for online
        mechanisms, generated multi-round horizons).
    seed:
        Root seed; instance ``i`` derives its market and any stochastic
        mechanism's seed from ``(seed, i)``, so reports are reproducible.
    properties:
        Subset of properties to evaluate (default: all applicable).
    market:
        Market generator knobs (default: a small, probe-friendly market).
    engine:
        Forwarded as the ``engine=`` option to mechanisms that accept it
        (SSAM's ``fast`` / ``reference`` selection engines).
    """
    if instances <= 0:
        raise ConfigurationError(
            f"instances must be positive, got {instances}"
        )
    spec = get_spec(mechanism)
    if spec.kind == "horizon":
        raise ConfigurationError(
            f"mechanism {mechanism!r} is a clairvoyant horizon benchmark; "
            "it has no incentive properties to certify"
        )
    market = market or _DEFAULT_MARKET
    settings = settings or CheckSettings()
    if spec.kind == "online":
        return _certify_online(
            spec,
            instances=instances,
            seed=seed,
            properties=properties,
            market=market,
            engine=engine,
            settings=settings,
        )
    return _certify_single(
        spec,
        instances=instances,
        seed=seed,
        properties=properties,
        market=market,
        engine=engine,
        settings=settings,
    )


def _certify_single(
    spec: MechanismSpec,
    *,
    instances: int,
    seed: int,
    properties: Iterable[str] | None,
    market: MarketConfig,
    engine: str | None,
    settings: CheckSettings,
) -> CertificationReport:
    names = _resolve_properties(properties, PROPERTY_ORDER)
    checked = {name: 0 for name in names}
    violations: dict[str, list[Violation]] = {name: [] for name in names}
    skipped_instances = 0
    for index in range(instances):
        rng = np.random.default_rng([seed, index])
        instance = generate_round(market, rng)
        mut = _mechanism_under_test(
            spec, engine=engine, instance_seed=_instance_seed(seed, index)
        )
        try:
            outcome = mut.runner(instance)
        except InfeasibleInstanceError:
            # A typed, loud give-up (e.g. the random baseline stranding a
            # buyer) is allowed; only silent property breaches count.
            skipped_instances += 1
            continue
        for name in names:
            count, found = SINGLE_ROUND_CHECKS[name](
                mut, instance, outcome, index, settings
            )
            checked[name] += count
            violations[name].extend(found)
    results = tuple(
        _result_from_violations(
            name,
            checked=checked[name],
            claimed=name in spec.claims,
            violations=violations[name],
            note=(
                "mechanism publishes no ratio bound"
                if name == "approximation" and checked[name] == 0
                else ""
            ),
        )
        for name in names
    )
    return CertificationReport(
        mechanism=spec.name,
        kind=spec.kind,
        seed=seed,
        instances=instances,
        results=results,
        market=_market_summary(market, skipped_instances),
    )


def _certify_online(
    spec: MechanismSpec,
    *,
    instances: int,
    seed: int,
    properties: Iterable[str] | None,
    market: MarketConfig,
    engine: str | None,
    settings: CheckSettings,
) -> CertificationReport:
    names = _resolve_properties(properties, PROPERTY_ORDER)
    checked = {name: 0 for name in names}
    violations: dict[str, list[Violation]] = {name: [] for name in names}
    for index in range(instances):
        rng = np.random.default_rng([seed, index])
        horizon, capacities = generate_horizon(
            market, rng, rounds=_ONLINE_ROUNDS
        )
        # The paper's evaluation conditions on markets the online
        # mechanism can serve; certification measures properties, not
        # generator luck, so capacities are repaired the same way.
        capacities = ensure_online_feasible(horizon, capacities)
        options = _base_options(
            spec, engine=engine, instance_seed=_instance_seed(seed, index)
        )
        auctioneer = make_online(
            spec.name, capacities, on_infeasible="raise", **options
        )
        rounds = [auctioneer.process_round(instance) for instance in horizon]
        online = auctioneer.finalize()
        if "feasibility" in names:
            for round_result in rounds:
                checked["feasibility"] += 1
                unmet = round_result.outcome.unmet_units
                if unmet > 0:
                    violations["feasibility"].append(Violation(
                        instance_index=index,
                        detail=(
                            f"round {round_result.round_index} left {unmet} "
                            "demand units uncovered"
                        ),
                        observed=float(unmet),
                        expected=0.0,
                    ))
            checked["feasibility"] += 1
            for seller, used in online.capacity_used.items():
                capacity = online.capacities.get(seller)
                if capacity is not None and used > capacity:
                    violations["feasibility"].append(Violation(
                        instance_index=index,
                        detail=(
                            f"seller {seller} committed {used} units over "
                            f"its long-run capacity {capacity}"
                        ),
                        observed=float(used),
                        expected=float(capacity),
                    ))
        if "individual-rationality" in names:
            for round_result in rounds:
                for winner in round_result.outcome.winners:
                    checked["individual-rationality"] += 1
                    if winner.payment < winner.bid.price - settings.tolerance:
                        violations["individual-rationality"].append(Violation(
                            instance_index=index,
                            bid_key=winner.bid.key,
                            detail=(
                                f"round {round_result.round_index} winner "
                                f"paid {winner.payment:.6f} below its "
                                f"selection price {winner.bid.price:.6f}"
                            ),
                            observed=winner.payment,
                            expected=winner.bid.price,
                        ))
    results = []
    for name in names:
        if name not in ONLINE_PROPERTIES:
            results.append(PropertyResult(
                name=name,
                status=PropertyStatus.SKIP,
                checked=0,
                claimed=name in spec.claims,
                note="not applicable to online mechanisms",
            ))
            continue
        results.append(_result_from_violations(
            name,
            checked=checked[name],
            claimed=name in spec.claims,
            violations=violations[name],
        ))
    return CertificationReport(
        mechanism=spec.name,
        kind=spec.kind,
        seed=seed,
        instances=instances,
        results=tuple(results),
        market=_market_summary(market, 0, rounds=_ONLINE_ROUNDS),
    )


def _market_summary(
    market: MarketConfig, skipped_instances: int, *, rounds: int | None = None
) -> dict[str, Any]:
    summary: dict[str, Any] = {
        "n_sellers": market.n_sellers,
        "n_buyers": market.n_buyers,
        "bids_per_seller": market.bids_per_seller,
        "skipped_instances": skipped_instances,
    }
    if rounds is not None:
        summary["rounds"] = rounds
    return summary


def certify_all(
    *,
    instances: int = 25,
    seed: int = 0,
    properties: Iterable[str] | None = None,
    market: MarketConfig | None = None,
    engine: str | None = None,
    settings: CheckSettings | None = None,
) -> list[CertificationReport]:
    """Certify every certifiable registry mechanism (the CI sweep)."""
    return [
        certify(
            name,
            instances=instances,
            seed=seed,
            properties=properties,
            market=market,
            engine=engine,
            settings=settings,
        )
        for name in certifiable_mechanisms()
    ]
