"""The individual economic-property checks behind `repro verify`.

Each function certifies one of the paper's claimed properties on one
concrete instance/outcome pair and returns ``(assertions_evaluated,
violations)``; the certification engine (:mod:`repro.verify.engine`)
aggregates them over a seeded instance batch into a
:class:`~repro.verify.report.CertificationReport`.

Property ↔ theorem map
----------------------
``monotonicity``
    Lemma 2: the allocation rule is monotone — a winner that *lowers*
    its announced price keeps winning.  Checked by re-running the
    allocation on price-perturbed instances.
``critical-payment``
    Lemma 3: each winner's payment equals the supremum price at which
    its bid still wins.  Checked against the engine-independent
    bisection oracle (:mod:`repro.verify.oracle`).
``truthfulness``
    Theorem 4: reporting the true cost is a dominant strategy.  Checked
    by misreport sweeps over a multiplicative price grid in the
    single-parameter projection (the deviating seller's alternative
    bids held out, as in the theorem's proof) — the seller's
    quasi-linear utility must be maximized at the truthful report.
``individual-rationality``
    Theorem 5: every winner is paid at least its announced price.
``feasibility``
    Theorem 2: the winner set covers every buyer's full demand (and, for
    online runs, never exceeds any seller's long-run capacity — checked
    by the engine's horizon driver).
``approximation``
    Theorem 3: the social cost stays within the ``W·Ξ`` (harmonic ×
    price-spread) envelope of the LP-relaxation lower bound from
    :mod:`repro.solvers.lp_relax`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.outcomes import AuctionOutcome, WinningBid
from repro.core.ratios import ssam_ratio_bound
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError, MechanismError
from repro.solvers.lp_relax import solve_lp_relaxation
from repro.verify.oracle import bisect_critical_price
from repro.verify.report import Violation

__all__ = [
    "CheckSettings",
    "MechanismUnderTest",
    "check_monotonicity",
    "check_critical_payment",
    "check_truthfulness",
    "check_individual_rationality",
    "check_feasibility",
    "check_approximation",
    "SINGLE_ROUND_CHECKS",
]


@dataclass(frozen=True)
class CheckSettings:
    """Tunables of the per-instance probes (defaults fit CI budgets).

    The counterfactual probes re-run the mechanism many times per
    instance, so the ``max_*_bids`` caps bound the certification cost
    per instance while the batch size (``--instances``) controls overall
    statistical coverage.
    """

    tolerance: float = 1e-6
    #: |payment − bisection threshold| allowed, absolute and relative.
    payment_match_tolerance: float = 1e-4
    #: Price multipliers for the monotonicity probe (all < 1: lowering
    #: a winner's price must never cost it the win).
    monotonicity_factors: tuple[float, ...] = (0.5, 0.05)
    #: Price multipliers for the misreport sweep (straddling truth).
    misreport_factors: tuple[float, ...] = (0.5, 0.8, 0.95, 1.1, 1.4, 2.0)
    max_monotonicity_bids: int = 3
    max_critical_bids: int = 2
    max_truthfulness_bids: int = 3
    bisection_tolerance: float = 1e-6


@dataclass(frozen=True)
class MechanismUnderTest:
    """A mechanism wired for certification.

    ``runner`` is the full mechanism (real payments); ``allocate`` is
    the cheapest allocation-equivalent run the mechanism supports (the
    oracle and the monotonicity probe never read payments, so e.g. SSAM
    is probed under the runner-up rule to skip the critical re-runs).
    Both must be deterministic for the probes to be meaningful —
    stochastic mechanisms are pinned to a per-instance seed by the
    engine.
    """

    name: str
    runner: Callable[[WSPInstance], AuctionOutcome]
    allocate: Callable[[WSPInstance], frozenset]


CheckResult = tuple[int, list[Violation]]


def _sample_winners(
    outcome: AuctionOutcome, limit: int
) -> Sequence[WinningBid]:
    """The first ``limit`` winners in greedy-acceptance order."""
    return outcome.winners[:limit]


def check_individual_rationality(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Theorem 5: no winner is ever paid below its announced price."""
    violations = []
    for winner in outcome.winners:
        if winner.payment < winner.bid.price - settings.tolerance:
            violations.append(Violation(
                instance_index=index,
                bid_key=winner.bid.key,
                detail=(
                    f"winner paid {winner.payment:.6f} below its announced "
                    f"price {winner.bid.price:.6f}"
                ),
                observed=winner.payment,
                expected=winner.bid.price,
            ))
    return len(outcome.winners), violations


def check_feasibility(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Theorem 2: the winner set is primal feasible (full coverage)."""
    violations = []
    try:
        outcome.verify()
    except (InfeasibleInstanceError, MechanismError) as error:
        violations.append(Violation(
            instance_index=index,
            detail=f"winner set is not primal feasible: {error}",
            observed=float(outcome.unmet_units),
            expected=0.0,
        ))
    return 1, violations


def check_monotonicity(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Lemma 2: lowering a winner's announced price keeps it winning."""
    checked = 0
    violations = []
    for winner in _sample_winners(outcome, settings.max_monotonicity_bids):
        key = winner.bid.key
        for factor in settings.monotonicity_factors:
            lowered = winner.bid.price * factor
            if lowered >= winner.bid.price:
                continue  # only price *cuts* are monotonicity evidence
            checked += 1
            try:
                still_wins = key in mut.allocate(
                    instance.perturb_bid(key, lowered)
                )
            except InfeasibleInstanceError:
                continue  # a stuck counterfactual proves nothing
            if not still_wins:
                violations.append(Violation(
                    instance_index=index,
                    bid_key=key,
                    detail=(
                        f"winner lost after lowering its price from "
                        f"{winner.bid.price:.6f} to {lowered:.6f}"
                    ),
                    observed=lowered,
                    expected=winner.bid.price,
                ))
    return checked, violations


def check_critical_payment(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Lemma 3: payments equal the bisection oracle's critical prices.

    Pivotal winners (still winning at the probe ceiling) have no finite
    bisection threshold; for them the engines apply the public
    price-ceiling cap, so the check degrades to the cap's sanity range
    ``[announced price, size · effective ceiling]``.
    """
    checked = 0
    violations = []
    ceiling = instance.effective_ceiling
    for winner in _sample_winners(outcome, settings.max_critical_bids):
        key = winner.bid.key
        bracket = bisect_critical_price(
            mut.allocate,
            instance,
            key,
            tolerance=settings.bisection_tolerance,
        )
        checked += 1
        if bracket.capped:
            cap = winner.bid.size * ceiling
            if not (
                winner.bid.price - settings.tolerance
                <= winner.payment
                <= cap + settings.tolerance
            ):
                violations.append(Violation(
                    instance_index=index,
                    bid_key=key,
                    detail=(
                        f"pivotal winner paid {winner.payment:.6f} outside "
                        f"the ceiling-cap range [{winner.bid.price:.6f}, "
                        f"{cap:.6f}]"
                    ),
                    observed=winner.payment,
                    expected=cap,
                ))
            continue
        allowed = settings.payment_match_tolerance * max(
            1.0, abs(bracket.threshold)
        )
        if abs(winner.payment - bracket.threshold) > allowed:
            violations.append(Violation(
                instance_index=index,
                bid_key=key,
                detail=(
                    f"payment {winner.payment:.6f} disagrees with the "
                    f"bisection critical price {bracket.threshold:.6f} "
                    f"(bracket [{bracket.lo:.6f}, {bracket.hi:.6f}])"
                ),
                observed=winner.payment,
                expected=bracket.threshold,
            ))
    return checked, violations


def check_truthfulness(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Theorem 4: no unilateral misreport beats the truthful report.

    The sweep certifies the theorem in the model it is proved in — the
    single-parameter projection: each sampled bid is probed on the
    instance with its seller's *alternative* bids held out
    (:meth:`WSPInstance.restrict_seller_to`), so the seller's strategy
    is the one announced price.  (With siblings left in, any
    critical-payment mechanism is gameable: inflating one alternative
    props up the payment of the other — a menu deviation outside
    Theorem 4.)  On the projected instance the truthful baseline is
    re-run (generated bids are truthful, ``price == cost``), then each
    misreport on the grid is run and the seller's quasi-linear utility —
    evaluated at its *true* cost throughout, via
    :meth:`WSPInstance.perturb_bid`'s cost pinning — must not improve.
    """
    checked = 0
    violations = []
    winner_keys = outcome.winner_keys
    # Winners first (they can gain by over-asking under naive payments),
    # then losers (they can gain by under-asking below cost).
    ordered = sorted(
        instance.bids, key=lambda bid: (bid.key not in winner_keys,) + bid.key
    )
    for bid in ordered[: settings.max_truthfulness_bids]:
        projected = instance.restrict_seller_to(bid.key)
        try:
            truthful_utility = mut.runner(projected).utility_of(bid.seller)
        except InfeasibleInstanceError:
            continue  # the projection broke the market; nothing to probe
        for factor in settings.misreport_factors:
            misreport = bid.cost * factor
            if abs(misreport - bid.price) <= settings.tolerance:
                continue
            checked += 1
            try:
                deviated = mut.runner(projected.perturb_bid(bid.key, misreport))
            except InfeasibleInstanceError:
                continue  # the deviation broke the market; no utility gained
            gain = deviated.utility_of(bid.seller) - truthful_utility
            scale = max(1.0, abs(truthful_utility))
            if gain > settings.tolerance * scale:
                violations.append(Violation(
                    instance_index=index,
                    bid_key=bid.key,
                    detail=(
                        f"misreporting {misreport:.6f} instead of the true "
                        f"cost {bid.cost:.6f} raises the seller's utility "
                        f"by {gain:.6f}"
                    ),
                    observed=deviated.utility_of(bid.seller),
                    expected=truthful_utility,
                ))
    return checked, violations


def check_approximation(
    mut: MechanismUnderTest,
    instance: WSPInstance,
    outcome: AuctionOutcome,
    index: int,
    settings: CheckSettings,
) -> CheckResult:
    """Theorem 3: social cost ≤ bound × LP-relaxation lower bound.

    Two assertions per instance: the outcome respects the ratio bound it
    reports, and that reported bound never exceeds the independently
    recomputed ``W·Ξ`` envelope (harmonic number of the demand units ×
    the worst per-seller price spread).  Mechanisms that publish no
    bound (``ratio_bound = nan``) are skipped.
    """
    if not math.isfinite(outcome.ratio_bound):
        return 0, []
    checked = 0
    violations = []
    lp = solve_lp_relaxation(instance)
    envelope = ssam_ratio_bound(instance.total_demand, instance.bids)
    checked += 1
    limit = outcome.ratio_bound * lp.objective
    if outcome.social_cost > limit + settings.tolerance * max(1.0, limit):
        violations.append(Violation(
            instance_index=index,
            detail=(
                f"social cost {outcome.social_cost:.6f} exceeds its ratio "
                f"bound {outcome.ratio_bound:.4f} × LP lower bound "
                f"{lp.objective:.6f}"
            ),
            observed=outcome.social_cost,
            expected=limit,
        ))
    checked += 1
    if (
        math.isfinite(envelope)
        and outcome.ratio_bound > envelope + settings.tolerance
    ):
        violations.append(Violation(
            instance_index=index,
            detail=(
                f"reported ratio bound {outcome.ratio_bound:.6f} exceeds "
                f"the W·Ξ envelope {envelope:.6f}"
            ),
            observed=outcome.ratio_bound,
            expected=envelope,
        ))
    return checked, violations


#: Property name → per-instance checker, in report order.  The engine's
#: online driver handles ``feasibility``/``individual-rationality`` for
#: horizon runs itself; everything here is single-round.
SINGLE_ROUND_CHECKS: dict[str, Callable[..., CheckResult]] = {
    "feasibility": check_feasibility,
    "individual-rationality": check_individual_rationality,
    "monotonicity": check_monotonicity,
    "critical-payment": check_critical_payment,
    "truthfulness": check_truthfulness,
    "approximation": check_approximation,
}
