"""Machine-readable certification reports (the `repro.verify` output).

A :class:`CertificationReport` is the contract between the certification
engine, the CLI, and CI: one :class:`PropertyResult` per economic
property, each carrying its verdict, how many assertions were evaluated,
and the first few concrete :class:`Violation` counterexamples.  Reports
serialize to JSON (``to_dict``/``from_dict``) so CI can archive them as
artifacts and diff a mechanism's behaviour against its declared
:attr:`~repro.core.registry.MechanismSpec.claims` across commits.

Verdict semantics
-----------------
``PASS``
    Every evaluated assertion held.
``FAIL``
    At least one counterexample was found.  A FAIL on a property the
    mechanism does not claim is *expected* (pay-as-bid failing
    truthfulness is the paper's Figure 3(b) point, not a regression) and
    does not break conformance.
``SKIP``
    The property was not evaluated (not applicable to the mechanism's
    kind, or no theoretical bound to check against).  A *claimed*
    property that SKIPs breaks conformance — a claim must be checkable.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.registry import CERTIFIABLE_PROPERTIES
from repro.errors import ConfigurationError

__all__ = [
    "PropertyStatus",
    "Violation",
    "PropertyResult",
    "CertificationReport",
    "REPORT_SCHEMA_VERSION",
]

REPORT_SCHEMA_VERSION = 1
"""Version tag embedded in every serialized report (bump on breaking
changes to the ``to_dict`` schema)."""

#: How many concrete counterexamples a property result retains; the
#: total violation count is always exact (``violation_count``).
MAX_RECORDED_VIOLATIONS = 5


class PropertyStatus(enum.Enum):
    """Verdict of one property over the whole instance batch."""

    PASS = "PASS"
    FAIL = "FAIL"
    SKIP = "SKIP"


@dataclass(frozen=True)
class Violation:
    """One concrete counterexample to an economic property.

    Attributes
    ----------
    instance_index:
        Which generated instance (0-based within the batch) produced it;
        together with the report's seed this reproduces the market.
    bid_key:
        The offending bid's ``(seller, index)`` key, when the violation
        is bid-local (``None`` for instance-level violations such as
        uncovered demand).
    detail:
        Human-readable description of what went wrong.
    observed / expected:
        The measured and required quantities, when numeric (``None``
        otherwise); e.g. the engine payment vs. the bisection threshold.
    """

    instance_index: int
    detail: str
    bid_key: tuple[int, int] | None = None
    observed: float | None = None
    expected: float | None = None

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "instance_index": self.instance_index,
            "detail": self.detail,
            "bid_key": list(self.bid_key) if self.bid_key else None,
            "observed": self.observed,
            "expected": self.expected,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "Violation":
        """Rebuild a violation from its :meth:`to_dict` form."""
        key = data.get("bid_key")
        return Violation(
            instance_index=int(data["instance_index"]),
            detail=str(data["detail"]),
            bid_key=(int(key[0]), int(key[1])) if key else None,
            observed=data.get("observed"),
            expected=data.get("expected"),
        )


@dataclass(frozen=True)
class PropertyResult:
    """One property's verdict over the certified instance batch."""

    name: str
    status: PropertyStatus
    checked: int
    claimed: bool
    violation_count: int = 0
    violations: tuple[Violation, ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        if self.name not in CERTIFIABLE_PROPERTIES:
            raise ConfigurationError(
                f"unknown property {self.name!r}; certifiable: "
                f"{sorted(CERTIFIABLE_PROPERTIES)}"
            )

    @property
    def conforms(self) -> bool:
        """Whether this result is consistent with the mechanism's claim.

        Claimed properties must PASS (a claimed SKIP is a broken claim);
        unclaimed properties conform whatever their verdict — their FAILs
        are recorded as expected, not punished.
        """
        if not self.claimed:
            return True
        return self.status is PropertyStatus.PASS

    @property
    def expected_failure(self) -> bool:
        """A FAIL on an unclaimed property (informative, never gating)."""
        return self.status is PropertyStatus.FAIL and not self.claimed

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "status": self.status.value,
            "checked": self.checked,
            "claimed": self.claimed,
            "conforms": self.conforms,
            "violation_count": self.violation_count,
            "violations": [v.to_dict() for v in self.violations],
            "note": self.note,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "PropertyResult":
        """Rebuild a property result from its :meth:`to_dict` form."""
        return PropertyResult(
            name=str(data["name"]),
            status=PropertyStatus(data["status"]),
            checked=int(data["checked"]),
            claimed=bool(data["claimed"]),
            violation_count=int(data.get("violation_count", 0)),
            violations=tuple(
                Violation.from_dict(v) for v in data.get("violations", ())
            ),
            note=str(data.get("note", "")),
        )


def _result_from_violations(
    name: str,
    *,
    checked: int,
    claimed: bool,
    violations: Sequence[Violation],
    note: str = "",
) -> PropertyResult:
    """Fold raw violations into a :class:`PropertyResult` verdict."""
    if checked == 0:
        return PropertyResult(
            name=name,
            status=PropertyStatus.SKIP,
            checked=0,
            claimed=claimed,
            note=note or "no assertions evaluated",
        )
    status = PropertyStatus.FAIL if violations else PropertyStatus.PASS
    return PropertyResult(
        name=name,
        status=status,
        checked=checked,
        claimed=claimed,
        violation_count=len(violations),
        violations=tuple(violations[:MAX_RECORDED_VIOLATIONS]),
        note=note,
    )


@dataclass(frozen=True)
class CertificationReport:
    """Certification of one mechanism against the paper's properties.

    ``conforms`` is the CI gate: every property the registry spec
    *claims* must PASS; unclaimed properties may fail freely (their
    failures are surfaced through :attr:`expected_failures`).
    """

    mechanism: str
    kind: str
    seed: int
    instances: int
    results: tuple[PropertyResult, ...]
    market: Mapping[str, object] = field(default_factory=dict)

    @property
    def conforms(self) -> bool:
        """Whether every claimed property PASSed (the CI gate)."""
        return all(result.conforms for result in self.results)

    @property
    def expected_failures(self) -> tuple[str, ...]:
        """Unclaimed properties that failed, as the claims predicted."""
        return tuple(
            result.name for result in self.results if result.expected_failure
        )

    def result_for(self, name: str) -> PropertyResult:
        """The result for property ``name`` (ConfigurationError if absent)."""
        for result in self.results:
            if result.name == name:
                return result
        raise ConfigurationError(
            f"report for {self.mechanism!r} has no property {name!r}; "
            f"present: {', '.join(r.name for r in self.results)}"
        )

    def to_dict(self) -> dict:
        """One JSON-compatible schema for CI artifacts and the CLI."""
        return {
            "kind": "certification",
            "schema_version": REPORT_SCHEMA_VERSION,
            "mechanism": self.mechanism,
            "mechanism_kind": self.kind,
            "seed": self.seed,
            "instances": self.instances,
            "conforms": self.conforms,
            "expected_failures": list(self.expected_failures),
            "market": dict(self.market),
            "results": [result.to_dict() for result in self.results],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "CertificationReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        if data.get("kind") != "certification":
            raise ConfigurationError(
                f"serialized report has kind {data.get('kind')!r}, "
                "expected 'certification'"
            )
        version = data.get("schema_version")
        if version != REPORT_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported report schema version {version!r} "
                f"(this build reads version {REPORT_SCHEMA_VERSION})"
            )
        return CertificationReport(
            mechanism=str(data["mechanism"]),
            kind=str(data["mechanism_kind"]),
            seed=int(data["seed"]),
            instances=int(data["instances"]),
            results=tuple(
                PropertyResult.from_dict(r) for r in data["results"]
            ),
            market=dict(data.get("market", {})),
        )

    def render(self) -> str:
        """Plain-text verdict table for the CLI."""
        lines = [
            f"certification: {self.mechanism} ({self.kind}) — "
            f"{self.instances} instances, seed {self.seed}",
        ]
        header = f"  {'property':<24} {'status':<6} {'checked':>7}  verdict"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for result in self.results:
            if result.claimed:
                verdict = "ok" if result.conforms else "REGRESSION"
            elif result.status is PropertyStatus.FAIL:
                verdict = "expected failure"
            else:
                verdict = "unclaimed"
            lines.append(
                f"  {result.name:<24} {result.status.value:<6} "
                f"{result.checked:>7}  {verdict}"
            )
            for violation in result.violations[:2]:
                lines.append(f"      #{violation.instance_index}: "
                             f"{violation.detail}")
        lines.append(
            f"  => {'CONFORMS' if self.conforms else 'DOES NOT CONFORM'} "
            "to declared claims"
        )
        return "\n".join(lines)
