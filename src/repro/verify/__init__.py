"""Economic-property certification for registered mechanisms.

The paper proves SSAM truthful (Theorem 4), individually rational
(Theorem 5), and H(n)·Ξ-approximate (Theorem 3); this package turns
those theorems into executable certificates.  :func:`certify` runs any
registry mechanism over a seeded instance batch, checks each property
empirically (including an engine-independent bisection oracle for
critical payments), and reports conformance against the mechanism's
declared :attr:`~repro.core.registry.MechanismSpec.claims`.

Typical usage::

    from repro.verify import certify

    report = certify("ssam", instances=50, seed=7)
    assert report.conforms
    print(report.render())

or from the shell: ``python -m repro verify --mechanism ssam``.
"""

from repro.verify.engine import (
    PROPERTY_ORDER,
    certifiable_mechanisms,
    certify,
    certify_all,
)
from repro.verify.oracle import CriticalPriceBracket, bisect_critical_price
from repro.verify.properties import CheckSettings, MechanismUnderTest
from repro.verify.report import (
    REPORT_SCHEMA_VERSION,
    CertificationReport,
    PropertyResult,
    PropertyStatus,
    Violation,
)

__all__ = [
    "certify",
    "certify_all",
    "certifiable_mechanisms",
    "PROPERTY_ORDER",
    "CertificationReport",
    "PropertyResult",
    "PropertyStatus",
    "Violation",
    "REPORT_SCHEMA_VERSION",
    "CheckSettings",
    "MechanismUnderTest",
    "CriticalPriceBracket",
    "bisect_critical_price",
]
