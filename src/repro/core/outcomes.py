"""Result objects returned by the auction mechanisms.

These are deliberately rich: the benchmark harness, the economics audits,
and the online framework all read from the same outcome types, so every
quantity the paper plots (social cost, payments, per-winner prices,
coverage, ratio bounds) is available as a property instead of being
recomputed ad hoc at call sites.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bids import Bid
from repro.core.duals import DualSolution
from repro.core.wsp import WSPInstance
from repro.errors import MechanismError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → core)
    from repro.faults.report import RoundResilience

__all__ = ["WinningBid", "AuctionOutcome", "RoundResult", "OnlineOutcome"]

OUTCOME_SCHEMA_VERSION = 1
"""Version tag embedded in every serialized outcome (bump on breaking
changes to the ``to_dict`` schema)."""


def _key_str(key: tuple[int, int]) -> str:
    """Encode a ``(seller, index)`` bid key as a JSON-safe mapping key."""
    return f"{key[0]}:{key[1]}"


def _key_from_str(text: str) -> tuple[int, int]:
    seller, _, index = text.partition(":")
    return int(seller), int(index)


@dataclass(frozen=True)
class WinningBid:
    """One accepted bid, its payment, and its greedy-selection context.

    Attributes
    ----------
    bid:
        The accepted bid (with the price the selection actually used —
        under MSOA this is the *scaled* price ``∇ᵗᵢⱼ``).
    payment:
        The remuneration ``pᵗᵢ`` paid to the seller.
    iteration:
        The greedy iteration (0-based) at which the bid was selected.
    marginal_utility:
        ``Uᵢⱼ(𝔼ᵗ)`` — demand units the bid contributed when selected.
    average_price:
        ``∇ᵢⱼ/Uᵢⱼ(𝔼ᵗ)`` — the greedy's selection key for the bid.
    original_price:
        The unscaled announced price ``Jᵗᵢⱼ`` (equals ``bid.price`` for a
        standalone single-stage auction).
    """

    bid: Bid
    payment: float
    iteration: int
    marginal_utility: int
    average_price: float
    original_price: float

    def __post_init__(self) -> None:
        if self.payment < 0:
            raise MechanismError(
                f"negative payment {self.payment} for bid {self.bid.key}"
            )
        if self.marginal_utility <= 0:
            raise MechanismError(
                f"winning bid {self.bid.key} contributed no demand units"
            )

    @property
    def utility(self) -> float:
        """The seller's quasi-linear utility ``payment − true cost`` (Eq. 3)."""
        return self.payment - self.bid.cost

    # Bid delegation: a WinningBid can stand in wherever a plain Bid is
    # expected (``verify_solution``, reporting code iterating winners), so
    # call sites need not reach through ``.bid`` for the common fields.
    @property
    def key(self) -> tuple[int, int]:
        """The underlying bid's ``(seller, index)`` key."""
        return self.bid.key

    @property
    def seller(self) -> int:
        """The underlying bid's seller id."""
        return self.bid.seller

    @property
    def covered(self) -> frozenset[int]:
        """The underlying bid's covered buyer set."""
        return self.bid.covered

    @property
    def price(self) -> float:
        """The underlying bid's (selection) price."""
        return self.bid.price

    @property
    def size(self) -> int:
        """The underlying bid's coverage size ``|Ŝᵢⱼ|``."""
        return self.bid.size

    @property
    def cost(self) -> float:
        """The underlying bid's private cost."""
        return self.bid.cost

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "bid": self.bid.to_dict(),
            "payment": self.payment,
            "iteration": self.iteration,
            "marginal_utility": self.marginal_utility,
            "average_price": self.average_price,
            "original_price": self.original_price,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "WinningBid":
        """Rebuild a winning bid from its :meth:`to_dict` form."""
        return WinningBid(
            bid=Bid.from_dict(data["bid"]),
            payment=float(data["payment"]),
            iteration=int(data["iteration"]),
            marginal_utility=int(data["marginal_utility"]),
            average_price=float(data["average_price"]),
            original_price=float(data["original_price"]),
        )


@dataclass(frozen=True)
class AuctionOutcome:
    """The full result of one single-stage auction run.

    Every single-round mechanism in the registry (SSAM, VCG, the pricing
    and greedy baselines) emits this type; :attr:`mechanism` records which
    one produced it so saved outcomes stay self-describing.
    """

    instance: WSPInstance
    winners: tuple[WinningBid, ...]
    duals: DualSolution
    ratio_bound: float
    payment_rule: str
    iterations: int
    mechanism: str = "ssam"

    @property
    def winner_keys(self) -> frozenset[tuple[int, int]]:
        """Keys ``(seller, index)`` of every accepted bid."""
        return frozenset(w.bid.key for w in self.winners)

    @property
    def winning_sellers(self) -> frozenset[int]:
        """Sellers who won (at most one bid each)."""
        return frozenset(w.bid.seller for w in self.winners)

    @property
    def social_cost(self) -> float:
        """``Σ`` winning original prices — the paper's social cost (Def. 4)."""
        return float(sum(w.original_price for w in self.winners))

    @property
    def selection_cost(self) -> float:
        """``Σ`` winning selection prices (scaled prices under MSOA)."""
        return float(sum(w.bid.price for w in self.winners))

    @property
    def total_payment(self) -> float:
        """Aggregate remuneration the platform pays out."""
        return float(sum(w.payment for w in self.winners))

    @property
    def coverage(self) -> dict[int, int]:
        """Units granted per buyer by the winning bids (capped at demand)."""
        granted = {b: 0 for b in self.instance.buyers}
        for winner in self.winners:
            for buyer in winner.bid.covered:
                if buyer in granted:
                    granted[buyer] += 1
        return granted

    @property
    def payments(self) -> dict[tuple[int, int], float]:
        """Payment per winning bid key (VCG's old result exposed this)."""
        return {w.bid.key: w.payment for w in self.winners}

    @property
    def unmet_units(self) -> int:
        """Demand units the winner set leaves uncovered (0 when complete).

        Incomplete mechanisms (posted price with a too-low price) can
        leave demand unmet; complete mechanisms always report 0 here.
        """
        coverage = self.coverage
        return sum(
            max(0, self.instance.demand[b] - coverage[b])
            for b in self.instance.buyers
        )

    @property
    def satisfied(self) -> bool:
        """Whether the winner set covers every buyer's full demand."""
        return self.unmet_units == 0

    def payment_of(self, seller: int) -> float:
        """Payment to ``seller`` (0 if it did not win)."""
        for winner in self.winners:
            if winner.bid.seller == seller:
                return winner.payment
        return 0.0

    def utility_of(self, seller: int) -> float:
        """Quasi-linear utility of ``seller`` (0 for losers, Eq. 3)."""
        for winner in self.winners:
            if winner.bid.seller == seller:
                return winner.utility
        return 0.0

    def verify(self) -> None:
        """Re-check primal feasibility of the winner set (Theorem 2)."""
        self.instance.verify_solution([w.bid for w in self.winners])

    def to_dict(self) -> dict:
        """One JSON-compatible schema for every outcome consumer.

        Experiment storage, the CLI, and the engine bench harness all
        serialize through this method (and :meth:`from_dict`) instead of
        picking attributes ad hoc, so saved outcomes stay comparable
        across tools and releases.
        """
        return {
            "kind": "auction",
            "schema_version": OUTCOME_SCHEMA_VERSION,
            "mechanism": self.mechanism,
            "instance": self.instance.to_dict(),
            "winners": [w.to_dict() for w in self.winners],
            "duals": self.duals.to_dict(),
            "ratio_bound": self.ratio_bound,
            "payment_rule": self.payment_rule,
            "iterations": self.iterations,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "AuctionOutcome":
        """Rebuild an outcome from its :meth:`to_dict` form."""
        _check_schema(data, "auction")
        instance = WSPInstance.from_dict(data["instance"])
        return AuctionOutcome(
            instance=instance,
            winners=tuple(WinningBid.from_dict(w) for w in data["winners"]),
            duals=DualSolution.from_dict(data["duals"], instance),
            ratio_bound=float(data["ratio_bound"]),
            payment_rule=str(data["payment_rule"]),
            iterations=int(data["iterations"]),
            # Pre-tag files (schema 1 before the registry) were all SSAM.
            mechanism=str(data.get("mechanism", "ssam")),
        )


@dataclass(frozen=True)
class RoundResult:
    """One round of the multi-stage online mechanism (MSOA).

    Wraps the round's single-stage outcome together with the original
    (unscaled) bids, the scaled prices used for selection, and the dual
    state ``ψ`` after the round.
    """

    round_index: int
    outcome: AuctionOutcome
    original_bids: Mapping[tuple[int, int], Bid]
    scaled_prices: Mapping[tuple[int, int], float]
    psi_after: Mapping[int, float]
    capacity_used: Mapping[int, int]
    resilience: "RoundResilience | None" = None

    @property
    def degraded(self) -> bool:
        """Whether the round ended with unserved demand (fault path only)."""
        return self.resilience is not None and self.resilience.degraded

    @property
    def social_cost(self) -> float:
        """Round social cost at *original* prices ``Σ Jᵗᵢⱼ xᵗᵢⱼ``."""
        return float(
            sum(
                self.original_bids[w.bid.key].price
                for w in self.outcome.winners
            )
        )

    @property
    def total_payment(self) -> float:
        """Round payments (computed by SSAM on the scaled prices)."""
        return self.outcome.total_payment

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`).

        The ``resilience`` key is emitted only when the round actually saw
        fault activity — fault-free rounds serialize byte-identically to
        rounds produced before :mod:`repro.faults` existed, which is how
        the null-plan guard tests can compare files directly.
        """
        data = {
            "round_index": self.round_index,
            "outcome": self.outcome.to_dict(),
            "original_bids": [
                bid.to_dict() for _, bid in sorted(self.original_bids.items())
            ],
            "scaled_prices": {
                _key_str(key): price
                for key, price in sorted(self.scaled_prices.items())
            },
            "psi_after": {str(s): psi for s, psi in self.psi_after.items()},
            "capacity_used": {
                str(s): used for s, used in self.capacity_used.items()
            },
        }
        if self.resilience is not None:
            data["resilience"] = self.resilience.to_dict()
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "RoundResult":
        """Rebuild a round result from its :meth:`to_dict` form."""
        original = [Bid.from_dict(item) for item in data["original_bids"]]
        resilience = None
        if data.get("resilience") is not None:
            from repro.faults.report import RoundResilience

            resilience = RoundResilience.from_dict(data["resilience"])
        return RoundResult(
            round_index=int(data["round_index"]),
            outcome=AuctionOutcome.from_dict(data["outcome"]),
            original_bids={bid.key: bid for bid in original},
            scaled_prices={
                _key_from_str(key): float(price)
                for key, price in data["scaled_prices"].items()
            },
            psi_after={int(s): float(p) for s, p in data["psi_after"].items()},
            capacity_used={
                int(s): int(u) for s, u in data["capacity_used"].items()
            },
            resilience=resilience,
        )


@dataclass(frozen=True)
class OnlineOutcome:
    """The aggregate result of a full MSOA horizon."""

    rounds: tuple[RoundResult, ...]
    capacities: Mapping[int, int]
    alpha: float
    beta: float
    competitive_bound: float
    mechanism: str = "msoa"

    @property
    def social_cost(self) -> float:
        """Long-run social cost ``Σ_t Σ Jᵗᵢⱼ xᵗᵢⱼ`` (the paper's objective 7)."""
        return float(sum(r.social_cost for r in self.rounds))

    @property
    def total_payment(self) -> float:
        """Long-run payments across all rounds."""
        return float(sum(r.total_payment for r in self.rounds))

    @property
    def capacity_used(self) -> dict[int, int]:
        """Final cumulative coverage units consumed per seller (``χᵢ``)."""
        if not self.rounds:
            return {}
        return dict(self.rounds[-1].capacity_used)

    @property
    def winners_per_round(self) -> list[int]:
        """Number of accepted bids in each round."""
        return [len(r.outcome.winners) for r in self.rounds]

    @property
    def degraded_rounds(self) -> list[int]:
        """Indices of rounds that ended with unserved demand (fault runs)."""
        return [r.round_index for r in self.rounds if r.degraded]

    @property
    def uncovered_units(self) -> int:
        """Total demand units the horizon left unserved (0 when fault-free)."""
        return sum(
            r.resilience.uncovered_units
            for r in self.rounds
            if r.resilience is not None
        )

    @property
    def fault_events(self) -> int:
        """Total faults injected across the horizon (0 when fault-free)."""
        return sum(
            len(r.resilience.events)
            for r in self.rounds
            if r.resilience is not None
        )

    def verify_capacities(self) -> None:
        """Assert no seller exceeded its long-run capacity ``Θᵢ``."""
        for seller, used in self.capacity_used.items():
            capacity = self.capacities.get(seller)
            if capacity is not None and used > capacity:
                raise MechanismError(
                    f"seller {seller} used {used} units, exceeding capacity "
                    f"{capacity}"
                )

    def to_dict(self) -> dict:
        """One JSON-compatible schema for every outcome consumer.

        The online counterpart of :meth:`AuctionOutcome.to_dict`; note
        ``beta`` may be infinite (an unconstrained horizon), which the
        JSON writer emits as ``Infinity`` and :meth:`from_dict` reads
        back losslessly.
        """
        return {
            "kind": "online",
            "schema_version": OUTCOME_SCHEMA_VERSION,
            "mechanism": self.mechanism,
            "rounds": [r.to_dict() for r in self.rounds],
            "capacities": {str(s): cap for s, cap in self.capacities.items()},
            "alpha": self.alpha,
            "beta": self.beta,
            "competitive_bound": self.competitive_bound,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "OnlineOutcome":
        """Rebuild an online outcome from its :meth:`to_dict` form."""
        _check_schema(data, "online")
        return OnlineOutcome(
            rounds=tuple(RoundResult.from_dict(r) for r in data["rounds"]),
            capacities={int(s): int(c) for s, c in data["capacities"].items()},
            alpha=float(data["alpha"]),
            beta=float(data["beta"]),
            competitive_bound=float(data["competitive_bound"]),
            # Pre-tag files (schema 1 before the registry) were all MSOA.
            mechanism=str(data.get("mechanism", "msoa")),
        )


def _check_schema(data: Mapping, kind: str) -> None:
    found_kind = data.get("kind")
    if found_kind != kind:
        raise MechanismError(
            f"serialized outcome has kind {found_kind!r}, expected {kind!r}"
        )
    version = data.get("schema_version")
    if version != OUTCOME_SCHEMA_VERSION:
        raise MechanismError(
            f"unsupported outcome schema version {version!r} "
            f"(this build reads version {OUTCOME_SCHEMA_VERSION})"
        )
