"""The fast-path auction engine: incremental greedy + parallel payments.

The reference implementation in :mod:`repro.core.ssam` recomputes every
candidate's average-price ratio and rebuilds the stranding guard's
buyer→suppliers map from scratch on every greedy iteration — an O(n·m)
scan nested inside an O(n) loop — and the exact critical-value payment
rule replays that loop once per winner.  On the paper's Figure-4(b)
instances this O(n²m) payment phase dominates the runtime.

This module provides a drop-in fast path with *bit-identical* results:

* :func:`fast_greedy_selection` — the same greedy, driven by the
  incremental :class:`~repro.core.wsp.ActiveBidIndex` bookkeeping and a
  lazy-invalidation heap.  Marginal utilities only ever decrease, so a
  popped heap entry whose recorded utility still matches the index is
  guaranteed to be the true minimum under the reference ordering
  (ratio, price, seller, index); stale entries are refreshed and
  re-queued.  Ties are impossible beyond the key itself because
  ``(seller, index)`` is unique, so the selection sequence — and with it
  winners, payments, and dual certificates — matches the reference loop
  exactly.  The equivalence is pinned by the property tests in
  ``tests/properties/test_engine_equivalence.py``.
* :func:`fast_critical_payment` — the critical-value replay on the same
  incremental machinery.
* :func:`compute_critical_payments` — the per-winner replays are
  independent, so they fan out over a process pool (``parallelism``
  workers; forked on POSIX), falling back to serial execution where a
  pool cannot be used.

Use :func:`repro.api.run_ssam` (``engine="fast"`` is the default) rather
than calling these directly.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.core.bids import Bid
from repro.core.ssam import (
    GreedyStep,
    _residual_feasible,
    _selection_key,
)
from repro.core.wsp import ActiveBidIndex, CoverageState
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS

__all__ = [
    "fast_greedy_selection",
    "fast_critical_payment",
    "compute_critical_payments",
    "resolve_parallelism",
    "validate_parallelism",
    "AUTO_PARALLELISM_THRESHOLD",
    "MAX_AUTO_WORKERS",
]

_SelectionKey = tuple[float, float, int, int]
_HeapEntry = tuple[_SelectionKey, int, int]  # (key, bid_id, utility at push)


def _build_heap(index: ActiveBidIndex) -> list[_HeapEntry]:
    entries: list[_HeapEntry] = []
    for bid_id in index.active_bid_ids():
        utility = index.utility(bid_id)
        if utility > 0:
            bid = index.bids[bid_id]
            entries.append(
                (_selection_key(bid.price / utility, bid), bid_id, utility)
            )
    heapq.heapify(entries)
    return entries


def _pop_fresh(
    heap: list[_HeapEntry], index: ActiveBidIndex
) -> _HeapEntry | None:
    """Pop the candidate with the smallest *current* selection key.

    Entries are pushed with the utility they were keyed at; utilities only
    decrease (ratios only increase), so a popped entry that still matches
    the index is the true minimum, and a stale one is refreshed in place.
    """
    while heap:
        key, bid_id, pushed_utility = heapq.heappop(heap)
        if _OBS.enabled:
            _OBS.metrics.counter("engine.heap_pops").inc()
        if not index.active[bid_id]:
            continue
        utility = index.utility(bid_id)
        if utility != pushed_utility:
            if utility > 0:
                bid = index.bids[bid_id]
                heapq.heappush(
                    heap,
                    (_selection_key(bid.price / utility, bid), bid_id, utility),
                )
            continue
        return key, bid_id, pushed_utility
    return None


def _peek_fresh_key(
    heap: list[_HeapEntry], index: ActiveBidIndex
) -> _SelectionKey | None:
    """The smallest current selection key without consuming the entry."""
    while heap:
        key, bid_id, pushed_utility = heap[0]
        if not index.active[bid_id]:
            heapq.heappop(heap)
            continue
        utility = index.utility(bid_id)
        if utility != pushed_utility:
            heapq.heappop(heap)
            if utility > 0:
                bid = index.bids[bid_id]
                heapq.heappush(
                    heap,
                    (_selection_key(bid.price / utility, bid), bid_id, utility),
                )
            continue
        return key
    return None


def _select_candidate(
    heap: list[_HeapEntry],
    index: ActiveBidIndex,
    *,
    guard_feasibility: bool,
    exact_guard: bool,
) -> tuple[_HeapEntry, _SelectionKey | None] | None:
    """One iteration's choice: the guarded winner and the runner-up key.

    Mirrors the reference loop exactly: candidates are examined in
    ascending key order; guard-stranding ones are passed over; if none is
    safe the overall best is chosen anyway; the runner-up is the next
    candidate *after* the chosen position in the full ordering.
    """
    deferred: list[_HeapEntry] = []
    winner: _HeapEntry | None = None
    while True:
        entry = _pop_fresh(heap, index)
        if entry is None:
            break
        if guard_feasibility and not _passes_guard(
            entry[1], index, exact_guard=exact_guard
        ):
            deferred.append(entry)
            continue
        winner = entry
        break
    if winner is None:
        if not deferred:
            return None
        # No candidate was guard-safe: waive the guard for the iteration
        # (paper-literal behaviour) and take the overall best.
        winner = deferred.pop(0)
        runner_key = deferred[0][0] if deferred else _peek_fresh_key(heap, index)
    else:
        runner_key = _peek_fresh_key(heap, index)
    for entry in deferred:
        heapq.heappush(heap, entry)
    return winner, runner_key


def _passes_guard(
    bid_id: int, index: ActiveBidIndex, *, exact_guard: bool
) -> bool:
    if index.would_strand(bid_id):
        return False
    if exact_guard:
        active = [index.bids[i] for i in index.active_bid_ids()]
        if not _residual_feasible(index.bids[bid_id], active, index.coverage):
            return False
    return True


@profiled("ssam.selection")
def fast_greedy_selection(
    bids: Sequence[Bid],
    demand: Mapping[int, int],
    *,
    require_feasible: bool = True,
    guard_feasibility: bool = True,
    exact_guard: bool = False,
) -> list[GreedyStep]:
    """Incremental-bookkeeping twin of :func:`repro.core.ssam.greedy_selection`.

    Same contract, same trace, same exceptions; only the per-iteration cost
    changes — from rescanning all active bids to touching the bids whose
    utilities actually moved.
    """
    with _OBS.tracer.span("bid-indexing", bids=len(bids)):
        coverage = CoverageState(demand=demand)
        index = ActiveBidIndex(bids, coverage)
        heap = _build_heap(index)
    steps: list[GreedyStep] = []
    iteration = 0
    while not coverage.satisfied:
        selection = _select_candidate(
            heap,
            index,
            guard_feasibility=guard_feasibility,
            exact_guard=exact_guard,
        )
        if selection is None:
            if require_feasible:
                raise InfeasibleInstanceError(
                    f"{coverage.unmet} demand units cannot be covered by the "
                    "remaining bids"
                )
            break
        (key, bid_id, utility), runner_key = selection
        winner = index.bids[bid_id]
        steps.append(
            GreedyStep(
                iteration=iteration,
                bid=winner,
                utility=utility,
                ratio=key[0],
                runner_up_ratio=runner_key[0] if runner_key is not None else None,
                coverage_before=dict(coverage.granted),
            )
        )
        index.apply_win(bid_id)
        index.remove_seller(winner.seller)
        iteration += 1
    return steps


def fast_critical_payment(
    instance,
    winner: Bid,
    *,
    exact_guard: bool = False,
    guard_feasibility: bool = True,
) -> float:
    """Incremental twin of :func:`repro.core.ssam._critical_payment`.

    Replays the greedy with the winner present but priced at +∞ on the
    incremental index and tracks the supremum price at which the winner
    would have displaced a replay selection (ceiling-capped when the
    winner is pivotal).
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    infinite = winner.with_price(math.inf)
    bids = [infinite if b.key == winner.key else b for b in instance.bids]
    winner_id = next(i for i, b in enumerate(bids) if b.key == winner.key)
    coverage = CoverageState(demand=demand)
    index = ActiveBidIndex(bids, coverage)
    heap = _build_heap(index)
    ceiling = instance.effective_ceiling
    threshold = 0.0
    while not coverage.satisfied:
        selection = _select_candidate(
            heap,
            index,
            guard_feasibility=guard_feasibility,
            exact_guard=exact_guard,
        )
        winner_utility = (
            index.utility(winner_id) if index.active[winner_id] else 0
        )
        if selection is None:
            # Replay stuck with demand left over: if the winner could
            # still contribute it is pivotal and ceiling-capped.
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        (key, chosen_id, _), _ = selection
        chosen = index.bids[chosen_id]
        if chosen_id == winner_id:
            # Only the winner serves the remaining demand: pivotal.
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        winner_safe = not guard_feasibility or not index.would_strand(winner_id)
        if winner_safe and guard_feasibility and exact_guard:
            active = [index.bids[i] for i in index.active_bid_ids()]
            winner_safe = _residual_feasible(infinite, active, coverage)
        if winner_utility > 0 and winner_safe:
            threshold = max(threshold, winner_utility * key[0])
        index.apply_win(chosen_id)
        if chosen.seller == winner.seller:
            # A sibling bid of the winner's seller won: the winner is out
            # of the market from here on.
            break
        index.remove_seller(chosen.seller)
    return threshold


# ----------------------------------------------------------------------
# parallel critical payments
# ----------------------------------------------------------------------
# Per-winner replays are independent, so they fan out over a process pool.
# The instance is shipped once per worker through the pool initializer
# (with the default POSIX fork start method it is inherited for free).

_WORKER_CONTEXT: tuple | None = None


def _payment_worker_init(context: tuple) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _payment_worker(winner: Bid) -> float:
    instance, exact_guard, guard_feasibility, use_fast = _WORKER_CONTEXT
    if use_fast:
        return fast_critical_payment(
            instance,
            winner,
            exact_guard=exact_guard,
            guard_feasibility=guard_feasibility,
        )
    from repro.core.ssam import _critical_payment

    return _critical_payment(
        instance,
        winner,
        exact_guard=exact_guard,
        guard_feasibility=guard_feasibility,
    )


AUTO_PARALLELISM_THRESHOLD = 24_000
"""Minimum ``n_bids × n_winners`` work units before ``"auto"`` forks.

Calibrated against ``BENCH_engine.json``: the Figure-4(b) cases (≤150
bids, work units in the hundreds-to-thousands) run 0.08–0.21× under a
pool — process startup swamps the replays — while ``stress_large_n``
(800 bids, ≈10⁵ work units) runs >10× faster.  The threshold sits an
order of magnitude above the losing cases and below the winning one.
"""

MAX_AUTO_WORKERS = 8
"""Ceiling on pool size under ``"auto"`` (payment replays saturate the
memory bus before they saturate a big machine's core count)."""


def validate_parallelism(parallelism) -> None:
    """Fail fast on a bad ``parallelism`` value (``"auto"`` or int ≥ 1)."""
    if parallelism == "auto":
        return
    if isinstance(parallelism, bool) or not isinstance(parallelism, int):
        raise ConfigurationError(
            f"parallelism must be 'auto' or a positive integer, "
            f"got {parallelism!r}"
        )
    if parallelism < 1:
        raise ConfigurationError(
            f"parallelism must be 'auto' or a positive integer, "
            f"got {parallelism}"
        )


def resolve_parallelism(parallelism, *, n_bids: int, n_winners: int) -> int:
    """Turn a ``parallelism`` request into a concrete worker count.

    Explicit integers are honoured as before (the caller opted in or out
    of the pool deliberately).  ``"auto"`` — the default everywhere since
    the serving redesign — picks serial execution whenever the payment
    phase is too small to amortize pool startup, measured in
    ``n_bids × n_winners`` work units (each of the ``n_winners`` critical
    replays rescans up to ``n_bids`` bids), and otherwise caps the pool
    at :data:`MAX_AUTO_WORKERS`, the machine's core count, and the number
    of replays.
    """
    validate_parallelism(parallelism)
    if parallelism != "auto":
        return int(parallelism)
    if n_winners < 2:
        return 1
    if n_bids * n_winners < AUTO_PARALLELISM_THRESHOLD:
        return 1
    return max(2, min(os.cpu_count() or 1, MAX_AUTO_WORKERS, n_winners))


@profiled("ssam.payments")
def compute_critical_payments(
    instance,
    winners: Sequence[Bid],
    *,
    exact_guard: bool = False,
    guard_feasibility: bool = True,
    parallelism: int | str = "auto",
    use_fast: bool = True,
    engine: str | None = None,
    columnar=None,
    trajectory=None,
) -> list[float]:
    """Critical values for every winner, optionally in parallel.

    ``parallelism`` caps the worker count: an explicit integer is used
    as-is (1 = serial), while ``"auto"`` (the default) sizes the pool
    from the instance via :func:`resolve_parallelism`.  The pool path
    preserves winner order; any environment where a process pool cannot
    be created degrades gracefully to the serial path.

    ``engine="columnar"`` dispatches to the batched
    :func:`repro.core.columnar.columnar_critical_payments` kernel
    instead, which shares the greedy prefix across all winners in one
    serial pass (``parallelism`` is ignored there — the batching already
    removes the per-winner replays a pool would distribute).  Pass the
    prebuilt ``columnar`` layout and the main run's ``trajectory``
    (its :class:`~repro.core.ssam.GreedyStep` list) to skip redundant
    rebuild/re-selection work; both default to being derived on demand.
    When ``engine`` is ``None`` (default), ``use_fast`` selects between
    the fast and reference scalar replays as before.
    """
    if engine == "columnar":
        from repro.core.columnar import columnar_critical_payments

        return columnar_critical_payments(
            instance,
            winners,
            exact_guard=exact_guard,
            guard_feasibility=guard_feasibility,
            columnar=columnar,
            trajectory=trajectory,
        )
    workers = min(
        resolve_parallelism(
            parallelism,
            n_bids=len(instance.bids),
            n_winners=len(winners),
        ),
        len(winners),
    )
    if workers > 1:
        context = (instance, exact_guard, guard_feasibility, use_fast)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_payment_worker_init,
                initargs=(context,),
            ) as pool:
                return list(pool.map(_payment_worker, winners, chunksize=4))
        except (OSError, RuntimeError, ValueError):
            pass  # sandboxed / no-fork environments: fall through to serial
    if use_fast:
        return [
            fast_critical_payment(
                instance,
                winner,
                exact_guard=exact_guard,
                guard_feasibility=guard_feasibility,
            )
            for winner in winners
        ]
    from repro.core.ssam import _critical_payment

    return [
        _critical_payment(
            instance,
            winner,
            exact_guard=exact_guard,
            guard_feasibility=guard_feasibility,
        )
        for winner in winners
    ]
