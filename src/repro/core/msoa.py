"""MSOA — the Multi-Stage Online Auction (Algorithm 2).

MSOA decomposes the online winner-selection problem into one SSAM run per
round, joined by two pieces of per-seller state:

* ``χᵢ`` — coverage units the seller has already committed (line 12);
* ``ψᵢ`` — a dual "scarcity price" that grows multiplicatively each time
  the seller wins (line 11), so a seller whose long-run capacity ``Θᵢ`` is
  nearly depleted looks *more expensive* to the greedy selection.

Each round, bids that would overflow a seller's remaining capacity are
excluded outright (line 5), and surviving bids enter SSAM at the scaled
price ``∇ᵗᵢⱼ = Jᵗᵢⱼ + |Sᵗᵢⱼ|·ψᵢᵗ⁻¹`` (line 8).  The multiplicative update
is what yields the ``αβ/(β−1)`` competitive ratio of Theorem 7, with
``α`` the single-stage approximation ratio and ``β = min Θᵢ/|Sᵗᵢⱼ|``.

Winners are paid during each round's SSAM execution (on the scaled
prices), which preserves individual rationality — a scaled price is never
below the announced price, and the critical payment is never below the
scaled price.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.core.bids import Bid
from repro.core.mechanism import resolve_fault_args
from repro.core.outcomes import OnlineOutcome, RoundResult
from repro.core.ratios import (
    capacity_margin,
    msoa_competitive_bound,
    ssam_ratio_bound,
)
from repro.core.engine import validate_parallelism
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → core)
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan
    from repro.faults.policies import ResiliencePolicy

__all__ = ["MultiStageOnlineAuction", "run_msoa"]


class MultiStageOnlineAuction:
    """Stateful online auctioneer processing rounds as they arrive.

    Parameters
    ----------
    capacities:
        ``Θᵢ`` per seller.  Sellers absent from the map are treated as
        capacity-unconstrained: they are never excluded and their scarcity
        price stays zero (the ``Θ → ∞`` limit of the update rule).
    alpha:
        The single-stage approximation ratio used in the ψ update (the
        paper's ``π``/``α``).  ``None`` (default) estimates it from the
        first round's Theorem-3 bound ``W·Ξ``.
    payment_rule:
        Forwarded to each round's SSAM run.
    parallelism:
        Worker processes for each round's critical-payment replays
        (forwarded to :func:`~repro.core.ssam.run_ssam`).  ``"auto"``
        (default) sizes the pool per round from the instance; explicit
        integers are honoured as before.
    guard:
        Whether rounds run with the stranding-lookahead feasibility
        guard (forwarded to :func:`~repro.core.ssam.run_ssam`).
    engine:
        Selection engine for every round: ``"fast"`` (default,
        incremental), ``"columnar"`` (numpy-vectorized kernels with
        round-to-round layout carry), or ``"reference"`` (the naive
        oracle loop).
    columnar_incremental:
        ``engine="columnar"`` only: carry the columnar layout across
        rounds and refresh just the ψ-scaled price column whenever a
        round's market *structure* (bids' sellers/indices/coverage and
        the positive demand map) is unchanged, instead of rebuilding the
        index arrays from scratch.  Outcomes are bit-identical either
        way (an incrementality test enforces it); disable only to
        benchmark the cold-rebuild path.
    on_infeasible:
        ``"raise"`` (default) propagates an infeasible round;
        ``"skip"`` records the round with an empty winner set instead;
        ``"best_effort"`` clamps each buyer's demand to what the round's
        admissible bids can still cover and serves that — the honest
        accounting for experiment sweeps, where capacity depletion should
        shrink service, not erase the round's cost.
    faults:
        A :class:`~repro.faults.models.FaultPlan` (or prepared
        :class:`~repro.faults.injector.FaultInjector`) to execute over
        the horizon.  ``None`` (default) and null plans take the exact
        unfaulted code path — outcomes are bit-identical to a run
        without the parameter.
    resilience:
        The :class:`~repro.faults.policies.ResiliencePolicy` governing
        retries, backoff, bid timeouts, degradation, and demand
        carryover when ``faults`` is active.  Defaults to
        :data:`~repro.faults.policies.DEFAULT_POLICY`; rejected without
        ``faults``.
    retain_rounds:
        Whether :meth:`process_round` keeps every :class:`RoundResult`
        (default ``True``, required by :meth:`finalize`'s horizon view).
        ``False`` is the bounded-memory streaming mode: ψ/χ state still
        evolves normally and each call still returns its result, but
        nothing is retained — a 10^6-demand-unit horizon holds one round
        of bids in memory at a time.  :attr:`rounds` stays empty and
        :meth:`finalize` sees an empty horizon in this mode.
    """

    def __init__(
        self,
        capacities: Mapping[int, int],
        *,
        alpha: float | None = None,
        payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
        parallelism: int | str = "auto",
        guard: bool = True,
        engine: str = "fast",
        columnar_incremental: bool = True,
        on_infeasible: str = "raise",
        faults: "FaultPlan | FaultInjector | None" = None,
        resilience: "ResiliencePolicy | None" = None,
        retain_rounds: bool = True,
    ) -> None:
        for seller, capacity in capacities.items():
            if capacity <= 0:
                raise ConfigurationError(
                    f"seller {seller} capacity must be positive, got {capacity}"
                )
        if on_infeasible not in ("raise", "skip", "best_effort"):
            raise ConfigurationError(
                "on_infeasible must be 'raise', 'skip' or 'best_effort', "
                f"got {on_infeasible!r}"
            )
        if alpha is not None and alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        validate_parallelism(parallelism)
        self._capacities = dict(capacities)
        self._alpha = alpha
        self._payment_rule = payment_rule
        self._ssam_options = {
            "parallelism": parallelism,
            "guard": guard,
            "engine": engine,
        }
        self._on_infeasible = on_infeasible
        self._columnar_incremental = bool(columnar_incremental)
        self._columnar_cache = None
        self._injector, self._policy = resolve_fault_args(faults, resilience)
        self._carry: dict[int, int] = {}
        self._psi: dict[int, float] = {seller: 0.0 for seller in capacities}
        self._chi: dict[int, int] = {seller: 0 for seller in capacities}
        self._retain_rounds = bool(retain_rounds)
        self._rounds: list[RoundResult] = []
        self._round_count = 0
        self._beta_observed = math.inf

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    @property
    def psi(self) -> dict[int, float]:
        """Current scarcity prices ``ψᵢ`` (copy)."""
        return dict(self._psi)

    @property
    def capacity_used(self) -> dict[int, int]:
        """Cumulative coverage units committed per seller ``χᵢ`` (copy)."""
        return dict(self._chi)

    @property
    def alpha(self) -> float | None:
        """The ψ-update ratio (``None`` until auto-estimated)."""
        return self._alpha

    @property
    def rounds(self) -> tuple[RoundResult, ...]:
        """Results of all rounds processed so far.

        Always empty with ``retain_rounds=False`` (streaming mode); use
        :attr:`round_count` for the number of rounds processed.
        """
        return tuple(self._rounds)

    @property
    def round_count(self) -> int:
        """Rounds processed so far (retained or not)."""
        return self._round_count

    def remaining_capacity(self, seller: int) -> int | None:
        """Units seller may still commit; ``None`` if unconstrained."""
        capacity = self._capacities.get(seller)
        if capacity is None:
            return None
        return capacity - self._chi.get(seller, 0)

    # ------------------------------------------------------------------
    # the online loop
    # ------------------------------------------------------------------
    def _admissible(self, bid: Bid) -> bool:
        """Line 5: would accepting this bid overflow the seller's Θ?"""
        remaining = self.remaining_capacity(bid.seller)
        return remaining is None or bid.size <= remaining

    def _scaled_price(self, bid: Bid) -> float:
        """Line 8: ``∇ᵗᵢⱼ = Jᵗᵢⱼ + |Sᵗᵢⱼ|·ψᵢᵗ⁻¹``."""
        return bid.price + bid.size * self._psi.get(bid.seller, 0.0)

    def _columnar_kwargs(self, instance: WSPInstance) -> dict:
        """The ``columnar=`` forward for a round's :func:`run_ssam` call.

        On the columnar engine with incrementality enabled, the layout
        built for an earlier round is re-priced in place whenever this
        round's structure matches it (same bids' sellers/indices/
        coverage, same positive demand) — ψ only moves prices, so the
        common case across rounds is a pure price-column refresh.  Any
        structural change (capacity exclusions, redrawn bids, faults,
        clamped demand) misses the cache and rebuilds.
        """
        if (
            self._ssam_options["engine"] != "columnar"
            or not self._columnar_incremental
        ):
            return {}
        from repro.core.columnar import (
            ColumnarInstance,
            structure_fingerprint,
        )

        demand = {b: u for b, u in instance.demand.items() if u > 0}
        if not demand:
            return {}
        fingerprint = structure_fingerprint(instance.bids, demand)
        cached = self._columnar_cache
        if cached is not None and cached.fingerprint == fingerprint:
            prepared = cached.with_bids(instance.bids)
            if _OBS.enabled:
                _OBS.metrics.counter("engine.columnar.cache_hits").inc()
        else:
            prepared = ColumnarInstance.build(instance.bids, demand)
            if _OBS.enabled:
                _OBS.metrics.counter("engine.columnar.cache_misses").inc()
        self._columnar_cache = prepared
        return {"columnar": prepared}

    def _execute_ssam(
        self,
        instance: WSPInstance,
        *,
        original_prices: Mapping[tuple[int, int], float] | None = None,
    ):
        """The single seam through which every round's clearing flows.

        All of MSOA's round paths — the normal path, the fault-recovery
        runner, best-effort clamping, and the empty-round fallbacks —
        call this method instead of :func:`~repro.core.ssam.run_ssam`
        directly, so a subclass can swap the clearing strategy (e.g. the
        sharded decomposition in :mod:`repro.shard`) without touching
        the admissibility/ψ/χ/fault machinery around it.
        """
        return run_ssam(
            instance,
            payment_rule=self._payment_rule,
            original_prices=(
                dict(original_prices) if original_prices is not None else None
            ),
            **self._ssam_options,
            **self._columnar_kwargs(instance),
        )

    @profiled("msoa.round")
    def process_round(self, instance: WSPInstance) -> RoundResult:
        """Run one auction round online and update ψ/χ for the winners."""
        round_index = self._round_count
        pre_events: list = []
        if self._injector is not None:
            from repro.faults.resilience import apply_pre_round_faults

            instance, pre_events = apply_pre_round_faults(
                instance,
                round_index=round_index,
                injector=self._injector,
                policy=self._policy,
                carry_demand=(
                    self._carry if self._policy.carry_uncovered else None
                ),
            )
            self._carry = {}
        tracer = _OBS.tracer
        with tracer.span(
            "msoa.round", round_index=round_index, bids=len(instance.bids)
        ) as round_span:
            admissible = tuple(
                bid for bid in instance.bids if self._admissible(bid)
            )
            original_by_key = {bid.key: bid for bid in instance.bids}
            scaled_bids = tuple(
                Bid(
                    seller=bid.seller,
                    index=bid.index,
                    covered=bid.covered,
                    price=self._scaled_price(bid),
                    true_cost=bid.cost,
                )
                for bid in admissible
            )
            scaled_prices = {bid.key: bid.price for bid in scaled_bids}
            if _OBS.enabled:
                metrics = _OBS.metrics
                metrics.counter("msoa.rounds").inc()
                metrics.counter("msoa.bids_admitted").inc(len(admissible))
                metrics.counter("msoa.bids_excluded").inc(
                    len(instance.bids) - len(admissible)
                )
                tracer.event(
                    "price-scaling",
                    admissible=len(admissible),
                    excluded=len(instance.bids) - len(admissible),
                    psi_max=max(self._psi.values(), default=0.0),
                )
            scaled_instance = WSPInstance(
                bids=scaled_bids,
                demand=instance.demand,
                price_ceiling=instance.price_ceiling,
            )
            if self._alpha is None:
                # Auto-estimate α from the first round's Theorem-3 bound,
                # computed on the announced (unscaled) prices.
                self._alpha = max(
                    1.0, ssam_ratio_bound(instance.total_demand, admissible)
                )
            resilience = None
            if self._injector is not None:
                outcome, resilience = self._resilient_round(
                    scaled_instance,
                    original_by_key,
                    pre_events=pre_events,
                    round_index=round_index,
                )
                if (
                    resilience is not None
                    and self._policy.carry_uncovered
                    and resilience.uncovered
                ):
                    for buyer, units in resilience.uncovered.items():
                        self._carry[buyer] = self._carry.get(buyer, 0) + units
            else:
                try:
                    outcome = self._execute_ssam(
                        scaled_instance,
                        original_prices={
                            key: original_by_key[key].price
                            for key in scaled_prices
                        },
                    )
                except InfeasibleInstanceError:
                    if self._on_infeasible == "raise":
                        raise
                    if self._on_infeasible == "best_effort":
                        outcome = self._best_effort_round(
                            scaled_instance, original_by_key
                        )
                    else:
                        outcome = self._execute_ssam(
                            WSPInstance(
                                bids=scaled_bids, demand={}, price_ceiling=None
                            )
                        )
            self._beta_observed = min(
                self._beta_observed, capacity_margin(self._capacities, admissible)
            )
            for winner in outcome.winners:
                original = original_by_key[winner.bid.key]
                self._apply_win(original)
                if _OBS.enabled:
                    tracer.event(
                        "psi-update",
                        seller=original.seller,
                        psi=self._psi.get(original.seller, 0.0),
                        chi=self._chi.get(original.seller, 0),
                    )
            result = RoundResult(
                round_index=round_index,
                outcome=outcome,
                original_bids=original_by_key,
                scaled_prices=scaled_prices,
                psi_after=self.psi,
                capacity_used=self.capacity_used,
                resilience=resilience if self._injector is not None else None,
            )
            tracer.annotate(
                round_span,
                social_cost=result.social_cost,
                total_payment=result.total_payment,
                winners=len(outcome.winners),
            )
            self._round_count += 1
            if self._retain_rounds:
                self._rounds.append(result)
            return result

    def _resilient_round(
        self,
        scaled_instance: WSPInstance,
        original_by_key: Mapping[tuple[int, int], Bid],
        *,
        pre_events: Sequence,
        round_index: int,
    ):
        """Run the round through the fault-recovery engine.

        A degradation-policy ``"raise"`` escalation falls back to this
        auctioneer's own ``on_infeasible`` handling, so faulted and
        unfaulted runs treat unrecoverable rounds uniformly.
        """
        from repro.faults.report import RoundResilience
        from repro.faults.resilience import execute_with_resilience

        def runner(inst: WSPInstance):
            return self._execute_ssam(
                inst,
                original_prices={
                    bid.key: original_by_key[bid.key].price
                    for bid in inst.bids
                },
            )

        try:
            return execute_with_resilience(
                scaled_instance,
                runner,
                round_index=round_index,
                injector=self._injector,
                policy=self._policy,
                pre_events=pre_events,
            )
        except InfeasibleInstanceError:
            if self._on_infeasible == "raise":
                raise
            if self._on_infeasible == "best_effort":
                outcome = self._best_effort_round(
                    scaled_instance, original_by_key
                )
            else:
                outcome = self._execute_ssam(
                    WSPInstance(
                        bids=scaled_instance.bids,
                        demand={},
                        price_ceiling=None,
                    )
                )
            report = (
                RoundResilience(events=tuple(pre_events))
                if pre_events
                else None
            )
            return outcome, report

    def _best_effort_round(
        self,
        scaled_instance: WSPInstance,
        original_by_key: Mapping[tuple[int, int], Bid],
    ):
        """Serve the largest demand the admissible bids can still cover.

        Clamps each buyer's requirement to the number of distinct
        admissible sellers covering it and re-runs SSAM.  If even the
        clamped round is stuck (pathological seller overlap), falls back
        to an empty round.
        """
        sellers_covering: dict[int, set[int]] = {}
        for bid in scaled_instance.bids:
            for buyer in bid.covered:
                sellers_covering.setdefault(buyer, set()).add(bid.seller)
        clamped = {
            buyer: min(units, len(sellers_covering.get(buyer, ())))
            for buyer, units in scaled_instance.demand.items()
        }
        if _OBS.enabled:
            _OBS.metrics.counter("msoa.capacity_repairs").inc()
            _OBS.tracer.event(
                "capacity-repair",
                demand={str(b): u for b, u in scaled_instance.demand.items()},
                clamped={str(b): u for b, u in clamped.items()},
            )
        clamped_instance = WSPInstance(
            bids=scaled_instance.bids,
            demand=clamped,
            price_ceiling=scaled_instance.price_ceiling,
        )
        try:
            return self._execute_ssam(
                clamped_instance,
                original_prices={
                    key: original_by_key[key].price
                    for key in (bid.key for bid in scaled_instance.bids)
                },
            )
        except InfeasibleInstanceError:
            return self._execute_ssam(
                WSPInstance(
                    bids=scaled_instance.bids, demand={}, price_ceiling=None
                )
            )

    def _apply_win(self, bid: Bid) -> None:
        """Lines 11–12: multiplicative ψ update and χ accounting."""
        capacity = self._capacities.get(bid.seller)
        self._chi[bid.seller] = self._chi.get(bid.seller, 0) + bid.size
        if capacity is None:
            return  # unconstrained seller: ψ stays 0 (Θ → ∞ limit)
        alpha = self._alpha if self._alpha is not None else 1.0
        psi_prev = self._psi.get(bid.seller, 0.0)
        self._psi[bid.seller] = psi_prev * (
            1.0 + bid.size / (alpha * capacity)
        ) + bid.price * bid.size / (alpha * capacity**2)

    def finalize(self) -> OnlineOutcome:
        """Package the horizon's rounds into an :class:`OnlineOutcome`."""
        alpha = self._alpha if self._alpha is not None else 1.0
        beta = self._beta_observed
        outcome = OnlineOutcome(
            rounds=tuple(self._rounds),
            capacities=dict(self._capacities),
            alpha=alpha,
            beta=beta,
            competitive_bound=msoa_competitive_bound(alpha, beta),
            mechanism="msoa",
        )
        outcome.verify_capacities()
        return outcome


def run_msoa(
    rounds: Iterable[WSPInstance] | Sequence[WSPInstance],
    capacities: Mapping[int, int],
    *deprecated_args: PaymentRule,
    alpha: float | None = None,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int | str = "auto",
    guard: bool = True,
    engine: str = "fast",
    columnar_incremental: bool = True,
    on_infeasible: str = "raise",
    faults: "FaultPlan | FaultInjector | None" = None,
    resilience: "ResiliencePolicy | None" = None,
) -> OnlineOutcome:
    """Convenience wrapper: feed a whole horizon through MSOA.

    The auctioneer still processes rounds strictly online — each round's
    decisions depend only on past rounds — this helper merely drives the
    loop and finalizes the outcome.  All options are keyword-only and
    forwarded to :class:`MultiStageOnlineAuction`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.workload import MarketConfig, generate_horizon
    >>> rounds, capacities = generate_horizon(
    ...     MarketConfig(), np.random.default_rng(7), rounds=3)
    >>> outcome = run_msoa(rounds, capacities)
    >>> len(outcome.rounds)
    3

    A seeded :class:`~repro.faults.FaultPlan` injects failures into the
    horizon; defaults are recovered by re-auction under the (optional)
    :class:`~repro.faults.ResiliencePolicy`:

    >>> from repro.faults import FaultPlan, SellerDefault
    >>> plan = FaultPlan(seed=3,
    ...                  seller_defaults=(SellerDefault(probability=0.4),))
    >>> faulted = run_msoa(rounds, capacities, faults=plan)
    >>> faulted.fault_events > 0
    True

    .. deprecated:: 1.1
        Passing ``payment_rule`` positionally is deprecated; use the
        keyword form ``run_msoa(rounds, capacities, payment_rule=...)``.
    """
    if deprecated_args:
        if len(deprecated_args) > 1:
            raise TypeError(
                "run_msoa() takes two positional arguments (rounds and "
                "capacities); pass options by keyword"
            )
        warnings.warn(
            "passing payment_rule positionally to run_msoa() is deprecated; "
            "use run_msoa(rounds, capacities, payment_rule=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        payment_rule = deprecated_args[0]
    auction = MultiStageOnlineAuction(
        capacities,
        alpha=alpha,
        payment_rule=payment_rule,
        parallelism=parallelism,
        guard=guard,
        engine=engine,
        columnar_incremental=columnar_incremental,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )
    tracer = _OBS.tracer
    with tracer.span(
        "msoa.horizon", engine=engine, on_infeasible=on_infeasible
    ) as horizon_span:
        for instance in rounds:
            auction.process_round(instance)
        outcome = auction.finalize()
        tracer.annotate(
            horizon_span,
            rounds=len(outcome.rounds),
            social_cost=outcome.social_cost,
            total_payment=outcome.total_payment,
        )
        return outcome
