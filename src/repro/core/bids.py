"""Bid and bidder data structures for the resource-sharing auction.

Model recap (Sections II and IV of the paper, reconstructed as documented
in DESIGN.md): needy microservices ("buyers") each require an integer number
of *coverage units* of spare resources; helper microservices ("sellers")
submit up to ``J`` alternative bids, each of which names the set of buyers
the offer can serve and a compensation price.  A winning bid contributes
exactly one coverage unit to every buyer it names, and each seller can win
at most one bid per round.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Bid", "BidderProfile", "group_bids_by_seller", "validate_bids"]


@dataclass(frozen=True)
class Bid:
    """One alternative offer from a seller microservice.

    Attributes
    ----------
    seller:
        Identifier of the microservice making the offer (``i`` in the paper).
    index:
        The alternative-bid index within this seller's offers (``j``).
    covered:
        Buyer microservices this offer can serve (``Ŝᵢⱼ``); the bid
        contributes one coverage unit to each of them if it wins.
    price:
        The compensation the seller asks for (``Jᵗᵢⱼ``, the bidding price).
    true_cost:
        The seller's private cost of yielding the resources (``Gᵗᵢⱼ``).
        Under truthful bidding ``true_cost == price``; truthfulness
        experiments set them apart to measure deviation utility.
    """

    seller: int
    index: int
    covered: frozenset[int]
    price: float
    true_cost: float | None = None

    def __post_init__(self) -> None:
        if not self.covered:
            raise ConfigurationError(
                f"bid ({self.seller}, {self.index}) must cover at least one buyer"
            )
        if self.price < 0:
            raise ConfigurationError(
                f"bid ({self.seller}, {self.index}) has negative price {self.price}"
            )
        if self.true_cost is not None and self.true_cost < 0:
            raise ConfigurationError(
                f"bid ({self.seller}, {self.index}) has negative true cost "
                f"{self.true_cost}"
            )
        if self.seller in self.covered:
            raise ConfigurationError(
                f"seller {self.seller} cannot cover itself (a microservice does "
                "not buy its own spare resources)"
            )

    @property
    def key(self) -> tuple[int, int]:
        """The ``(seller, index)`` pair identifying this bid in a round."""
        return (self.seller, self.index)

    @property
    def size(self) -> int:
        """``|Ŝᵢⱼ|`` — how many buyers the bid covers (its coverage units)."""
        return len(self.covered)

    @property
    def cost(self) -> float:
        """The seller's private cost, defaulting to the announced price."""
        return self.price if self.true_cost is None else self.true_cost

    def with_price(self, price: float) -> "Bid":
        """Return a copy with a different announced price (same true cost).

        Used by truthfulness audits to model a unilateral price deviation:
        the private cost is pinned to this bid's :attr:`cost`.
        """
        return Bid(
            seller=self.seller,
            index=self.index,
            covered=self.covered,
            price=price,
            true_cost=self.cost,
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        data: dict = {
            "seller": self.seller,
            "index": self.index,
            "covered": sorted(self.covered),
            "price": self.price,
        }
        if self.true_cost is not None:
            data["true_cost"] = self.true_cost
        return data

    @staticmethod
    def from_dict(data: Mapping) -> "Bid":
        """Rebuild a bid from its :meth:`to_dict` form (validates afresh)."""
        return Bid(
            seller=int(data["seller"]),
            index=int(data["index"]),
            covered=frozenset(int(b) for b in data["covered"]),
            price=float(data["price"]),
            true_cost=(
                float(data["true_cost"]) if data.get("true_cost") is not None else None
            ),
        )


@dataclass(frozen=True)
class BidderProfile:
    """A seller's long-run participation profile for the online mechanism.

    Attributes
    ----------
    seller:
        The seller microservice's identifier.
    capacity:
        ``Θᵢ`` — the total number of coverage units the seller is willing to
        share over the whole horizon.  The online mechanism (MSOA) never
        lets the seller's cumulative winning coverage exceed this.
    """

    seller: int
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(
                f"seller {self.seller} capacity must be positive, got {self.capacity}"
            )


def group_bids_by_seller(bids: Iterable[Bid]) -> dict[int, list[Bid]]:
    """Group bids by their seller, preserving submission order."""
    grouped: dict[int, list[Bid]] = {}
    for bid in bids:
        grouped.setdefault(bid.seller, []).append(bid)
    return grouped


def validate_bids(bids: Iterable[Bid], demand: Mapping[int, int]) -> tuple[Bid, ...]:
    """Validate a round's bid collection against the buyer demand map.

    Checks that bid keys are unique, that covered buyers actually appear in
    the demand map, and that no seller is also a buyer (a microservice
    cannot simultaneously need and offer spare resources in one round).

    Returns the bids as a tuple in submission order.
    """
    seen: set[tuple[int, int]] = set()
    buyers = set(demand)
    result: list[Bid] = []
    for bid in bids:
        if bid.key in seen:
            raise ConfigurationError(f"duplicate bid key {bid.key}")
        seen.add(bid.key)
        unknown = bid.covered - buyers
        if unknown:
            raise ConfigurationError(
                f"bid {bid.key} covers unknown buyers {sorted(unknown)}"
            )
        if bid.seller in buyers:
            raise ConfigurationError(
                f"microservice {bid.seller} appears as both seller and buyer"
            )
        result.append(bid)
    return tuple(result)
