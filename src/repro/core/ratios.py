"""Approximation- and competitive-ratio arithmetic (Theorems 3 and 7).

The paper bounds SSAM's approximation ratio by ``π = W·Ξ`` where ``W`` is a
harmonic number over the demand units and ``Ξ`` the price-spread factor
across a seller's alternative bids, and bounds MSOA's competitive ratio by
``αβ/(β−1)`` where ``α`` is the single-stage ratio and
``β = min Θᵢ/|Sᵗᵢⱼ|`` the capacity-to-bid-size margin.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.core.bids import Bid, group_bids_by_seller
from repro.errors import ConfigurationError

__all__ = [
    "harmonic",
    "price_spread",
    "ssam_ratio_bound",
    "capacity_margin",
    "msoa_competitive_bound",
]


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H(n) = Σ_{k=1..n} 1/k`` (``W`` in the paper).

    ``H(0)`` is defined as 0 so empty instances get a vacuous bound.
    """
    if n < 0:
        raise ConfigurationError(f"harmonic number needs n >= 0, got {n}")
    if n > 10_000:
        # Asymptotic expansion: accurate to ~1e-10 at this size and O(1).
        gamma = 0.5772156649015329
        return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)
    return sum(1.0 / k for k in range(1, n + 1))


def price_spread(bids: Iterable[Bid]) -> float:
    """``Ξ`` — the worst max/min price spread across any seller's own bids.

    A seller submitting a single bid contributes spread 1; the factor only
    exceeds 1 when some seller submits multiple alternative bids at
    different prices (the case Theorem 3 pays for with Ξ).  Zero-priced
    bids make the spread unbounded; we treat a zero minimum with a positive
    maximum as spread ``inf`` (the bound degenerates, matching the theory).
    """
    spread = 1.0
    for seller_bids in group_bids_by_seller(bids).values():
        prices = [bid.price for bid in seller_bids]
        top, bottom = max(prices), min(prices)
        if top == 0:
            continue
        seller_spread = math.inf if bottom == 0 else top / bottom
        spread = max(spread, seller_spread)
    return spread


def ssam_ratio_bound(total_demand_units: int, bids: Iterable[Bid]) -> float:
    """Theorem 3's bound ``π = W·Ξ`` for a single-stage instance.

    ``W = H(total demand units)`` and ``Ξ`` is :func:`price_spread`.  With
    one bid per seller the bound reduces to the harmonic number alone, the
    "typical scenario" the paper highlights.
    """
    return harmonic(max(1, total_demand_units)) * price_spread(bids)


def capacity_margin(
    capacities: Mapping[int, int], bids: Iterable[Bid]
) -> float:
    """``β = min over bids of Θᵢ / |Sᵗᵢⱼ|`` (Lemma 4).

    Bids from sellers without a declared capacity are skipped (they are
    unconstrained, i.e. their margin is infinite).  Returns ``inf`` when no
    bid is capacity-constrained.
    """
    beta = math.inf
    for bid in bids:
        capacity = capacities.get(bid.seller)
        if capacity is None:
            continue
        beta = min(beta, capacity / bid.size)
    return beta


def msoa_competitive_bound(alpha: float, beta: float) -> float:
    """Theorem 7's competitive ratio ``αβ/(β−1)``.

    Requires ``β > 1`` — a seller whose capacity equals its bid size can be
    fully depleted by a single win, and the multiplicative-update argument
    gives no finite guarantee there; we return ``inf`` in that case rather
    than raising, because empirical runs are still meaningful.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if beta <= 1:
        return math.inf
    return alpha * beta / (beta - 1.0)
