"""Columnar numerical core: the numpy-backed engine representation.

The fast engine (:mod:`repro.core.engine`) removed the reference loop's
per-iteration rescans, but it still walks Python objects — dict-of-set
coverage maps, per-bid ``Bid`` attribute loads, a heap of tuples.  At
10^4–10^5 bids that object layer is the ceiling.  This module rebuilds
the greedy machinery on flat numpy arrays:

* :class:`ColumnarInstance` — the immutable *structure* of a market:
  price/seller/index columns, a CSR-style bid→buyer incidence (plus its
  CSC transpose and a dense bid×buyer mask), per-seller bid groupings,
  and a seller×buyer coverage matrix for the stranding guard.  Built
  once from ``(bids, demand)``; re-pricing (MSOA's ψ-scaled rounds)
  shares every structural array via :meth:`ColumnarInstance.with_bids`.
* :class:`ColumnarState` — the mutable per-run arrays (granted units,
  active mask, marginal utilities, supplier counts).  ``fork()`` is a
  handful of ``ndarray.copy()`` calls, which is what makes the batched
  payment kernel cheap.
* :func:`columnar_greedy_selection` — the greedy selection loop as
  vectorized candidate scans (``lexsort`` over the exact reference key
  ``(ratio, price, seller, index)``).
* :func:`columnar_critical_payments` — a batched critical-value kernel.
  For a winner chosen at main-run iteration ``k``, the +∞-replay of
  :func:`repro.core.ssam._critical_payment` provably follows the main
  trajectory for every iteration before ``k`` (the stranding guard is
  price-independent, and an ∞-priced bid sorts last so it is never
  preferred while its real-priced twin was still losing).  The kernel
  therefore walks the main trajectory *once*, accumulating every
  pending winner's threshold per iteration, and forks a state copy only
  at each winner's own divergence point to finish its private suffix —
  instead of re-running the whole greedy once per winner.

Bit-identical outcomes to the ``fast``/``reference`` engines are the
contract (IEEE-754 division of the same operands, the same lexicographic
candidate order, the same guard walk), pinned by
``tests/properties/test_columnar_equivalence.py``.

The layout targets the paper's regime — buyers (edge cloudlets) number
in the tens while bids number in the thousands-to-hundreds-of-thousands
— so dense ``n_bids × n_buyers`` and ``n_sellers × n_buyers`` masks are
deliberately used for the guard probes; memory is linear in ``n·B``.

Use ``run_ssam(..., engine="columnar")`` rather than calling these
directly.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.bids import Bid
from repro.core.ssam import GreedyStep, _residual_feasible
from repro.core.wsp import CoverageState
from repro.errors import InfeasibleInstanceError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS

__all__ = [
    "ColumnarInstance",
    "ColumnarState",
    "columnar_greedy_selection",
    "columnar_critical_payments",
    "structure_fingerprint",
]


def structure_fingerprint(
    bids: Sequence[Bid], demand: Mapping[int, int]
) -> tuple:
    """Hashable identity of a market's *structure* (prices excluded).

    Two instances with equal fingerprints share seller/index/coverage
    columns and the demand vector, so a :class:`ColumnarInstance` built
    for one can be re-priced for the other via
    :meth:`ColumnarInstance.with_bids` — the MSOA incrementality hook.
    """
    return (
        tuple((b.seller, b.index, b.covered) for b in bids),
        tuple(demand.items()),
    )


class ColumnarInstance:
    """Immutable columnar view of one winner-selection problem.

    All arrays are index-aligned with ``bids`` (rows) and the demand
    map's key order (buyer columns).  Structural arrays are shared, not
    copied, across re-pricings (:meth:`with_bids`).
    """

    __slots__ = (
        "bids",
        "demand_map",
        "buyers",
        "demand",
        "prices",
        "seller_ids",
        "bid_indices",
        "seller_rows",
        "sellers",
        "cover",
        "cover_indptr",
        "cover_cols",
        "covering_rows",
        "seller_bid_rows",
        "seller_cov",
        "initial_utilities",
        "initial_suppliers",
        "row_of",
        "fingerprint",
    )

    def __init__(self, **fields) -> None:
        for name in self.__slots__:
            object.__setattr__(self, name, fields[name])

    @classmethod
    @profiled("columnar.build")
    def build(
        cls, bids: Sequence[Bid], demand: Mapping[int, int]
    ) -> "ColumnarInstance":
        """Construct the columnar layout from a bid list and demand map."""
        if _OBS.enabled:
            _OBS.metrics.counter("engine.columnar.builds").inc()
        bids = tuple(bids)
        n = len(bids)
        buyers = [int(b) for b in demand]
        buyer_pos = {buyer: j for j, buyer in enumerate(buyers)}
        n_buyers = len(buyers)
        demand_arr = np.fromiter(
            (demand[b] for b in buyers), dtype=np.int64, count=n_buyers
        )
        prices = np.fromiter(
            (b.price for b in bids), dtype=np.float64, count=n
        )
        seller_ids = np.fromiter(
            (b.seller for b in bids), dtype=np.int64, count=n
        )
        bid_indices = np.fromiter(
            (b.index for b in bids), dtype=np.int64, count=n
        )
        sellers, seller_rows = np.unique(seller_ids, return_inverse=True)
        seller_rows = seller_rows.astype(np.int64)
        n_sellers = sellers.size

        cover_indptr = np.zeros(n + 1, dtype=np.int64)
        cols_per_bid: list[list[int]] = []
        for i, bid in enumerate(bids):
            cols = sorted(
                buyer_pos[b] for b in bid.covered if b in buyer_pos
            )
            cols_per_bid.append(cols)
            cover_indptr[i + 1] = cover_indptr[i] + len(cols)
        cover_cols = np.fromiter(
            (c for cols in cols_per_bid for c in cols),
            dtype=np.int64,
            count=int(cover_indptr[-1]),
        )
        cover = np.zeros((n, n_buyers), dtype=bool)
        rows_rep = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(cover_indptr)
        )
        cover[rows_rep, cover_cols] = True

        covering_rows: list[np.ndarray] = [
            np.flatnonzero(cover[:, j]) for j in range(n_buyers)
        ]
        seller_bid_rows: list[np.ndarray] = [
            np.flatnonzero(seller_rows == s) for s in range(n_sellers)
        ]
        seller_cov = np.zeros((n_sellers, n_buyers), dtype=bool)
        np.logical_or.at(seller_cov, seller_rows, cover)

        positive = demand_arr > 0
        initial_utilities = (cover & positive[None, :]).sum(
            axis=1, dtype=np.int64
        )
        initial_suppliers = seller_cov.sum(axis=0, dtype=np.int64)

        return cls(
            bids=bids,
            demand_map=dict(demand),
            buyers=buyers,
            demand=demand_arr,
            prices=prices,
            seller_ids=seller_ids,
            bid_indices=bid_indices,
            seller_rows=seller_rows,
            sellers=sellers,
            cover=cover,
            cover_indptr=cover_indptr,
            cover_cols=cover_cols,
            covering_rows=covering_rows,
            seller_bid_rows=seller_bid_rows,
            seller_cov=seller_cov,
            initial_utilities=initial_utilities,
            initial_suppliers=initial_suppliers,
            row_of={bid.key: i for i, bid in enumerate(bids)},
            fingerprint=structure_fingerprint(bids, demand),
        )

    @property
    def n_bids(self) -> int:
        return len(self.bids)

    @property
    def n_buyers(self) -> int:
        return len(self.buyers)

    def with_bids(self, bids: Sequence[Bid]) -> "ColumnarInstance":
        """Re-price the instance, sharing every structural array.

        ``bids`` must be structurally identical to the originals (same
        sellers, indices, and coverage sets, in the same order) — only
        prices may differ.  This is the MSOA round-to-round refresh: a
        new ψ-scaled price column, zero structural work.  The caller is
        responsible for the structural match (compare
        :func:`structure_fingerprint`); lengths and keys are checked.
        """
        bids = tuple(bids)
        if len(bids) != len(self.bids):
            raise ValueError(
                f"with_bids: expected {len(self.bids)} bids, got {len(bids)}"
            )
        for new, old in zip(bids, self.bids):
            if new.key != old.key:
                raise ValueError(
                    f"with_bids: bid key mismatch {new.key} != {old.key}"
                )
        if _OBS.enabled:
            _OBS.metrics.counter("engine.columnar.price_refreshes").inc()
        prices = np.fromiter(
            (b.price for b in bids), dtype=np.float64, count=len(bids)
        )
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields["bids"] = bids
        fields["prices"] = prices
        return ColumnarInstance(**fields)

    @profiled("columnar.subset")
    def subset(
        self, rows: Sequence[int], buyers: Sequence[int]
    ) -> "ColumnarInstance":
        """Fork a shard-local layout by slicing this one.

        ``rows`` selects bid rows (ascending, preserving the original
        bid order) and ``buyers`` selects demand-map keys (in this
        instance's buyer order).  The sliced layout is exactly what
        :meth:`build` would produce for the sub-market, but derived with
        vectorized slicing instead of a per-bid Python walk — this is
        the per-round fork the sharded clearing path
        (:mod:`repro.shard`) uses to hand each shard its own columnar
        view of one shared parent build.
        """
        if _OBS.enabled:
            _OBS.metrics.counter("engine.columnar.subsets").inc()
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size > 1 and not np.all(np.diff(rows) > 0):
            raise ValueError("subset: rows must be strictly ascending")
        buyer_pos = {buyer: j for j, buyer in enumerate(self.buyers)}
        try:
            cols = np.fromiter(
                (buyer_pos[int(b)] for b in buyers),
                dtype=np.int64,
                count=len(buyers),
            )
        except KeyError as exc:  # buyer not in the parent demand map
            raise ValueError(f"subset: unknown buyer {exc.args[0]}") from exc
        bids = tuple(self.bids[i] for i in rows)
        n = len(bids)
        n_buyers = cols.size
        demand_arr = self.demand[cols].copy()
        seller_ids = self.seller_ids[rows]
        sellers, seller_rows = np.unique(seller_ids, return_inverse=True)
        seller_rows = seller_rows.astype(np.int64)
        cover = (
            self.cover[np.ix_(rows, cols)]
            if n and n_buyers
            else np.zeros((n, n_buyers), dtype=bool)
        )
        counts = cover.sum(axis=1, dtype=np.int64)
        cover_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=cover_indptr[1:])
        # np.nonzero walks row-major: columns arrive grouped by row in
        # ascending column order — the CSR layout build() produces.
        cover_cols = np.nonzero(cover)[1].astype(np.int64)
        covering_rows = [np.flatnonzero(cover[:, j]) for j in range(n_buyers)]
        seller_bid_rows = [
            np.flatnonzero(seller_rows == s) for s in range(sellers.size)
        ]
        seller_cov = np.zeros((sellers.size, n_buyers), dtype=bool)
        np.logical_or.at(seller_cov, seller_rows, cover)
        positive = demand_arr > 0
        initial_utilities = (cover & positive[None, :]).sum(
            axis=1, dtype=np.int64
        )
        initial_suppliers = seller_cov.sum(axis=0, dtype=np.int64)
        demand_map = {int(b): int(self.demand_map[int(b)]) for b in buyers}
        return ColumnarInstance(
            bids=bids,
            demand_map=demand_map,
            buyers=[int(b) for b in buyers],
            demand=demand_arr,
            prices=self.prices[rows].copy(),
            seller_ids=seller_ids,
            bid_indices=self.bid_indices[rows],
            seller_rows=seller_rows,
            sellers=sellers,
            cover=cover,
            cover_indptr=cover_indptr,
            cover_cols=cover_cols,
            covering_rows=covering_rows,
            seller_bid_rows=seller_bid_rows,
            seller_cov=seller_cov,
            initial_utilities=initial_utilities,
            initial_suppliers=initial_suppliers,
            row_of={bid.key: i for i, bid in enumerate(bids)},
            fingerprint=structure_fingerprint(bids, demand_map),
        )


class ColumnarState:
    """Mutable greedy-run state over a :class:`ColumnarInstance`.

    Mirrors :class:`~repro.core.wsp.CoverageState` +
    :class:`~repro.core.wsp.ActiveBidIndex` exactly: ``granted`` may
    overshoot demand (a winner covers an already-saturated buyer),
    ``utilities`` only ever decrease, sellers leave the market
    wholesale, and ``suppliers`` counts distinct in-market sellers with
    any bid covering the buyer.
    """

    __slots__ = (
        "inst",
        "prices",
        "granted",
        "active",
        "utilities",
        "suppliers",
        "unsat",
        "unmet",
    )

    def __init__(
        self, inst: ColumnarInstance, prices: np.ndarray | None = None
    ) -> None:
        self.inst = inst
        self.prices = inst.prices if prices is None else prices
        self.granted = np.zeros(inst.n_buyers, dtype=np.int64)
        self.active = np.ones(inst.n_bids, dtype=bool)
        self.utilities = inst.initial_utilities.copy()
        self.suppliers = inst.initial_suppliers.copy()
        self.unsat = inst.demand > 0
        self.unmet = int(inst.demand.sum())

    def fork(self) -> "ColumnarState":
        """Independent copy (payment suffix replays mutate it freely)."""
        twin = ColumnarState.__new__(ColumnarState)
        twin.inst = self.inst
        twin.prices = self.prices
        twin.granted = self.granted.copy()
        twin.active = self.active.copy()
        twin.utilities = self.utilities.copy()
        twin.suppliers = self.suppliers.copy()
        twin.unsat = self.unsat.copy()
        twin.unmet = self.unmet
        return twin

    @property
    def satisfied(self) -> bool:
        return self.unmet == 0

    def coverage_before(self) -> dict[int, int]:
        """Granted units per buyer, as the reference engine's dict."""
        return {
            buyer: int(units)
            for buyer, units in zip(self.inst.buyers, self.granted)
        }

    def would_strand(self, row: int) -> bool:
        """Vector twin of :meth:`ActiveBidIndex.would_strand`.

        Accepting ``row`` consumes its seller; some unsatisfied buyer is
        stranded iff its residual demand exceeds the count of *other*
        in-market sellers still covering it.
        """
        inst = self.inst
        need = inst.demand - self.granted
        need = need - inst.cover[row]
        mask = self.unsat & (need > 0)
        if not mask.any():
            return False
        avail = self.suppliers - inst.seller_cov[inst.seller_rows[row]]
        return bool(np.any(avail[mask] < need[mask]))

    def would_strand_many(self, rows: np.ndarray) -> np.ndarray:
        """:meth:`would_strand` for many candidate rows in one shot."""
        inst = self.inst
        need = (inst.demand - self.granted)[None, :] - inst.cover[rows]
        mask = self.unsat[None, :] & (need > 0)
        avail = (
            self.suppliers[None, :]
            - inst.seller_cov[inst.seller_rows[rows]]
        )
        return np.any(mask & (avail < need), axis=1)

    def apply_win(self, row: int) -> int:
        """Grant the bid's coverage; propagate utility decrements.

        Returns the marginal units contributed, like
        :meth:`CoverageState.apply` (overshoot grants count zero).
        """
        inst = self.inst
        cols = inst.cover_cols[
            inst.cover_indptr[row] : inst.cover_indptr[row + 1]
        ]
        was_unsat = self.unsat[cols]
        gained = int(was_unsat.sum())
        self.granted[cols] += 1
        newly = cols[was_unsat & (self.granted[cols] >= inst.demand[cols])]
        for buyer_col in newly:
            self.unsat[buyer_col] = False
            covering = inst.covering_rows[buyer_col]
            self.utilities[covering] -= 1
        self.unmet -= gained
        return gained

    def remove_seller(self, seller_row: int) -> None:
        """Deactivate every bid of the seller; update supplier counts."""
        inst = self.inst
        self.active[inst.seller_bid_rows[seller_row]] = False
        self.suppliers -= inst.seller_cov[seller_row]

    def active_bids(self) -> list[Bid]:
        """The in-market ``Bid`` objects, in submission order."""
        bids = self.inst.bids
        return [bids[i] for i in np.flatnonzero(self.active)]

    def coverage_view(self) -> CoverageState:
        """A :class:`CoverageState` snapshot (exact-guard escalations)."""
        return CoverageState(
            demand=self.inst.demand_map, granted=self.coverage_before()
        )


def _ordered_candidates(
    state: ColumnarState,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate rows and their ratios, in exact reference order.

    The reference engine sorts candidates by the tuple
    ``(ratio, price, seller, index)``; ``np.lexsort`` with the primary
    key last reproduces that ordering bit-for-bit (the ratios are the
    same IEEE-754 divisions the reference performs).
    """
    rows = np.flatnonzero(state.active & (state.utilities > 0))
    if rows.size == 0:
        return rows, np.empty(0, dtype=np.float64)
    inst = state.inst
    prices = state.prices[rows]
    ratios = prices / state.utilities[rows]
    perm = np.lexsort(
        (inst.bid_indices[rows], inst.seller_ids[rows], prices, ratios)
    )
    return rows[perm], ratios[perm]


def _guarded_choice(
    state: ColumnarState,
    order: np.ndarray,
    *,
    guard_feasibility: bool,
    exact_guard: bool,
) -> int:
    """Position of the chosen candidate within ``order``.

    Walks candidates in ascending key order, passing over the ones the
    stranding guard (and, when escalated, the exact residual-feasibility
    check) rejects; if none is safe the guard is waived for the
    iteration and the overall best is taken — exactly the reference
    walk.
    """
    if not guard_feasibility:
        return 0
    for pos in range(order.size):
        row = int(order[pos])
        if state.would_strand(row):
            continue
        if exact_guard and not _residual_feasible(
            state.inst.bids[row], state.active_bids(), state.coverage_view()
        ):
            continue
        return pos
    return 0


@profiled("ssam.selection")
def columnar_greedy_selection(
    bids: Sequence[Bid],
    demand: Mapping[int, int],
    *,
    require_feasible: bool = True,
    guard_feasibility: bool = True,
    exact_guard: bool = False,
    columnar: ColumnarInstance | None = None,
) -> list[GreedyStep]:
    """Vectorized twin of :func:`repro.core.ssam.greedy_selection`.

    Same contract, same trace, same exceptions.  Pass a prebuilt
    ``columnar`` instance (for the same bids/demand) to skip the layout
    construction — the MSOA incremental path does.
    """
    inst = (
        columnar
        if columnar is not None
        else ColumnarInstance.build(bids, demand)
    )
    state = ColumnarState(inst)
    steps: list[GreedyStep] = []
    iteration = 0
    while not state.satisfied:
        order, ratios = _ordered_candidates(state)
        if _OBS.enabled:
            _OBS.metrics.counter("engine.columnar.candidates_scanned").inc(
                int(order.size)
            )
        if order.size == 0:
            if require_feasible:
                raise InfeasibleInstanceError(
                    f"{state.unmet} demand units cannot be covered by the "
                    "remaining bids"
                )
            break
        chosen_pos = _guarded_choice(
            state,
            order,
            guard_feasibility=guard_feasibility,
            exact_guard=exact_guard,
        )
        row = int(order[chosen_pos])
        steps.append(
            GreedyStep(
                iteration=iteration,
                bid=inst.bids[row],
                utility=int(state.utilities[row]),
                ratio=float(ratios[chosen_pos]),
                runner_up_ratio=(
                    float(ratios[chosen_pos + 1])
                    if chosen_pos + 1 < order.size
                    else None
                ),
                coverage_before=state.coverage_before(),
            )
        )
        state.apply_win(row)
        state.remove_seller(int(inst.seller_rows[row]))
        iteration += 1
    return steps


def _suffix_replay(
    state: ColumnarState,
    winner_row: int,
    threshold: float,
    *,
    guard_feasibility: bool,
    exact_guard: bool,
    ceiling: float,
) -> float:
    """Finish one winner's +∞ critical replay from its divergence point.

    ``state`` is a private fork whose price column already carries +∞
    at ``winner_row``; the loop body is the exact tail of
    :func:`repro.core.ssam._critical_payment`.
    """
    inst = state.inst
    winner_seller = int(inst.seller_rows[winner_row])
    infinite = inst.bids[winner_row].with_price(math.inf)
    while not state.satisfied:
        order, ratios = _ordered_candidates(state)
        winner_utility = (
            int(state.utilities[winner_row])
            if state.active[winner_row]
            else 0
        )
        if order.size == 0:
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        chosen_pos = _guarded_choice(
            state,
            order,
            guard_feasibility=guard_feasibility,
            exact_guard=exact_guard,
        )
        row = int(order[chosen_pos])
        if row == winner_row:
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        winner_safe = not guard_feasibility or not state.would_strand(
            winner_row
        )
        if winner_safe and guard_feasibility and exact_guard:
            winner_safe = _residual_feasible(
                infinite, state.active_bids(), state.coverage_view()
            )
        if winner_utility > 0 and winner_safe:
            threshold = max(
                threshold, winner_utility * float(ratios[chosen_pos])
            )
        state.apply_win(row)
        if int(inst.seller_rows[row]) == winner_seller:
            break
        state.remove_seller(int(inst.seller_rows[row]))
    return threshold


@profiled("columnar.payments")
def columnar_critical_payments(
    instance,
    winners: Sequence[Bid],
    *,
    exact_guard: bool = False,
    guard_feasibility: bool = True,
    columnar: ColumnarInstance | None = None,
    trajectory: Sequence[GreedyStep] | None = None,
) -> list[float]:
    """Batched critical values: one shared prefix, per-winner suffixes.

    Each winner's critical replay provably coincides with the main
    greedy trajectory up to the iteration where that winner was chosen
    (see the module docstring), so a single pass over the trajectory
    accumulates every pending winner's threshold — the winner's current
    marginal utility times the iteration's selected ratio, whenever the
    winner is guard-safe — and a state fork at each winner's own
    iteration finishes its divergent suffix with the winner priced +∞.
    A bid whose seller sibling wins first resolves at that iteration
    (the replay breaks there), matching the scalar replay's early exit.

    ``trajectory`` (the main run's :class:`GreedyStep` list) skips the
    re-selection pass; omitted, the kernel re-derives it.  Results are
    bit-identical to :func:`repro.core.engine.fast_critical_payment`
    per winner.
    """
    if not winners:
        return []
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    inst = (
        columnar
        if columnar is not None
        else ColumnarInstance.build(instance.bids, demand)
    )
    if trajectory is None:
        trajectory = columnar_greedy_selection(
            instance.bids,
            demand,
            guard_feasibility=guard_feasibility,
            exact_guard=exact_guard,
            columnar=inst,
        )
    traj_rows = [inst.row_of[step.bid.key] for step in trajectory]
    winner_rows = [inst.row_of[w.key] for w in winners]
    ceiling = instance.effective_ceiling

    thresholds: dict[int, float] = {}
    resolved: dict[int, float] = {}
    pending: list[int] = []
    for row in winner_rows:
        if row not in thresholds:
            thresholds[row] = 0.0
            pending.append(row)

    state = ColumnarState(inst)
    forks = 0
    for chosen_row in traj_rows:
        if not pending:
            break
        if state.satisfied:
            break
        ratio = float(
            state.prices[chosen_row] / state.utilities[chosen_row]
        )
        chosen_seller = int(inst.seller_rows[chosen_row])
        if chosen_row in thresholds and chosen_row not in resolved:
            # This winner's replay diverges here: fork a private state
            # with the winner priced +∞ and run its suffix to the end.
            prices = state.prices.copy()
            prices[chosen_row] = math.inf
            fork = state.fork()
            fork.prices = prices
            resolved[chosen_row] = _suffix_replay(
                fork,
                chosen_row,
                thresholds[chosen_row],
                guard_feasibility=guard_feasibility,
                exact_guard=exact_guard,
                ceiling=ceiling,
            )
            pending.remove(chosen_row)
            forks += 1
        survivors = [row for row in pending if row != chosen_row]
        if survivors:
            rows = np.asarray(survivors, dtype=np.int64)
            utilities = np.where(
                state.active[rows], state.utilities[rows], 0
            )
            updatable = utilities > 0
            if guard_feasibility and updatable.any():
                unsafe = state.would_strand_many(rows)
                if exact_guard:
                    for k in np.flatnonzero(updatable & ~unsafe):
                        infinite = inst.bids[int(rows[k])].with_price(
                            math.inf
                        )
                        if not _residual_feasible(
                            infinite,
                            state.active_bids(),
                            state.coverage_view(),
                        ):
                            unsafe[k] = True
                updatable &= ~unsafe
            for k in np.flatnonzero(updatable):
                row = int(rows[k])
                thresholds[row] = max(
                    thresholds[row], int(utilities[k]) * ratio
                )
        state.apply_win(chosen_row)
        for row in list(pending):
            if int(inst.seller_rows[row]) == chosen_seller:
                # A sibling of this bid's seller won: the scalar replay
                # breaks here, freezing the accumulated threshold.
                resolved[row] = thresholds[row]
                pending.remove(row)
        state.remove_seller(chosen_seller)
    for row in pending:
        resolved[row] = thresholds[row]
    if _OBS.enabled:
        metrics = _OBS.metrics
        metrics.counter("engine.columnar.payment_batches").inc()
        metrics.counter("engine.columnar.payment_forks").inc(forks)
        metrics.counter("engine.columnar.payment_prefix_iterations").inc(
            len(traj_rows)
        )
    return [resolved[row] for row in winner_rows]
